//! Offline stand-in for the `proptest` crate.
//!
//! The workspace must build and test with `--offline`, so the real proptest
//! cannot be fetched from crates.io. This shim keeps the property-test files
//! source-compatible — `proptest!`, `prop_oneof!`, `prop_assert*!`,
//! `Strategy` combinators (`prop_map`, `prop_filter`, `prop_recursive`),
//! `any::<T>()`, range strategies, regex-string strategies, and the
//! `prop::collection` / `prop::option` modules — while replacing the engine
//! with plain deterministic random sampling:
//!
//! * Every test function gets its own RNG seeded from the test's module path
//!   and name, so failures reproduce exactly across runs and machines.
//! * There is **no shrinking**: a failing case reports the assertion message
//!   from the raw sampled input. (Shrinking is a debugging convenience, not
//!   part of the correctness contract the tests encode.)
//! * The default case count is 64; `ProptestConfig::with_cases(n)` overrides
//!   it per block exactly like upstream.
//!
//! The regex-string strategy supports the subset of patterns the workspace
//! uses: character classes with ranges and escapes, `{m,n}` repetition, and
//! the `\PC` (printable char) category.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator used to drive all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary integer.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        let _ = rng.next_u64();
        rng
    }

    /// Seed from a test name (FNV-1a hash), so each property test draws an
    /// independent but fully reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and boxed strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a strategy
/// is simply a pure sampling function over a deterministic RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns `true`. `whence` describes the
    /// restriction for diagnostics (used in the panic message if sampling
    /// cannot satisfy the filter).
    fn prop_filter<R, F>(self, whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Build a recursive strategy: `self` generates leaves, and `recurse`
    /// maps a strategy for depth-`d` values to one for depth-`d+1` values.
    /// `depth` bounds the nesting; `_size`/`_branch` are accepted for API
    /// compatibility (the collection strategies already bound fan-out).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Mix leaves back in at every level so samples terminate and
            // shallow values remain common.
            current = strategy::union(vec![leaf.clone(), recurse(current).boxed()]);
        }
        current
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Combinator types and helpers backing the `Strategy` methods.
pub mod strategy {
    use super::*;

    /// Uniformly choose among `arms` each sample (backs `prop_oneof!`).
    pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let pick = rng.below(arms.len() as u64) as usize;
            arms[pick].sample(rng)
        }))
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "arbitrary value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly log-uniform magnitudes around zero.
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mag * 2f64.powi(exp)
    }
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for ArbitraryStrategy<T> {
    fn clone(&self) -> Self {
        ArbitraryStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, tuples, strings
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        regex_sampler::sample(self, rng)
    }
}

/// Sampler for the regex subset used by string strategies.
mod regex_sampler {
    use super::TestRng;

    /// One pattern element: a set of candidate chars plus a repetition range.
    struct Element {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Printable pool backing `\PC`: ASCII printables plus a few multibyte
    /// characters so UTF-8 handling gets exercised.
    fn printable_pool() -> Vec<char> {
        let mut pool: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
        pool.extend(['é', '€', '中', 'Ω', '😀']);
        pool
    }

    fn parse(pattern: &str) -> Vec<Element> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut elements = Vec::new();
        let mut pos = 0;
        while pos < chars.len() {
            let set = match chars[pos] {
                '[' => {
                    let (set, next) = parse_class(&chars, pos + 1, pattern);
                    pos = next;
                    set
                }
                '\\' => {
                    let (set, next) = parse_escape(&chars, pos + 1, pattern);
                    pos = next;
                    set
                }
                c => {
                    pos += 1;
                    vec![c]
                }
            };
            let (min, max, next) = parse_repetition(&chars, pos);
            pos = next;
            elements.push(Element {
                chars: set,
                min,
                max,
            });
        }
        elements
    }

    /// Parse a `[...]` class body starting just after `[`. Returns the char
    /// set and the index just past the closing `]`.
    fn parse_class(chars: &[char], mut pos: usize, pattern: &str) -> (Vec<char>, usize) {
        // Collect members with an "escaped" flag so a literal `-` produced
        // by `\-` is never treated as a range operator.
        let mut members: Vec<(char, bool)> = Vec::new();
        loop {
            match chars.get(pos) {
                None => panic!("unterminated character class in pattern {pattern:?}"),
                Some(']') => {
                    pos += 1;
                    break;
                }
                Some('\\') => {
                    let c = *chars
                        .get(pos + 1)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    members.push((unescape(c), true));
                    pos += 2;
                }
                Some(&c) => {
                    members.push((c, false));
                    pos += 1;
                }
            }
        }
        let mut set = Vec::new();
        let mut i = 0;
        while i < members.len() {
            let (c, _) = members[i];
            // A bare `-` between two members denotes a range.
            if i + 2 < members.len() && members[i + 1] == ('-', false) {
                let (hi, _) = members[i + 2];
                assert!(c <= hi, "inverted range {c}-{hi} in pattern {pattern:?}");
                for code in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        set.push(ch);
                    }
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        (set, pos)
    }

    /// Parse an escape starting just after `\`. Returns the char set and the
    /// index just past the escape.
    fn parse_escape(chars: &[char], pos: usize, pattern: &str) -> (Vec<char>, usize) {
        match chars.get(pos) {
            None => panic!("dangling escape in pattern {pattern:?}"),
            // `\PC` / `\pC`: Unicode category; the workspace only uses `C`
            // complements, which we model as "printable characters".
            Some('P' | 'p') => {
                assert!(
                    chars.get(pos + 1).is_some(),
                    "dangling \\P category in pattern {pattern:?}"
                );
                (printable_pool(), pos + 2)
            }
            Some('d') => ((b'0'..=b'9').map(char::from).collect(), pos + 1),
            Some('w') => {
                let mut set: Vec<char> = (b'a'..=b'z').map(char::from).collect();
                set.extend((b'A'..=b'Z').map(char::from));
                set.extend((b'0'..=b'9').map(char::from));
                set.push('_');
                (set, pos + 1)
            }
            Some(&c) => (vec![unescape(c)], pos + 1),
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Parse an optional repetition suffix at `pos`.
    fn parse_repetition(chars: &[char], pos: usize) -> (usize, usize, usize) {
        match chars.get(pos) {
            Some('{') => {
                let close = (pos + 1..chars.len())
                    .find(|&i| chars[i] == '}')
                    .expect("unterminated repetition");
                let body: String = chars[pos + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition lower bound"),
                        hi.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                };
                (min, max, close + 1)
            }
            Some('?') => (0, 1, pos + 1),
            Some('*') => (0, 8, pos + 1),
            Some('+') => (1, 8, pos + 1),
            _ => (1, 1, pos),
        }
    }

    /// Sample one string matching `pattern`.
    pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for element in parse(pattern) {
            let span = (element.max - element.min) as u64 + 1;
            let len = element.min + rng.below(span) as usize;
            assert!(
                !element.chars.is_empty() || len == 0,
                "empty character class with non-zero repetition in {pattern:?}"
            );
            for _ in 0..len {
                out.push(element.chars[rng.below(element.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collection and option strategies
// ---------------------------------------------------------------------------

/// Strategies over collections (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// Inclusive-min, exclusive-max size bound for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.min < self.max_exclusive, "empty size range");
            self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample_len(rng);
            let mut map = std::collections::BTreeMap::new();
            // Duplicate keys overwrite; bound the attempts so tight key
            // domains cannot loop forever.
            for _ in 0..target.saturating_mul(4) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.keys.sample(rng), self.values.sample(rng));
            }
            map
        }
    }

    /// `prop::collection::btree_map(keys, values, size)`.
    pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }
}

/// Strategies over `Option` (`prop::option::*`).
pub mod option {
    use super::*;

    /// Strategy yielding `None` about a quarter of the time.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `prop::option::of(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Namespace mirror so `prop::collection::vec` etc. resolve as upstream.
pub mod prop {
    pub use super::collection;
    pub use super::option;
}

// ---------------------------------------------------------------------------
// Config and macros
// ---------------------------------------------------------------------------

/// Per-block configuration (only `cases` is meaningful in this shim).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `body` against freshly sampled `arg`s for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for _ in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    // Upstream proptest runs bodies as `Result<(), TestCaseError>`
                    // closures so they may `return Ok(())` early; mirror that.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(message) = outcome {
                        panic!("property case failed: {message}");
                    }
                }
            }
        )*
    };
}

/// Uniformly choose among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert within a property body (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality within a property body (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality within a property body (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_ident_pattern() {
        let mut rng = TestRng::from_name("regex_ident");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn regex_class_with_escapes() {
        let mut rng = TestRng::from_name("regex_escapes");
        // Mirrors the hairiest pattern in the workspace: escaped dash,
        // quote, backslash, plus literal newline/tab and multibyte chars.
        let pattern = "[a-zA-Z0-9 _\\-\"'\\\\/\n\t€émoji😀]{0,24}";
        let allowed: Vec<char> = {
            let mut v: Vec<char> = ('a'..='z').collect();
            v.extend('A'..='Z');
            v.extend('0'..='9');
            v.extend([
                ' ', '_', '-', '"', '\'', '\\', '/', '\n', '\t', '€', 'é', 'm', 'o', 'j', 'i', '😀',
            ]);
            v
        };
        for _ in 0..200 {
            let s = Strategy::sample(&pattern, &mut rng);
            assert!(s.chars().count() <= 24);
            for c in s.chars() {
                assert!(allowed.contains(&c), "unexpected char {c:?}");
            }
        }
    }

    #[test]
    fn printable_category_sampling() {
        let mut rng = TestRng::from_name("printable");
        for _ in 0..100 {
            let s = Strategy::sample(&"\\PC{0,80}", &mut rng);
            assert!(s.chars().count() <= 80);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_name("recursive");
        let mut saw_node = false;
        for _ in 0..200 {
            let t = Strategy::sample(&strat, &mut rng);
            assert!(depth(&t) <= 4, "depth bound violated: {t:?}");
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursion never produced a composite value");
    }

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut rng = TestRng::from_name("x");
            (0..16).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::from_name("x");
            (0..16).map(|_| rng.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut rng = TestRng::from_name("y");
            (0..16).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_roundtrip(v in prop::collection::vec(0i64..100, 0..10), flag in any::<bool>()) {
            prop_assert!(v.len() < 10);
            if flag {
                prop_assert_eq!(v.clone(), v);
            }
        }
    }
}
