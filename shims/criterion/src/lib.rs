//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace must build with `--offline`, so the real criterion (and its
//! large dependency tree) cannot be fetched. This shim keeps the
//! `criterion_group!` / `criterion_main!` bench-target API source-compatible
//! and replaces the statistics engine with a plain wall-clock loop: each
//! benchmark runs a short warmup, then a fixed number of timed iterations,
//! and prints `name ... median time/iter`. That is enough to compare orders
//! of magnitude locally; it makes no confidence-interval claims.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Run `routine` repeatedly and record per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: also used to size the measured batches so that one
        // sample takes at least ~1ms (keeps timer noise bounded).
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        let per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        self.iters_per_sample = per_sample;

        const SAMPLES: usize = 15;
        self.samples.clear();
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_per_iter(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2] / self.iters_per_sample
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    let per_iter = b.median_per_iter();
    println!("bench: {label:<50} {per_iter:>12.2?}/iter");
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a named benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Run a parameterised benchmark: the closure receives `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Declare a bench group: expands to a function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
