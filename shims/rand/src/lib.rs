//! Offline stand-in for the `rand` crate.
//!
//! The real `rand` lives on crates.io, which this workspace cannot reach: the
//! build must succeed with `--offline` from a clean checkout. This shim
//! re-implements exactly the API surface the workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`, `gen_range`,
//! and `gen_bool` — on top of a SplitMix64 generator. It is deterministic,
//! fast, and statistically fine for test-data generation and benchmarks; it
//! is **not** cryptographically secure and must never be used for secrets.
//!
//! Determinism contract: the same seed always yields the same stream on every
//! platform (the benchkit determinism tests rely on this). The stream is not
//! bit-compatible with upstream `rand`; only same-seed reproducibility is
//! promised.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for this type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a uniform value from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Deterministic small-state generator (SplitMix64).
///
/// Matches the role of `rand::rngs::SmallRng`: fast, non-cryptographic,
/// seedable. Every seed yields an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush when used
        // as a stream; ideal for reproducible test data.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Scramble the raw seed once so that adjacent seeds (0, 1, 2, ...)
        // do not produce correlated early outputs.
        let mut rng = SmallRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        };
        let _ = rng.next_u64();
        rng
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::SmallRng;
    /// In this shim the "standard" generator is the same deterministic
    /// SplitMix64 engine as [`SmallRng`].
    pub type StdRng = super::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
