//! Serve a demo BridgeScope database over the wire, MCP-style.
//!
//! Four modes:
//!
//! * `cargo run --example serve` — bind a TCP listener (default
//!   `127.0.0.1:0`, i.e. an ephemeral port), print the address, and serve
//!   until the process is killed. Pass `--addr HOST:PORT` to pick a port
//!   and `--trace FILE` to export the JSONL trace on shutdown.
//! * `cargo run --example serve -- --stdio` — serve exactly one session on
//!   stdin/stdout (the MCP stdio transport; the parent process owns the
//!   pipes).
//! * `cargo run --example serve -- --selftest [TRACE_FILE]` — bind an
//!   ephemeral port, drive a scripted client session against it (schema
//!   fetch, a select, one denied write, one proxy call), validate the
//!   emitted JSONL trace, and exit non-zero on any mismatch. This is the
//!   offline CI smoke test.
//! * `cargo run --example serve -- --load [SESSIONS] [CALLS]` — bind an
//!   ephemeral port and hammer it with the benchkit load generator,
//!   printing the throughput + latency-histogram report.

use bridgescope::prelude::*;
use toolproto::ToolError;

/// The demo database: a `sales` table anyone privileged can read, an
/// `audit_log` the selftest policy fences off, and a read-only `reader`
/// user to demonstrate per-session privilege gating.
fn demo_db() -> Database {
    let db = Database::new();
    let mut admin = db.session("admin").expect("admin exists");
    for sql in [
        "CREATE TABLE sales (id INTEGER PRIMARY KEY, region TEXT, amount REAL)",
        "CREATE TABLE audit_log (id INTEGER PRIMARY KEY, note TEXT)",
        "INSERT INTO audit_log VALUES (1, 'seed')",
    ] {
        admin.execute_sql(sql).expect("setup SQL is valid");
    }
    for i in 0..200 {
        let region = ["north", "south", "east", "west"][i % 4];
        admin
            .execute_sql(&format!(
                "INSERT INTO sales VALUES ({i}, '{region}', {}.0)",
                10 + i % 50
            ))
            .expect("insert");
    }
    db.create_user("reader", false).expect("fresh user");
    db.grant("reader", sqlkit::Action::Select, "sales")
        .expect("sales exists");
    db
}

fn tenancy() -> Tenancy {
    Tenancy::new(demo_db()).with_external(ml_registry())
}

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--stdio") => run_stdio(),
        Some("--selftest") => run_selftest(args.get(1).cloned()),
        Some("--load") => {
            let sessions = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
            let calls = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
            run_loadgen(sessions, calls);
        }
        _ => run_tcp(&args),
    }
}

/// Plain TCP serving until killed.
fn run_tcp(args: &[String]) {
    let mut addr = "127.0.0.1:0".to_owned();
    let mut trace: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| fail("--addr needs a value"))
            }
            "--trace" => {
                trace = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| fail("--trace needs a value")),
                )
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    let obs = match &trace {
        Some(path) => Obs::jsonl(path),
        None => Obs::in_memory(),
    };
    let server = WireServer::bind(&addr, tenancy(), WireConfig::default(), obs)
        .unwrap_or_else(|e| fail(&format!("cannot bind {addr}: {e}")));
    println!("listening on {}", server.local_addr());
    println!(
        "users: admin (full), reader (select on sales); protocol {}",
        wire::PROTOCOL
    );
    // Serve until the process is killed; the accept loop owns the socket.
    loop {
        std::thread::park();
    }
}

/// One session on stdin/stdout.
fn run_stdio() {
    let tenancy = tenancy();
    let config = WireConfig::default();
    let obs = Obs::in_memory();
    if let Err(e) = wire::serve_stdio(&tenancy, &config, &obs) {
        fail(&format!("stdio transport failed: {e}"));
    }
}

/// The scripted loopback session CI runs: every step prints a `selftest:`
/// marker the gate greps for, and any deviation exits non-zero.
fn run_selftest(trace_path: Option<String>) {
    let obs = match &trace_path {
        Some(path) => Obs::jsonl(path),
        None => Obs::in_memory(),
    };
    let server = WireServer::bind("127.0.0.1:0", tenancy(), WireConfig::default(), obs.clone())
        .unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    println!("listening on {}", server.local_addr());

    let mut client = wire::Client::connect(server.local_addr())
        .unwrap_or_else(|e| fail(&format!("connect: {e}")));
    // The session tightens the operator policy: audit_log is off-limits
    // even for admin, so the scripted write below is *denied*, not absent.
    client
        .initialize_with(
            "admin",
            &Json::object([("object_blacklist", Json::array([Json::str("audit_log")]))]),
        )
        .unwrap_or_else(|e| fail(&format!("initialize: {e}")));

    // 1. Schema fetch.
    let schema = match client.call("get_schema", &Json::Null) {
        Ok(Ok(out)) => out,
        other => fail(&format!("get_schema: {other:?}")),
    };
    let tables = schema
        .value
        .get("tables")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    // The session policy fences off audit_log, so the schema shows only
    // sales — the wire layer preserves policy-scoped visibility too.
    if tables != 1 {
        fail(&format!(
            "get_schema listed {tables} tables, want 1 (sales)"
        ));
    }
    println!("selftest: schema ok ({tables} table visible, audit_log fenced)");

    // 2. A select.
    let out = match client.call(
        "select",
        &Json::object([("sql", Json::str("SELECT region, amount FROM sales"))]),
    ) {
        Ok(Ok(out)) => out,
        other => fail(&format!("select: {other:?}")),
    };
    if out.rows != Some(200) {
        fail(&format!("select returned {:?} rows, want 200", out.rows));
    }
    println!("selftest: select ok (200 rows)");

    // 3. A denied write: the requested policy blacklists audit_log, so the
    // denial context names the object and the gate.
    match client.call(
        "insert",
        &Json::object([(
            "sql",
            Json::str("INSERT INTO audit_log VALUES (2, 'probe')"),
        )]),
    ) {
        Ok(Err(ToolError::Denied { code, context, .. }))
            if code == "policy" && context.object.as_deref() == Some("audit_log") =>
        {
            println!("selftest: denied ok (policy on audit_log)");
        }
        other => fail(&format!("denied write: {other:?}")),
    }

    // 4. A proxy call: all 200 sales rows move tool→tool into the trend
    // analyzer without transiting the client.
    let spec = Json::parse(
        r#"{"target_tool": "trend_analyze", "tool_args": {
            "sales": {"tool": "select",
                      "args": {"sql": "SELECT id, amount FROM sales ORDER BY id"},
                      "transform": "/rows"}}}"#,
    )
    .expect("valid proxy spec");
    match client.call("proxy", &spec) {
        Ok(Ok(out)) => println!("selftest: proxy ok ({})", out.value.to_compact()),
        other => fail(&format!("proxy: {other:?}")),
    }

    client
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    server.shutdown();

    // 5. The JSONL trace must exist, parse, and contain the wire layer.
    match obs.flush() {
        Ok(Some(path)) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("read trace: {e}")));
            let parsed = obs::parse_jsonl(&text)
                .unwrap_or_else(|e| fail(&format!("trace does not parse: {e}")));
            obs::validate_tree(&parsed.spans)
                .unwrap_or_else(|e| fail(&format!("trace span tree invalid: {e}")));
            for needed in ["wire:session", "wire:call", "tool:select", "proxy:unit"] {
                if !parsed.spans.iter().any(|s| s.name == needed) {
                    fail(&format!("trace is missing a {needed} span"));
                }
            }
            println!(
                "selftest: trace ok ({} spans, {})",
                parsed.spans.len(),
                path.display()
            );
        }
        Ok(None) => println!("selftest: trace skipped (no path given)"),
        Err(e) => fail(&format!("trace flush: {e}")),
    }
    println!("selftest: all ok");
}

/// Loopback load generation with the benchkit report.
fn run_loadgen(sessions: usize, calls: usize) {
    let server = WireServer::bind(
        "127.0.0.1:0",
        tenancy(),
        WireConfig::default(),
        Obs::in_memory(),
    )
    .unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    println!("listening on {}", server.local_addr());
    let cfg = benchkit::LoadConfig::select(
        sessions,
        calls,
        "admin",
        "SELECT region, amount FROM sales WHERE id < 50",
    );
    let report = benchkit::run_load(server.local_addr(), &cfg);
    server.shutdown();
    print!("{}", report.render());
    if report.calls_ok != (sessions * calls) as u64 {
        fail(&format!(
            "only {}/{} calls succeeded",
            report.calls_ok,
            sessions * calls
        ));
    }
}
