//! Serve a demo BridgeScope database over the wire, MCP-style.
//!
//! Five modes:
//!
//! * `cargo run --example serve` — bind a TCP listener (default
//!   `127.0.0.1:0`, i.e. an ephemeral port), print the address, and serve
//!   until the process is killed. Pass `--addr HOST:PORT` to pick a port
//!   and `--trace FILE` to export the JSONL trace on shutdown. Pass
//!   `--data-dir DIR` to serve a *durable* database (WAL + snapshot in
//!   `DIR`; recovered on start, seeded with the demo content only when the
//!   directory is fresh) and `--fsync {always,commit,off}` to pick the
//!   durability/latency trade-off (default `commit`).
//! * `cargo run --example serve -- --stdio` — serve exactly one session on
//!   stdin/stdout (the MCP stdio transport; the parent process owns the
//!   pipes).
//! * `cargo run --example serve -- --selftest [TRACE_FILE]` — bind an
//!   ephemeral port, drive a scripted client session against it (schema
//!   fetch, a select, one denied write, one proxy call), validate the
//!   emitted JSONL trace, and exit non-zero on any mismatch. This is the
//!   offline CI smoke test.
//! * `cargo run --example serve -- --selftest-telemetry` — bind a server
//!   *and* its admin plane on ephemeral ports, drive loadgen smoke traffic
//!   plus a deliberately slow call, scrape `/metrics` twice over real HTTP
//!   (asserting labeled counters, gauges, histograms, and monotonicity),
//!   check `/slow` captured the span tree, verify `/readyz` flips to 503
//!   on drain, and compare telemetry-on vs telemetry-off loadgen
//!   throughput. This is the offline live-telemetry CI smoke test.
//! * `cargo run --example serve -- --selftest-tracing` — bind a gated server
//!   and its admin plane, then drive the distributed-tracing surface end to
//!   end: a client-supplied `traceparent` must be echoed back and name the
//!   wire, gate, tool, and SQL spans of the same call; a traced slow call
//!   must be retrievable by its trace id via `/slow/<trace-id>`; EXPLAIN
//!   ANALYZE timings must be plausible (children within the root); a
//!   loadgen burst must populate `/statements` with per-(user, statement)
//!   aggregates; `/queries` must list an in-flight call; and the traced
//!   plane must stay within 10% of the disabled-telemetry throughput.
//!   This is the offline distributed-tracing CI smoke test.
//! * `cargo run --example serve -- --selftest-recovery [TRACE_FILE]` —
//!   open a durable database in a scratch directory, commit work, *kill
//!   the engine in-process* (no checkpoint, one transaction deliberately
//!   left uncommitted), reopen it, print the replay summary, and assert
//!   zero lost commits plus a `recovery:replay` span in the trace. This is
//!   the offline crash-recovery CI smoke test.
//! * `cargo run --example serve -- --load [SESSIONS] [CALLS] [PROFILE]` —
//!   bind an ephemeral port and hammer it with the benchkit load generator,
//!   printing the throughput + latency-histogram report. With a PROFILE
//!   name (`gpt4o`, `claude4`, `explorer`) each session instead drives a
//!   full simulated ReAct agent through a mirrored wire registry (CALLS
//!   tasks per session) against a cache-enabled gate, reporting task
//!   completion and the retrieval-cache hit rate — `explorer` is the
//!   exploration-heavy profile that re-issues identical context probes.
//! * `cargo run --example serve -- --bench-gate [OUT]` — the agent-traffic
//!   gate benchmark (ci/check.sh `gate-smoke`): measures the context-tool
//!   cache hit rate and task completion under the exploration profile,
//!   then runs a tenant-fairness differential (three steady tenants with
//!   and without a budgeted runaway tenant) and writes a machine-readable
//!   JSON report with `hit_rate`, `completion_rate`, `fairness_ratio`,
//!   and `p95_ratio`.
//! * `cargo run --example serve -- --bench-planner [OUT] [ROWS]` — the
//!   cost-based planner benchmark (ci/check.sh `planner-smoke`): runs the
//!   benchkit planner microbench, asserts the planner's decisions (index
//!   probe after ANALYZE, non-syntactic three-way join order, bounded
//!   top-k sort, streaming LIMIT measurably faster than unpushed), and
//!   writes a machine-readable JSON report with the plan shapes and
//!   speedups.
//!
//! The TCP mode takes gate flags: `--cache` turns on the retrieval +
//! prepared-plan caches, `--budgets N` caps every database user at N tool
//! calls via a shared budget ledger, and `--weight USER=N` (repeatable)
//! gives USER an N-share weighted slice of the worker pool (everyone else
//! gets weight 1).

use bridgescope::prelude::*;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use toolproto::{Args, FnTool, Signature, ToolError};

/// The demo database: a `sales` table anyone privileged can read, an
/// `audit_log` the selftest policy fences off, and a read-only `reader`
/// user to demonstrate per-session privilege gating.
fn demo_db() -> Database {
    let db = Database::new();
    populate_demo(&db);
    db
}

/// Seed the demo content onto an existing (fresh) database — the same
/// content whether the engine is volatile or durable.
fn populate_demo(db: &Database) {
    let mut admin = db.session("admin").expect("admin exists");
    for sql in [
        "CREATE TABLE sales (id INTEGER PRIMARY KEY, region TEXT, amount REAL)",
        "CREATE TABLE audit_log (id INTEGER PRIMARY KEY, note TEXT)",
        "INSERT INTO audit_log VALUES (1, 'seed')",
    ] {
        admin.execute_sql(sql).expect("setup SQL is valid");
    }
    for i in 0..200 {
        let region = ["north", "south", "east", "west"][i % 4];
        admin
            .execute_sql(&format!(
                "INSERT INTO sales VALUES ({i}, '{region}', {}.0)",
                10 + i % 50
            ))
            .expect("insert");
    }
    db.create_user("reader", false).expect("fresh user");
    db.grant("reader", sqlkit::Action::Select, "sales")
        .expect("sales exists");
}

fn tenancy() -> Tenancy {
    Tenancy::new(demo_db()).with_external(ml_registry())
}

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--stdio") => run_stdio(),
        Some("--selftest") => run_selftest(args.get(1).cloned()),
        Some("--selftest-recovery") => run_selftest_recovery(args.get(1).cloned()),
        Some("--selftest-telemetry") => run_selftest_telemetry(),
        Some("--selftest-tracing") => run_selftest_tracing(),
        Some("--load") => {
            let sessions = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
            let calls = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
            run_loadgen(sessions, calls, args.get(3).map(String::as_str));
        }
        Some("--bench-gate") => {
            let out = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_gate.json".to_owned());
            run_bench_gate(&out);
        }
        Some("--bench-planner") => {
            let out = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_planner.json".to_owned());
            let rows = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20_000);
            run_bench_planner(&out, rows);
        }
        Some("--bench-mvcc") => {
            let out = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_mvcc.json".to_owned());
            let calls = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
            run_bench_mvcc(&out, calls);
        }
        _ => run_tcp(&args),
    }
}

/// Plain TCP serving until killed.
fn run_tcp(args: &[String]) {
    let mut addr = "127.0.0.1:0".to_owned();
    let mut admin_addr: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::default();
    let mut slow_ms: u64 = 100;
    let mut cache = false;
    let mut budget_calls: Option<u64> = None;
    let mut tenant_weights: Vec<(String, u32)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache" => cache = true,
            "--budgets" => {
                budget_calls = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| fail("--budgets needs a per-user call limit")),
                )
            }
            "--weight" => {
                let spec = it.next().unwrap_or_else(|| fail("--weight needs USER=N"));
                let (user, n) = spec
                    .split_once('=')
                    .and_then(|(u, n)| n.parse::<u32>().ok().map(|n| (u, n)))
                    .unwrap_or_else(|| fail(&format!("bad --weight '{spec}', want USER=N")));
                tenant_weights.push((user.to_owned(), n));
            }
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| fail("--addr needs a value"))
            }
            "--admin-addr" => {
                admin_addr = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| fail("--admin-addr needs a value")),
                )
            }
            "--slow-ms" => {
                slow_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--slow-ms needs a number of milliseconds"))
            }
            "--trace" => {
                trace = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| fail("--trace needs a value")),
                )
            }
            "--data-dir" => {
                data_dir = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| fail("--data-dir needs a value")),
                )
            }
            "--fsync" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| fail("--fsync needs always|commit|off"));
                fsync = FsyncPolicy::parse(value)
                    .unwrap_or_else(|| fail(&format!("unknown fsync policy '{value}'")));
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    let obs_config = match &trace {
        Some(path) => ObsConfig::Jsonl(path.into()),
        None => ObsConfig::InMemory,
    };
    // The flight recorder rides along whenever the admin plane is up: /slow
    // is only reachable through it.
    let obs = if admin_addr.is_some() {
        Obs::with_flight(
            &obs_config,
            FlightConfig::with_threshold_ns(slow_ms.saturating_mul(1_000_000)),
        )
    } else {
        Obs::from_config(&obs_config)
    };
    let tenancy = match &data_dir {
        Some(dir) => {
            let config = DurabilityConfig::new(dir).with_fsync(fsync);
            let (db, report) = Database::open_observed(&config, obs.clone())
                .unwrap_or_else(|e| fail(&format!("cannot open data dir {dir}: {e}")));
            println!("{}", report.render());
            if !report.snapshot_loaded && report.replayed_txns == 0 {
                populate_demo(&db);
                println!("seeded fresh durable database in {dir}");
            }
            Tenancy::new(db).with_external(ml_registry())
        }
        None => tenancy(),
    };
    let mut gate = GateConfig::default();
    if cache {
        gate = gate.with_cache();
        println!("gate: retrieval + prepared-plan caches on");
    }
    if let Some(limit) = budget_calls {
        gate = gate.with_user_ledger(std::sync::Arc::new(BudgetLedger::new(
            BudgetLimits::unlimited().with_calls(limit),
        )));
        println!("gate: per-user budget of {limit} tool calls");
    }
    let tenancy = tenancy.with_gate(gate);
    if !tenant_weights.is_empty() {
        let shares: Vec<String> = tenant_weights
            .iter()
            .map(|(u, w)| format!("{u}={w}"))
            .collect();
        println!("gate: tenant weights {} (default 1)", shares.join(" "));
    }
    let wire_config = WireConfig {
        tenant_weights,
        ..WireConfig::default()
    };
    // Background vacuum keeps the MVCC version history bounded while the
    // server runs (the handle stops the thread when the process exits).
    let _vacuum = tenancy.database().start_vacuum(Duration::from_secs(5));
    // Periodic trace flush: a killed process loses at most ~2s of trace.
    let _flusher = obs.start_flusher(Duration::from_secs(2));
    let server = WireServer::bind(&addr, tenancy, wire_config, obs.clone())
        .unwrap_or_else(|e| fail(&format!("cannot bind {addr}: {e}")));
    let _admin = admin_addr.map(|admin_addr| {
        let admin = AdminServer::bind(&admin_addr, obs.clone(), server.ready_handle())
            .unwrap_or_else(|e| fail(&format!("cannot bind admin {admin_addr}: {e}")));
        println!(
            "admin on {} (/metrics /healthz /readyz /slow, slow threshold {slow_ms}ms)",
            admin.local_addr()
        );
        admin
    });
    println!("listening on {}", server.local_addr());
    println!(
        "users: admin (full), reader (select on sales); protocol {}",
        wire::PROTOCOL
    );
    // Serve until the process is killed; the accept loop owns the socket.
    loop {
        std::thread::park();
    }
}

/// One session on stdin/stdout.
fn run_stdio() {
    let tenancy = tenancy();
    let config = WireConfig::default();
    let obs = Obs::in_memory();
    if let Err(e) = wire::serve_stdio(&tenancy, &config, &obs) {
        fail(&format!("stdio transport failed: {e}"));
    }
}

/// The scripted loopback session CI runs: every step prints a `selftest:`
/// marker the gate greps for, and any deviation exits non-zero.
fn run_selftest(trace_path: Option<String>) {
    let obs = match &trace_path {
        Some(path) => Obs::jsonl(path),
        None => Obs::in_memory(),
    };
    let server = WireServer::bind("127.0.0.1:0", tenancy(), WireConfig::default(), obs.clone())
        .unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    println!("listening on {}", server.local_addr());

    let mut client = wire::Client::connect(server.local_addr())
        .unwrap_or_else(|e| fail(&format!("connect: {e}")));
    // The session tightens the operator policy: audit_log is off-limits
    // even for admin, so the scripted write below is *denied*, not absent.
    client
        .initialize_with(
            "admin",
            &Json::object([("object_blacklist", Json::array([Json::str("audit_log")]))]),
        )
        .unwrap_or_else(|e| fail(&format!("initialize: {e}")));

    // 1. Schema fetch.
    let schema = match client.call("get_schema", &Json::Null) {
        Ok(Ok(out)) => out,
        other => fail(&format!("get_schema: {other:?}")),
    };
    let tables = schema
        .value
        .get("tables")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    // The session policy fences off audit_log, so the schema shows only
    // sales — the wire layer preserves policy-scoped visibility too.
    if tables != 1 {
        fail(&format!(
            "get_schema listed {tables} tables, want 1 (sales)"
        ));
    }
    println!("selftest: schema ok ({tables} table visible, audit_log fenced)");

    // 2. A select.
    let out = match client.call(
        "select",
        &Json::object([("sql", Json::str("SELECT region, amount FROM sales"))]),
    ) {
        Ok(Ok(out)) => out,
        other => fail(&format!("select: {other:?}")),
    };
    if out.rows != Some(200) {
        fail(&format!("select returned {:?} rows, want 200", out.rows));
    }
    println!("selftest: select ok (200 rows)");

    // 3. A denied write: the requested policy blacklists audit_log, so the
    // denial context names the object and the gate.
    match client.call(
        "insert",
        &Json::object([(
            "sql",
            Json::str("INSERT INTO audit_log VALUES (2, 'probe')"),
        )]),
    ) {
        Ok(Err(ToolError::Denied { code, context, .. }))
            if code == "policy" && context.object.as_deref() == Some("audit_log") =>
        {
            println!("selftest: denied ok (policy on audit_log)");
        }
        other => fail(&format!("denied write: {other:?}")),
    }

    // 4. A proxy call: all 200 sales rows move tool→tool into the trend
    // analyzer without transiting the client.
    let spec = Json::parse(
        r#"{"target_tool": "trend_analyze", "tool_args": {
            "sales": {"tool": "select",
                      "args": {"sql": "SELECT id, amount FROM sales ORDER BY id"},
                      "transform": "/rows"}}}"#,
    )
    .expect("valid proxy spec");
    match client.call("proxy", &spec) {
        Ok(Ok(out)) => println!("selftest: proxy ok ({})", out.value.to_compact()),
        other => fail(&format!("proxy: {other:?}")),
    }

    client
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    server.shutdown();

    // 5. The JSONL trace must exist, parse, and contain the wire layer.
    match obs.flush() {
        Ok(Some(path)) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("read trace: {e}")));
            let parsed = obs::parse_jsonl(&text)
                .unwrap_or_else(|e| fail(&format!("trace does not parse: {e}")));
            obs::validate_tree(&parsed.spans)
                .unwrap_or_else(|e| fail(&format!("trace span tree invalid: {e}")));
            for needed in ["wire:session", "wire:call", "tool:select", "proxy:unit"] {
                if !parsed.spans.iter().any(|s| s.name == needed) {
                    fail(&format!("trace is missing a {needed} span"));
                }
            }
            println!(
                "selftest: trace ok ({} spans, {})",
                parsed.spans.len(),
                path.display()
            );
        }
        Ok(None) => println!("selftest: trace skipped (no path given)"),
        Err(e) => fail(&format!("trace flush: {e}")),
    }
    println!("selftest: all ok");
}

/// The crash-recovery smoke test CI runs: commit work to a durable engine,
/// kill it in-process with one transaction deliberately uncommitted, reopen,
/// and assert the recovered state equals the committed state exactly.
fn run_selftest_recovery(trace_path: Option<String>) {
    let obs = match &trace_path {
        Some(path) => Obs::jsonl(path),
        None => Obs::in_memory(),
    };
    let dir = std::env::temp_dir().join(format!("bridgescope-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // No auto-snapshots: recovery must come from the WAL alone.
    let config = DurabilityConfig::new(&dir).with_snapshot_every(0);

    let (db, report) = Database::open_observed(&config, obs.clone())
        .unwrap_or_else(|e| fail(&format!("open durable db: {e}")));
    if report.snapshot_loaded || report.replayed_txns != 0 {
        fail("scratch directory was not fresh");
    }
    populate_demo(&db);
    let mut admin = db.session("admin").expect("admin exists");
    for sql in [
        "BEGIN",
        "INSERT INTO sales VALUES (900, 'north', 42.0)",
        "UPDATE sales SET amount = 99.0 WHERE id = 900",
        "COMMIT",
        "DELETE FROM sales WHERE id < 10",
    ] {
        admin
            .execute_sql(sql)
            .unwrap_or_else(|e| fail(&format!("workload '{sql}': {e}")));
    }
    drop(admin);
    let committed = db.state_fingerprint();
    println!(
        "selftest: committed workload ok (engine {})",
        db.engine_name()
    );

    // The crash: an open transaction whose session never rolls back
    // (mem::forget skips Drop), then every handle to the engine vanishes
    // without a checkpoint — exactly what kill -9 leaves on disk.
    let mut doomed = db.session("admin").expect("admin exists");
    doomed.execute_sql("BEGIN").expect("begin");
    doomed
        .execute_sql("INSERT INTO sales VALUES (901, 'south', 1.0)")
        .expect("uncommitted insert");
    std::mem::forget(doomed);
    drop(db);
    println!("selftest: engine killed (uncommitted txn in flight)");

    let (db, report) = Database::open_observed(&config, obs.clone())
        .unwrap_or_else(|e| fail(&format!("reopen durable db: {e}")));
    println!("{}", report.render());
    if report.replayed_txns == 0 {
        fail("recovery replayed no transactions");
    }
    if db.state_fingerprint() != committed {
        fail("recovered state diverges from the committed state (lost commits)");
    }
    println!(
        "selftest: recovery ok ({} txns / {} records replayed, zero lost commits)",
        report.replayed_txns, report.replayed_records
    );
    let rows = db
        .session("admin")
        .expect("admin exists")
        .execute_sql("SELECT id FROM sales WHERE id >= 900")
        .unwrap_or_else(|e| fail(&format!("post-recovery select: {e}")));
    match rows {
        QueryResult::Rows { rows, .. } if rows.len() == 1 => {
            println!("selftest: uncommitted txn discarded ok");
        }
        other => fail(&format!("uncommitted txn leaked into recovery: {other:?}")),
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    match obs.flush() {
        Ok(Some(path)) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("read trace: {e}")));
            let parsed = obs::parse_jsonl(&text)
                .unwrap_or_else(|e| fail(&format!("trace does not parse: {e}")));
            for needed in ["wal:append", "wal:fsync", "recovery:replay"] {
                if !parsed.spans.iter().any(|s| s.name == needed) {
                    fail(&format!("trace is missing a {needed} span"));
                }
            }
            println!(
                "selftest: trace ok ({} spans, {})",
                parsed.spans.len(),
                path.display()
            );
        }
        Ok(None) => println!("selftest: trace skipped (no path given)"),
        Err(e) => fail(&format!("trace flush: {e}")),
    }
    println!("selftest: recovery all ok");
}

/// Minimal HTTP GET over a plain socket, for scraping the admin plane the
/// way Prometheus would (no curl dependency in CI). Returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream =
        TcpStream::connect(addr).unwrap_or_else(|e| fail(&format!("admin connect: {e}")));
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nhost: ci\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap_or_else(|e| fail(&format!("admin write: {e}")));
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .unwrap_or_else(|e| fail(&format!("admin read: {e}")));
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fail(&format!("malformed admin response: {response:.80}")));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Parse counter series (`name_total{labels} value` lines) out of a
/// Prometheus exposition body into a (series → value) map.
fn parse_counter_series(text: &str) -> std::collections::BTreeMap<String, f64> {
    let mut out = std::collections::BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let name_end = series.find('{').unwrap_or(series.len());
        if !series[..name_end].ends_with("_total") {
            continue;
        }
        if let Ok(v) = value.parse::<f64>() {
            out.insert(series.to_owned(), v);
        }
    }
    out
}

/// Throughput of a think-paced loadgen smoke against a fresh server, with
/// the telemetry plane (obs + flight recorder) on or off. Think pacing
/// makes the run agent-shaped — the server is far from saturated — so the
/// comparison isolates per-call telemetry overhead from scheduler noise.
fn telemetry_smoke_throughput(telemetry: bool) -> f64 {
    // Production-shaped telemetry: the default 100ms flight threshold, so
    // the recorder arms but healthy sub-ms calls are not captured (the 1ms
    // threshold above exists only to force captures for the functional
    // checks; in a debug build it would trip on every call).
    let obs = if telemetry {
        Obs::with_flight(&ObsConfig::InMemory, FlightConfig::default())
    } else {
        Obs::disabled()
    };
    let server = WireServer::bind("127.0.0.1:0", tenancy(), WireConfig::default(), obs)
        .unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    let mut cfg = benchkit::LoadConfig::select(
        4,
        40,
        "admin",
        "SELECT region, amount FROM sales WHERE id < 50",
    );
    cfg.think_ns = 5_000_000;
    let report = benchkit::run_load(server.local_addr(), &cfg);
    server.shutdown();
    if report.calls_ok != 160 {
        fail(&format!(
            "overhead smoke (telemetry={telemetry}): {}/160 calls ok",
            report.calls_ok
        ));
    }
    report.throughput()
}

/// The live-telemetry smoke test CI runs: every step prints a `telemetry:`
/// marker the gate greps for, and any deviation exits non-zero.
fn run_selftest_telemetry() {
    // 1ms slow threshold: the sleepy tool below (5ms) must trip it, the
    // sub-millisecond selects must not.
    let obs = Obs::with_flight(
        &ObsConfig::InMemory,
        FlightConfig::with_threshold_ns(1_000_000),
    );
    let mut external = ml_registry();
    external.register_tool(FnTool::new(
        "sleepy",
        "sleeps past the slow-call threshold",
        Signature::new(vec![]),
        |_: &Args| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(ToolOutput::value(Json::str("done")))
        },
    ));
    let server = WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(demo_db()).with_external(external),
        WireConfig::default(),
        obs.clone(),
    )
    .unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    let admin = AdminServer::bind("127.0.0.1:0", obs.clone(), server.ready_handle())
        .unwrap_or_else(|e| fail(&format!("cannot bind admin: {e}")));
    let admin_addr = admin.local_addr();
    println!("listening on {} (admin {admin_addr})", server.local_addr());

    let (status, _) = http_get(admin_addr, "/healthz");
    let (ready_status, _) = http_get(admin_addr, "/readyz");
    if status != 200 || ready_status != 200 {
        fail(&format!(
            "health {status} / ready {ready_status}, want 200/200"
        ));
    }
    println!("telemetry: health ok");

    // Loadgen smoke, then the first scrape mid-run (the server stays up).
    let cfg = benchkit::LoadConfig::select(
        8,
        6,
        "admin",
        "SELECT region, amount FROM sales WHERE id < 50",
    );
    let report = benchkit::run_load(server.local_addr(), &cfg);
    if report.calls_ok != 48 {
        fail(&format!("loadgen smoke: {}/48 calls ok", report.calls_ok));
    }
    let (status, scrape1) = http_get(admin_addr, "/metrics");
    if status != 200 {
        fail(&format!("/metrics returned {status}"));
    }

    // A slow call for the flight recorder, plus a second traffic round.
    let mut client =
        Client::connect(server.local_addr()).unwrap_or_else(|e| fail(&format!("connect: {e}")));
    client
        .initialize("admin")
        .unwrap_or_else(|e| fail(&format!("initialize: {e}")));
    match client.call("sleepy", &Json::object([] as [(&str, Json); 0])) {
        Ok(Ok(_)) => {}
        other => fail(&format!("sleepy call: {other:?}")),
    }
    let report = benchkit::run_load(server.local_addr(), &cfg);
    if report.calls_ok != 48 {
        fail(&format!("second loadgen round: {}/48 ok", report.calls_ok));
    }
    let (_, scrape2) = http_get(admin_addr, "/metrics");

    // Key series: a tool-labeled counter, an mvcc gauge, a latency
    // histogram, and the uptime gauge.
    for needle in [
        "tool_calls_total{outcome=\"ok\",tool=\"select\"}",
        "# TYPE minidb_mvcc_retained_versions gauge",
        "minidb_wal_bytes_since_checkpoint",
        "# TYPE tool_latency histogram",
        "tool_latency_bucket{tool=\"select\",le=\"+Inf\"}",
        "process_uptime_seconds",
        "wire_active_sessions",
        "wire_queue_depth",
    ] {
        if !scrape2.contains(needle) {
            fail(&format!("/metrics is missing `{needle}`"));
        }
    }
    println!("telemetry: metrics ok");

    // Monotonicity: every counter series present in scrape 1 must be <= in
    // scrape 2 — counters never go backwards under live traffic.
    let before = parse_counter_series(&scrape1);
    let after = parse_counter_series(&scrape2);
    if before.is_empty() {
        fail("first scrape contained no counter series");
    }
    for (series, v1) in &before {
        match after.get(series) {
            Some(v2) if v2 >= v1 => {}
            Some(v2) => fail(&format!("counter `{series}` went backwards: {v1} -> {v2}")),
            None => fail(&format!("counter `{series}` vanished between scrapes")),
        }
    }
    println!("telemetry: monotonic ok ({} counter series)", before.len());

    // /slow: the sleepy call was captured with its full span tree.
    let (status, body) = http_get(admin_addr, "/slow");
    if status != 200 {
        fail(&format!("/slow returned {status}"));
    }
    let json = Json::parse(&body).unwrap_or_else(|e| fail(&format!("/slow is not JSON: {e}")));
    let calls = json
        .get("slow_calls")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail("/slow has no slow_calls array"));
    let has_sleepy = calls.iter().any(|call| {
        call.get("spans")
            .and_then(Json::as_array)
            .is_some_and(|spans| {
                spans
                    .iter()
                    .any(|s| s.get("name").and_then(Json::as_str) == Some("tool:sleepy"))
            })
    });
    if !has_sleepy {
        fail(&format!(
            "no captured slow call contains a tool:sleepy span ({} captures)",
            calls.len()
        ));
    }
    println!("telemetry: slow ok ({} captures)", calls.len());

    // Drain: readiness flips to 503 while liveness stays green.
    drop(client);
    server.shutdown();
    let (ready_status, _) = http_get(admin_addr, "/readyz");
    let (health_status, _) = http_get(admin_addr, "/healthz");
    if ready_status != 503 || health_status != 200 {
        fail(&format!(
            "after shutdown: readyz {ready_status} (want 503), healthz {health_status} (want 200)"
        ));
    }
    println!("telemetry: readyz ok (503 during drain)");
    admin.shutdown();

    // Overhead: the telemetry plane must stay within 10% of the disabled
    // baseline on the think-paced smoke. Loopback throughput jitters, so
    // allow a few attempts before declaring a regression.
    let mut ratio = 0.0;
    for attempt in 1..=3 {
        let off = telemetry_smoke_throughput(false);
        let on = telemetry_smoke_throughput(true);
        ratio = if off > 0.0 { on / off } else { 0.0 };
        if ratio >= 0.9 {
            break;
        }
        eprintln!("telemetry: overhead attempt {attempt}: ratio {ratio:.3}, retrying");
    }
    if ratio < 0.9 {
        fail(&format!(
            "telemetry overhead exceeds 10%: enabled/disabled throughput ratio {ratio:.3}"
        ));
    }
    println!("telemetry: overhead ok (ratio {ratio:.2})");
    println!("telemetry: all ok");
}

/// The distributed-tracing smoke test CI runs (`trace-smoke`): every step
/// prints a `tracing:` marker the gate greps for, and any deviation exits
/// non-zero.
fn run_selftest_tracing() {
    use obs::{TraceContext, TraceId};

    // 1ms slow threshold so the sleepy call below is tail-sampled into the
    // flight recorder and retrievable by trace id.
    let obs = Obs::with_flight(
        &ObsConfig::InMemory,
        FlightConfig::with_threshold_ns(1_000_000),
    );
    let mut external = ml_registry();
    external.register_tool(FnTool::new(
        "sleepy",
        "sleeps past the slow-call threshold",
        Signature::new(vec![]),
        |_: &Args| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(ToolOutput::value(Json::str("done")))
        },
    ));
    external.register_tool(FnTool::new(
        "napper",
        "sleeps long enough to be observed in flight",
        Signature::new(vec![]),
        |_: &Args| {
            std::thread::sleep(Duration::from_millis(250));
            Ok(ToolOutput::value(Json::str("rested")))
        },
    ));
    // Gate with caches on: SQL calls consult the prepared-plan cache (a
    // `gate:plan` span + statement-store cache hits), context tools the
    // retrieval cache.
    let server = WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(demo_db())
            .with_external(external)
            .with_gate(GateConfig::default().with_cache()),
        WireConfig::default(),
        obs.clone(),
    )
    .unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    let admin = AdminServer::bind("127.0.0.1:0", obs.clone(), server.ready_handle())
        .unwrap_or_else(|e| fail(&format!("cannot bind admin: {e}")));
    let admin_addr = admin.local_addr();
    println!("listening on {} (admin {admin_addr})", server.local_addr());

    // 1. Traceparent round trip: a client-supplied context is echoed back
    // and its trace id names every layer of the call.
    let ctx = TraceContext::parse("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
        .unwrap_or_else(|| fail("w3c example traceparent must parse"));
    let mut client =
        Client::connect(server.local_addr()).unwrap_or_else(|e| fail(&format!("connect: {e}")));
    client
        .initialize("admin")
        .unwrap_or_else(|e| fail(&format!("initialize: {e}")));
    let select_args = Json::object([(
        "sql",
        Json::str("SELECT region, amount FROM sales WHERE id < 50"),
    )]);
    match client.call_traced("select", &select_args, &ctx) {
        Ok(Ok(out)) if out.rows == Some(50) => {}
        other => fail(&format!("traced select: {other:?}")),
    }
    if client.last_traceparent() != Some(ctx.to_traceparent().as_str()) {
        fail(&format!(
            "traceparent echo mismatch: sent {}, got {:?}",
            ctx.to_traceparent(),
            client.last_traceparent()
        ));
    }
    let layers = ["wire:call", "gate:plan", "tool:select", "sql:execute"];
    // The wire:call span closes just after the response is written; give
    // the worker a moment to flush it.
    let mut missing = Vec::new();
    for _ in 0..100 {
        let spans = obs.snapshot().spans;
        missing = layers
            .iter()
            .filter(|name| {
                !spans
                    .iter()
                    .any(|s| &s.name == *name && s.trace == Some(ctx.trace))
            })
            .collect();
        if missing.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    if !missing.is_empty() {
        fail(&format!(
            "layers missing a span in the client's trace: {missing:?}"
        ));
    }
    println!("tracing: traceparent ok ({} layers)", layers.len());

    // 2. Tail sampling: a slow traced call is retained whole and served
    // back by its trace id.
    let slow_ctx = TraceContext::new(
        TraceId::from_u128(0xfeed_face_cafe_f00d_dead_beef_0badu128).unwrap(),
        obs::next_span_id(),
    );
    match client.call_traced("sleepy", &Json::object([] as [(&str, Json); 0]), &slow_ctx) {
        Ok(Ok(_)) => {}
        other => fail(&format!("traced sleepy call: {other:?}")),
    }
    let trace_hex = slow_ctx.trace.to_string();
    let mut retained = None;
    for _ in 0..100 {
        let (status, body) = http_get(admin_addr, &format!("/slow/{trace_hex}"));
        if status == 200 {
            retained = Some(body);
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let body = retained.unwrap_or_else(|| {
        fail(&format!(
            "/slow/{trace_hex} never returned the retained call"
        ))
    });
    let call = Json::parse(&body).unwrap_or_else(|e| fail(&format!("/slow/<id> not JSON: {e}")));
    let has_sleepy = call
        .get("spans")
        .and_then(Json::as_array)
        .is_some_and(|spans| {
            spans
                .iter()
                .any(|s| s.get("name").and_then(Json::as_str) == Some("tool:sleepy"))
        });
    if !has_sleepy {
        fail(&format!(
            "retained call for {trace_hex} has no tool:sleepy span: {body:.200}"
        ));
    }
    println!("tracing: tail sampling ok (/slow/{trace_hex})");

    // 3. EXPLAIN ANALYZE plausibility: every node renders an actual time,
    // and no child's inclusive time exceeds the root's.
    let db = demo_db();
    let mut session = db.session("admin").unwrap_or_else(|e| fail(&e.to_string()));
    let analyzed = match session.execute_sql(
        "EXPLAIN ANALYZE SELECT region, SUM(amount) FROM sales WHERE amount > 20 \
         GROUP BY region ORDER BY region",
    ) {
        Ok(QueryResult::Rows { rows, .. }) => rows,
        other => fail(&format!("EXPLAIN ANALYZE did not return rows: {other:?}")),
    };
    let times: Vec<f64> = analyzed
        .iter()
        .map(|row| {
            let line = match &row[0] {
                Value::Text(t) => t.clone(),
                v => fail(&format!("EXPLAIN ANALYZE row is not text: {v:?}")),
            };
            line.split("(actual time=")
                .nth(1)
                .and_then(|t| t.split("ms").next())
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| fail(&format!("plan line has no actual time: {line}")))
        })
        .collect();
    if times.len() < 3 {
        fail(&format!(
            "expected a multi-node plan, got {} node(s)",
            times.len()
        ));
    }
    let root = times[0];
    // Operator times are inclusive: a child's window is a sub-interval of
    // the root's, so child <= root up to the 3-decimal rendering rounding.
    for (i, t) in times.iter().enumerate().skip(1) {
        if *t > root + 0.002 {
            fail(&format!(
                "node {i} actual time {t:.3}ms exceeds root {root:.3}ms"
            ));
        }
    }
    println!(
        "tracing: explain ok ({} nodes, root {root:.3}ms)",
        times.len()
    );

    // 4. Statement statistics: a loadgen burst plus one denial populate
    // per-(user, normalized statement) aggregates on /statements.
    let cfg = benchkit::LoadConfig::select(
        4,
        25,
        "admin",
        "SELECT region, amount FROM sales WHERE id < 50",
    );
    let report = benchkit::run_load(server.local_addr(), &cfg);
    if report.calls_ok != 100 {
        fail(&format!("loadgen burst: {}/100 calls ok", report.calls_ok));
    }
    let mut reader =
        Client::connect(server.local_addr()).unwrap_or_else(|e| fail(&format!("connect: {e}")));
    reader
        .initialize("reader")
        .unwrap_or_else(|e| fail(&format!("initialize reader: {e}")));
    match reader.call(
        "select",
        &Json::object([("sql", Json::str("SELECT note FROM audit_log"))]),
    ) {
        Ok(Err(ToolError::Denied { .. })) => {}
        other => fail(&format!("reader probe should be denied, got {other:?}")),
    }
    let (status, body) = http_get(admin_addr, "/statements");
    if status != 200 {
        fail(&format!("/statements returned {status}"));
    }
    let json = Json::parse(&body).unwrap_or_else(|e| fail(&format!("/statements not JSON: {e}")));
    let statements = json
        .get("statements")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail("/statements has no statements array"));
    let field = |e: &Json, k: &str| e.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let admin_entry = statements
        .iter()
        .find(|e| {
            e.get("user").and_then(Json::as_str) == Some("admin")
                && e.get("statement")
                    .and_then(Json::as_str)
                    .is_some_and(|s| s.to_ascii_lowercase().contains("sales"))
                && field(e, "calls") >= 100.0
        })
        .unwrap_or_else(|| {
            fail(&format!(
                "no admin sales aggregate with >=100 calls in /statements: {body:.400}"
            ))
        });
    if field(admin_entry, "rows") < 100.0 * 50.0 {
        fail(&format!(
            "admin aggregate rows {} < 5000",
            field(admin_entry, "rows")
        ));
    }
    if field(admin_entry, "cache_hits") == 0.0 {
        fail("repeated identical statements never hit the plan cache");
    }
    if field(admin_entry, "total_ns") <= 0.0 || field(admin_entry, "mean_ns") <= 0.0 {
        fail("admin aggregate has no latency totals");
    }
    let denied = statements.iter().any(|e| {
        e.get("user").and_then(Json::as_str) == Some("reader") && field(e, "denials") >= 1.0
    });
    if !denied {
        fail(&format!(
            "reader denial missing from /statements: {body:.400}"
        ));
    }
    let (_, scrape) = http_get(admin_addr, "/metrics");
    if !scrape.contains("obs_statements_entries") {
        fail("/metrics is missing obs_statements_entries");
    }
    println!("tracing: statements ok ({} aggregates)", statements.len());

    // 5. In-flight queries: a long call shows up on /queries while it runs.
    let wire_addr = server.local_addr();
    let napper = std::thread::spawn(move || {
        let mut c = Client::connect(wire_addr).expect("connect napper client");
        c.initialize("admin").expect("initialize napper client");
        match c.call("napper", &Json::object([] as [(&str, Json); 0])) {
            Ok(Ok(_)) => {}
            other => panic!("napper call: {other:?}"),
        }
    });
    let mut observed = false;
    for _ in 0..200 {
        let (status, body) = http_get(admin_addr, "/queries");
        if status != 200 {
            fail(&format!("/queries returned {status}"));
        }
        let json = Json::parse(&body).unwrap_or_else(|e| fail(&format!("/queries not JSON: {e}")));
        let queries = json
            .get("queries")
            .and_then(Json::as_array)
            .unwrap_or_else(|| fail("/queries has no queries array"));
        if queries.iter().any(|q| {
            q.get("tool").and_then(Json::as_str) == Some("napper")
                && q.get("user").and_then(Json::as_str) == Some("admin")
        }) {
            observed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    napper
        .join()
        .unwrap_or_else(|_| fail("napper thread panicked"));
    if !observed {
        fail("the napper call never appeared on /queries while in flight");
    }
    println!("tracing: queries ok");

    client.shutdown().ok();
    reader.shutdown().ok();
    server.shutdown();
    admin.shutdown();

    // 6. Overhead: with profiling off (no traced slow calls — the default
    // 100ms threshold captures nothing on this smoke), the traced plane
    // including the statement store and in-flight registry must stay
    // within 10% of the disabled-telemetry baseline.
    let mut ratio = 0.0;
    for attempt in 1..=3 {
        let off = telemetry_smoke_throughput(false);
        let on = telemetry_smoke_throughput(true);
        ratio = if off > 0.0 { on / off } else { 0.0 };
        if ratio >= 0.9 {
            break;
        }
        eprintln!("tracing: overhead attempt {attempt}: ratio {ratio:.3}, retrying");
    }
    if ratio < 0.9 {
        fail(&format!(
            "tracing overhead exceeds 10%: enabled/disabled throughput ratio {ratio:.3}"
        ));
    }
    println!("tracing: overhead ok (ratio {ratio:.2})");
    println!("tracing: all ok");
}

/// Loopback load generation with the benchkit report. With a profile name,
/// the raw tool-call hammer is replaced by full simulated ReAct agents (one
/// per session, `calls` tasks each) driving mirrored wire registries against
/// a cache-enabled gate.
fn run_loadgen(sessions: usize, calls: usize, profile: Option<&str>) {
    if let Some(name) = profile {
        let profile = LlmProfile::by_name(name).unwrap_or_else(|| {
            fail(&format!(
                "unknown profile '{name}' (expected gpt4o, claude4, or explorer)"
            ))
        });
        let obs = Obs::in_memory();
        let server = WireServer::bind(
            "127.0.0.1:0",
            tenancy().with_gate(GateConfig::default().with_cache()),
            WireConfig::default(),
            obs.clone(),
        )
        .unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
        println!("listening on {}", server.local_addr());
        let (completed, total, tool_calls) =
            run_agent_sessions(server.local_addr(), &profile, sessions, calls);
        server.shutdown();
        let (hits, misses) = context_cache_counts(&obs);
        println!(
            "agent load: profile {} — {completed}/{total} tasks completed, {tool_calls} tool calls",
            profile.name
        );
        println!(
            "  context cache: {hits} hits / {misses} misses (hit rate {:.1}%)",
            if hits + misses == 0 {
                0.0
            } else {
                100.0 * hits as f64 / (hits + misses) as f64
            }
        );
        if completed == 0 {
            fail("no agent task completed");
        }
        return;
    }
    let server = WireServer::bind(
        "127.0.0.1:0",
        tenancy(),
        WireConfig::default(),
        Obs::in_memory(),
    )
    .unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    println!("listening on {}", server.local_addr());
    let cfg = benchkit::LoadConfig::select(
        sessions,
        calls,
        "admin",
        "SELECT region, amount FROM sales WHERE id < 50",
    );
    let report = benchkit::run_load(server.local_addr(), &cfg);
    server.shutdown();
    print!("{}", report.render());
    if report.calls_ok != (sessions * calls) as u64 {
        fail(&format!(
            "only {}/{} calls succeeded",
            report.calls_ok,
            sessions * calls
        ));
    }
}

/// The read task the agent-load modes replay: grounded on the demo `sales`
/// table, with a value lookup so exploration-heavy profiles re-probe
/// `get_value` as well as `get_schema`.
fn demo_task() -> TaskSpec {
    let mut step = llmsim::SqlStep::simple(
        "select",
        vec!["sales".into()],
        "SELECT region, amount FROM sales WHERE region = 'north'",
    );
    step.lookup = Some(llmsim::ValueLookup {
        table: "sales".into(),
        column: "region".into(),
        key: "north".into(),
        actual: "north".into(),
    });
    TaskSpec::read("serve-demo", "Total sales for the north region", step)
}

/// Sum the gate's context-tool cache counters out of an obs snapshot:
/// `(hits, misses)` across `get_schema` / `get_object` / `get_value`.
fn context_cache_counts(obs: &Obs) -> (u64, u64) {
    let snap = obs.snapshot();
    let mut hits = 0u64;
    let mut misses = 0u64;
    for tool in ["get_schema", "get_object", "get_value"] {
        hits += snap
            .metrics
            .labeled_counter("gate.cache", &[("tool", tool), ("hit", "true")]);
        misses += snap
            .metrics
            .labeled_counter("gate.cache", &[("tool", tool), ("hit", "false")]);
    }
    (hits, misses)
}

/// Drive `sessions` concurrent simulated-agent sessions against `addr`
/// (each running `tasks_per_session` replays of the demo task through its
/// own mirrored wire registry). Returns `(completed, total, tool_calls)`.
fn run_agent_sessions(
    addr: SocketAddr,
    profile: &LlmProfile,
    sessions: usize,
    tasks_per_session: usize,
) -> (u64, u64, u64) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    let completed = AtomicU64::new(0);
    let tool_calls = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for i in 0..sessions {
            let completed = &completed;
            let tool_calls = &tool_calls;
            let profile = profile.clone();
            scope.spawn(move || {
                let mut client =
                    Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));
                let init = client
                    .initialize("admin")
                    .unwrap_or_else(|e| fail(&format!("initialize: {e}")));
                let prompt = init
                    .get("prompt")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail("initialize returned no prompt"))
                    .to_owned();
                let mirror = wire::mirror_registry(Arc::new(Mutex::new(client)))
                    .unwrap_or_else(|e| fail(&format!("mirror registry: {e}")));
                let agent = ReactAgent::new(profile, prompt);
                let task = demo_task();
                for j in 0..tasks_per_session {
                    let seed =
                        benchkit::harness::task_seed((i * tasks_per_session + j) as u64, &task.id);
                    let trace = agent.run(&mirror, &task, seed);
                    if trace.outcome.is_completed() {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    tool_calls.fetch_add(trace.tool_calls as u64, Ordering::Relaxed);
                }
            });
        }
    });
    (
        completed.into_inner(),
        (sessions * tasks_per_session) as u64,
        tool_calls.into_inner(),
    )
}

/// The agent-traffic gate benchmark (ci/check.sh `gate-smoke`).
///
/// Phase 1 measures the cache economics of exploration-heavy agents: four
/// explorer sessions replay the demo task through a cache-enabled gate and
/// the context-tool hit rate plus task completion rate are read back from
/// the server's `gate.cache` counters.
///
/// Phase 2 measures budget moderation and fairness: three steady tenants
/// run a fixed workload against a budgeted, weighted server, first alone
/// (the baseline) and then alongside a runaway tenant driving expensive
/// scans from two extra sessions. The runaway's personal budget caps it
/// almost immediately — every attempt past the cap is denied before
/// touching the engine — so the steady tenants keep their throughput
/// (`fairness_ratio`) and their p95 stays close to the baseline
/// (`p95_ratio`, gated at ≤ 1.2 in CI). Loopback latency jitters, so the
/// differential gets a few attempts and keeps the best.
fn run_bench_gate(out_path: &str) {
    const SESSIONS: usize = 4;
    const TASKS_PER_SESSION: usize = 6;
    /// The runaway's personal call budget (a ledger override): a sliver of
    /// its 600 attempts, so the contention window before the cap lands is
    /// a small fraction of the run.
    const HOG_BUDGET: u64 = 12;
    const STEADY_CALLS: usize = 300;
    /// Agent think time: keeps the server agent-paced rather than
    /// saturated, as in production, so queueing — not CPU starvation —
    /// is what the fairness differential measures.
    const THINK_NS: u64 = 4_000_000;

    // Phase 1: exploration-heavy cache economics.
    let profile = LlmProfile::explorer();
    let obs = Obs::in_memory();
    let server = WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(demo_db()).with_gate(GateConfig::default().with_cache()),
        WireConfig::default(),
        obs.clone(),
    )
    .unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    let (completed, total, tool_calls) =
        run_agent_sessions(server.local_addr(), &profile, SESSIONS, TASKS_PER_SESSION);
    server.shutdown();
    let (hits, misses) = context_cache_counts(&obs);
    let plan_hits = obs
        .snapshot()
        .metrics
        .labeled_counter("gate.cache", &[("tool", "plan"), ("hit", "true")]);
    if hits + misses == 0 {
        fail("explorer run never touched the context cache");
    }
    let hit_rate = hits as f64 / (hits + misses) as f64;
    let completion_rate = completed as f64 / total.max(1) as f64;
    println!(
        "bench: explorer {completed}/{total} tasks, {tool_calls} tool calls, \
         context cache {hits} hits / {misses} misses (hit_rate {hit_rate:.3}), \
         plan hits {plan_hits}"
    );

    // Phase 2: tenant fairness under a budgeted runaway.
    let steady = ["tenant_a", "tenant_b", "tenant_c"];
    let steady_sql = "SELECT region, amount FROM sales WHERE id < 50";
    let hog_sql = "SELECT * FROM sales";
    let bench_db = || {
        let db = demo_db();
        for user in steady.iter().copied().chain(["hog"]) {
            db.create_user(user, false).expect("fresh user");
            db.grant(user, sqlkit::Action::Select, "sales")
                .expect("sales exists");
        }
        db
    };
    let bind_weighted = || {
        WireServer::bind(
            "127.0.0.1:0",
            Tenancy::new(bench_db()).with_gate(
                GateConfig::default()
                    .with_cache()
                    .with_user_ledger(std::sync::Arc::new(
                        BudgetLedger::new(BudgetLimits::unlimited()).with_user_limit(
                            "hog",
                            BudgetLimits::unlimited().with_calls(HOG_BUDGET),
                        ),
                    )),
            ),
            WireConfig {
                tenant_weights: steady.iter().map(|u| ((*u).to_owned(), 4)).collect(),
                ..WireConfig::default()
            },
            Obs::in_memory(),
        )
        .unwrap_or_else(|e| fail(&format!("cannot bind: {e}")))
    };
    let run_baseline = || {
        let server = bind_weighted();
        let mut cfg = benchkit::LoadConfig::select(steady.len(), STEADY_CALLS, "x", steady_sql);
        cfg.users = steady.iter().map(|u| (*u).to_owned()).collect();
        cfg.think_ns = THINK_NS;
        let report = benchkit::run_load(server.local_addr(), &cfg);
        server.shutdown();
        report
    };
    let run_runaway = || {
        let server = bind_weighted();
        let mut cfg = benchkit::LoadConfig::select(5, STEADY_CALLS, "x", steady_sql);
        cfg.users = steady
            .iter()
            .map(|u| (*u).to_owned())
            .chain((0..2).map(|_| "hog".to_owned()))
            .collect();
        cfg.think_ns = THINK_NS;
        let cfg = cfg.with_user_rotation(
            "hog",
            vec![("select".into(), Json::object([("sql", Json::str(hog_sql))]))],
        );
        let report = benchkit::run_load(server.local_addr(), &cfg);
        server.shutdown();
        report
    };
    let steady_p95 = |report: &benchkit::LoadReport| -> f64 {
        let sum: u64 = steady
            .iter()
            .map(|u| report.user_p95_ns(u).unwrap_or(0))
            .sum();
        sum as f64 / steady.len() as f64
    };
    let mut chosen: Option<(benchkit::LoadReport, f64)> = None;
    for attempt in 1..=3 {
        let base = run_baseline();
        let run = run_runaway();
        let (b95, r95) = (steady_p95(&base), steady_p95(&run));
        let ratio = if b95 > 0.0 { r95 / b95 } else { f64::INFINITY };
        println!(
            "bench: fairness attempt {attempt}: steady p95 {:.1}us -> {:.1}us (p95_ratio {ratio:.3})",
            b95 / 1e3,
            r95 / 1e3
        );
        let better = chosen.as_ref().is_none_or(|(_, r)| ratio < *r);
        if better {
            chosen = Some((run, ratio));
        }
        if ratio <= 1.2 {
            break;
        }
    }
    let (run, p95_ratio) = chosen.expect("at least one attempt ran");

    // The runaway must be moderated by its budget, not starve anyone.
    let hog = &run.per_user["hog"];
    if hog.calls_ok > HOG_BUDGET {
        fail(&format!(
            "runaway got {} calls through a {HOG_BUDGET}-call budget",
            hog.calls_ok
        ));
    }
    if hog.tool_errors == 0 {
        fail("runaway tenant was never denied by its budget");
    }
    for user in steady {
        let stats = &run.per_user[user];
        if stats.tool_errors != 0 {
            fail(&format!(
                "steady tenant {user} hit {} tool errors — the runaway's \
                 budget must never spill onto well-behaved tenants",
                stats.tool_errors
            ));
        }
        if stats.calls_ok == 0 {
            fail(&format!("steady tenant {user} was starved"));
        }
    }
    // Fairness among the *well-behaved* tenants: the runaway is excluded
    // because its throughput is capped by policy, not by scheduling.
    let steady_oks: Vec<u64> = steady.iter().map(|u| run.per_user[*u].calls_ok).collect();
    let fairness_ratio = *steady_oks.iter().max().expect("nonempty") as f64
        / *steady_oks.iter().min().expect("nonempty") as f64;
    println!(
        "bench: runaway capped at {}/{} ok ({} denied), fairness_ratio {fairness_ratio:.3}, \
         p95_ratio {p95_ratio:.3}",
        hog.calls_ok, hog.calls_attempted, hog.tool_errors
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"gate\",\n");
    json.push_str(&format!(
        "  \"explorer\": {{\"sessions\": {SESSIONS}, \"tasks\": {total}, \
         \"completed\": {completed}, \"tool_calls\": {tool_calls}, \
         \"context_hits\": {hits}, \"context_misses\": {misses}, \
         \"plan_hits\": {plan_hits}}},\n"
    ));
    json.push_str(&format!(
        "  \"fairness\": {{\"steady_tenants\": {}, \"steady_calls_each\": {STEADY_CALLS}, \
         \"hog_budget\": {HOG_BUDGET}, \"hog_calls_ok\": {}, \"hog_denied\": {}}},\n",
        steady.len(),
        hog.calls_ok,
        hog.tool_errors
    ));
    json.push_str(&format!(
        "  \"hit_rate\": {hit_rate:.3},\n  \"completion_rate\": {completion_rate:.3},\n  \
         \"fairness_ratio\": {fairness_ratio:.3},\n  \"p95_ratio\": {p95_ratio:.3}\n}}\n"
    ));
    if let Err(e) = std::fs::write(out_path, &json) {
        fail(&format!("cannot write {out_path}: {e}"));
    }
    println!("bench: wrote {out_path}");
}

/// Cost-based planner benchmark (ci/check.sh `planner-smoke`): run the
/// benchkit planner microbench, hard-fail unless the optimizer made every
/// decision it exists to make, and write the JSON report the CI regression
/// gate consumes. Plan shapes are deterministic; of the timings, only the
/// streaming-LIMIT speedup is asserted here (its win is orders of
/// magnitude, so a modest margin is safe against CI noise).
fn run_bench_planner(out_path: &str, sales_rows: usize) {
    /// "Measurably faster": the streaming LIMIT touches ~10 rows where the
    /// unpushed plan materializes the whole filtered table, so the true
    /// ratio is large; 1.5x is the noise-proof floor.
    const LIMIT_SPEEDUP_FLOOR: f64 = 1.5;
    let cfg = benchkit::PlannerBenchConfig {
        sales_rows,
        iters: 5,
    };
    println!(
        "bench: planner microbench, {sales_rows} fact rows, best of {} runs",
        cfg.iters
    );
    let report = benchkit::run_planner_bench(&cfg);
    print!("{}", report.render());
    if !report.probe_uses_index {
        fail("analyzed selective probe did not pick the index scan");
    }
    if !report.constant_probe_uses_seq_scan {
        fail("analyzed constant-column probe did not fall back to the seq scan");
    }
    if !report.join_reordered {
        fail("worst-first three-way join kept its syntactic order");
    }
    if !report.topk_bounded {
        fail("ORDER BY + LIMIT sort was not bounded to top-k");
    }
    if !report.limit_streams {
        fail("filtered LIMIT pipeline did not stream");
    }
    if report.limit_speedup() < LIMIT_SPEEDUP_FLOOR {
        fail(&format!(
            "LIMIT pushdown speedup {:.2}x under the {LIMIT_SPEEDUP_FLOOR}x floor",
            report.limit_speedup()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"planner\",\n  \"sales_rows\": {},\n  \
         \"probe_uses_index\": {},\n  \"constant_probe_uses_seq_scan\": {},\n  \
         \"join_reordered\": {},\n  \"topk_bounded\": {},\n  \"limit_streams\": {},\n  \
         \"probe_speedup\": {:.2},\n  \"join_speedup\": {:.2},\n  \
         \"topk_speedup\": {:.2},\n  \"limit_speedup\": {:.2}\n}}\n",
        report.sales_rows,
        report.probe_uses_index,
        report.constant_probe_uses_seq_scan,
        report.join_reordered,
        report.topk_bounded,
        report.limit_streams,
        report.probe_speedup(),
        report.join_speedup(),
        report.topk_speedup(),
        report.limit_speedup(),
    );
    if let Err(e) = std::fs::write(out_path, &json) {
        fail(&format!("cannot write {out_path}: {e}"));
    }
    println!("bench: wrote {out_path}");
}

/// MVCC read-scaling benchmark (ci/bench.sh): serve the BIRD-Ext template
/// over loopback and measure transactional read throughput (BEGIN → SELECT
/// gold SQL → COMMIT, with agent think time) at 1/2/4/8 concurrent
/// sessions. Each session holds real snapshot transactions, so any number
/// of them proceed in parallel under MVCC — under the old single global
/// transaction slot the concurrent BEGINs would fail outright. Writes a
/// machine-readable JSON report (consumed by the ci/check.sh regression
/// gate) and prints one `bench:` line per worker count.
fn run_bench_mvcc(out_path: &str, calls_per_session: usize) {
    const SEED: u64 = 42;
    const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
    /// Simulated agent think time per call. Real BridgeScope sessions are
    /// paced by LLM latency (tens to thousands of ms); 2ms keeps the run
    /// fast while still leaving a lone session far from saturating the
    /// server, so the scaling headroom measured is the server's.
    const THINK_NS: u64 = 2_000_000;
    let ext = benchkit::generate_bird_ext(SEED);
    let mut sqls: Vec<String> = Vec::new();
    for task in ext.tasks.iter().filter(|t| !t.is_write()) {
        for step in &task.spec.steps {
            if !sqls.contains(&step.gold) {
                sqls.push(step.gold.clone());
            }
        }
        if sqls.len() >= 16 {
            break;
        }
    }
    if sqls.is_empty() {
        fail("no BIRD read tasks generated");
    }
    let server = WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(ext.template.fork()),
        WireConfig::default(),
        Obs::in_memory(),
    )
    .unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    let addr = server.local_addr();
    println!(
        "bench: mvcc txn-read scaling, seed {SEED}, {} queries, {} calls/session, think 2ms",
        sqls.len(),
        calls_per_session
    );
    // Warm-up pass so the first measured run doesn't pay one-time costs.
    let warm = benchkit::LoadConfig::txn_read_rotation(2, 30, "admin", &sqls, 0);
    let _ = benchkit::run_load(addr, &warm);
    let mut runs = Vec::new();
    for &workers in &WORKER_COUNTS {
        let cfg = benchkit::LoadConfig::txn_read_rotation(
            workers,
            calls_per_session,
            "admin",
            &sqls,
            THINK_NS,
        );
        let report = benchkit::run_load(addr, &cfg);
        let expected = (workers * cfg.calls_per_session) as u64;
        if report.calls_ok != expected {
            server.shutdown();
            fail(&format!(
                "workers={workers}: only {}/{} calls succeeded \
                 (busy {}, tool-err {}, transport-err {})",
                report.calls_ok,
                expected,
                report.rejected_busy,
                report.tool_errors,
                report.transport_errors,
            ));
        }
        let throughput = report.throughput();
        let [p50, p95, p99] = report.percentiles_ns();
        println!(
            "bench: workers={workers} calls={} throughput={throughput:.1} calls/s \
             p50={}us p95={}us p99={}us",
            report.calls_ok,
            p50 / 1_000,
            p95 / 1_000,
            p99 / 1_000,
        );
        runs.push((workers, report.calls_ok, throughput, p50, p95, p99));
    }
    server.shutdown();
    let t1 = runs[0].2;
    let t8 = runs[runs.len() - 1].2;
    let scaling = if t1 > 0.0 { t8 / t1 } else { 0.0 };
    println!("bench: scaling_8v1={scaling:.2}");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"mvcc_read_scaling\",\n  \"seed\": {SEED},\n  \"queries\": {},\n  \"calls_per_session\": {calls_per_session},\n",
        sqls.len()
    ));
    json.push_str("  \"runs\": [\n");
    for (idx, (workers, ok, tput, p50, p95, p99)) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {workers}, \"calls_ok\": {ok}, \"throughput_cps\": {tput:.1}, \
             \"p50_ns\": {p50}, \"p95_ns\": {p95}, \"p99_ns\": {p99}}}{}\n",
            if idx + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"scaling_8v1\": {scaling:.2}\n"));
    json.push_str("}\n");
    if let Err(e) = std::fs::write(out_path, &json) {
        fail(&format!("cannot write {out_path}: {e}"));
    }
    println!("bench: wrote {out_path}");
}
