//! Quickstart: build a database, create a user, assemble their BridgeScope
//! tool surface, and drive it the way an agent would — context retrieval,
//! a grounded query, and a transactional write.
//!
//! Run with: `cargo run --example quickstart`

use bridgescope::prelude::*;

fn main() {
    // 1. An in-memory database with a couple of tables.
    let db = Database::new();
    let mut admin = db.session("admin").expect("admin exists");
    for sql in [
        "CREATE TABLE products (id INTEGER PRIMARY KEY, name TEXT NOT NULL, \
         category TEXT, price REAL CHECK (price >= 0))",
        "CREATE TABLE orders (id INTEGER PRIMARY KEY, \
         product_id INTEGER REFERENCES products(id), quantity INTEGER, day TEXT)",
        "INSERT INTO products VALUES \
         (1, 'Trail runner', 'women''s footwear', 129.0), \
         (2, 'City loafer', 'men''s footwear', 99.0), \
         (3, 'Rain shell', 'outerwear', 189.0)",
        "INSERT INTO orders VALUES (1, 1, 2, '2026-07-01'), (2, 3, 1, '2026-07-02')",
    ] {
        admin.execute_sql(sql).expect("setup SQL is valid");
    }

    // 2. A store manager: full CRUD on both tables, granted PostgreSQL-style.
    db.create_user("manager", false).expect("fresh user");
    db.grant_all("manager", "products").expect("table exists");
    db.grant_all("manager", "orders").expect("table exists");

    // 3. Their BridgeScope tool surface. The policy blocks the drop tool.
    let policy = SecurityPolicy::default().with_blocked_tools(["drop"]);
    let server = BridgeScopeServer::build(db.clone(), "manager", policy, &Registry::new())
        .expect("manager exists");
    let tools = &server.registry;
    println!("Exposed tools: {:?}\n", tools.names());

    // 4. F1 — context retrieval, annotated with the manager's privileges.
    let schema = tools.call("get_schema", &Json::Null).expect("allowed");
    println!("get_schema ->\n{}\n", schema.value.to_pretty());

    // 5. F1 — ground a text predicate: "women" matches "women's footwear".
    let exemplars = tools
        .call(
            "get_value",
            &Json::object([
                ("table", Json::str("products")),
                ("column", Json::str("category")),
                ("key", Json::str("women")),
                ("k", Json::num(2.0)),
            ]),
        )
        .expect("allowed");
    println!("get_value(category, \"women\") -> {}\n", exemplars.value);

    // 6. F2 — a verified, privilege-checked query.
    let rows = tools
        .call(
            "select",
            &Json::object([(
                "sql",
                Json::str("SELECT name, price FROM products WHERE category = 'women''s footwear'"),
            )]),
        )
        .expect("allowed");
    println!("select -> {}\n", rows.value);

    // 7. F3 — a transactional write: order + stock price change, atomically.
    tools.call("begin", &Json::Null).expect("txn starts");
    tools
        .call(
            "insert",
            &Json::object([(
                "sql",
                Json::str("INSERT INTO orders VALUES (3, 2, 5, '2026-07-03')"),
            )]),
        )
        .expect("allowed");
    tools
        .call(
            "update",
            &Json::object([(
                "sql",
                Json::str("UPDATE products SET price = price * 0.9 WHERE id = 2"),
            )]),
        )
        .expect("allowed");
    tools.call("commit", &Json::Null).expect("txn commits");
    println!("committed an atomic order + price change");

    // 8. Security in action: the verification gate rejects what the engine
    //    would also reject — before the engine sees it.
    let denied = tools.call(
        "select",
        &Json::object([("sql", Json::str("SELECT * FROM no_such_table"))]),
    );
    println!("\nselect on unknown table -> {denied:?}");
    let smuggled = tools.call(
        "select",
        &Json::object([("sql", Json::str("DELETE FROM orders"))]),
    );
    println!("DELETE smuggled into the select tool -> {smuggled:?}");
    assert!(denied.is_err() && smuggled.is_err());
}
