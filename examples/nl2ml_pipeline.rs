//! An NL2ML-style end-to-end pipeline: extract housing data, normalize it,
//! train a model, and evaluate predictions — all through one nested proxy
//! unit, with the bulk data never entering the agent's context.
//!
//! Also demonstrates the contrast the paper's Table 2 quantifies: the same
//! pipeline driven through a PG-MCP-style agent routes the full table
//! through the LLM and dies of context overflow.
//!
//! Run with: `cargo run --release --example nl2ml_pipeline`

use benchkit::housing;
use bridgescope::prelude::*;

fn main() {
    // A 20,000-row California-Housing-like table, as in the paper.
    let rows = 20_000;
    println!("building house table ({rows} rows)…");
    let db = housing::build_database(rows, 42);
    db.create_user("analyst", false).expect("fresh user");
    db.grant("analyst", Action::Select, "house")
        .expect("house exists");

    let server = BridgeScopeServer::build(
        db.clone(),
        "analyst",
        SecurityPolicy::default(),
        &ml_registry(),
    )
    .expect("analyst exists");
    let tools = &server.registry;

    // The level-3 pipeline as one nested proxy unit:
    //   select(train slice) → normalize → train ┐
    //   select(eval slice) ──────────────────────┴→ predict
    let unit = r#"{
      "target_tool": "predict",
      "tool_args": {
        "model": {"unit": {
          "target_tool": "train_random_forest",
          "tool_args": {
            "data": {"unit": {
              "target_tool": "normalize_zscore",
              "tool_args": {
                "data": {"tool": "select", "args": {"sql":
                  "SELECT median_income, latitude, ocean_proximity, median_house_value FROM house WHERE housing_median_age > 15"},
                  "transform": "/rows"},
                "exclude": {"value": 3}
              }
            }, "transform": "/rows"},
            "target": {"value": 3},
            "n_trees": {"value": 8},
            "max_depth": {"value": 6}
          }
        }, "transform": "identity"},
        "data": {"unit": {
          "target_tool": "normalize_zscore",
          "tool_args": {
            "data": {"tool": "select", "args": {"sql":
              "SELECT median_income, latitude, ocean_proximity, median_house_value FROM house WHERE housing_median_age <= 15"},
              "transform": "/rows"},
            "exclude": {"value": 3}
          }
        }, "transform": "/rows"},
        "target": {"value": 3}
      }
    }"#;

    println!("executing the 3-level proxy unit…");
    let started = std::time::Instant::now();
    let out = tools
        .call("proxy", &Json::parse(unit).expect("valid spec"))
        .expect("pipeline runs");
    println!("done in {:.2?}", started.elapsed());
    println!(
        "predicted {} held-out rows; RMSE = {:.0}, R² = {:.3}",
        out.value.get("n_rows").and_then(Json::as_i64).unwrap_or(0),
        out.value
            .get("rmse")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN),
        out.value
            .get("r2")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN),
    );
    let result_tokens = llmsim::tokens::estimate(&out.value.to_compact());
    println!("tokens entering the agent context from the proxy: {result_tokens}");

    // Contrast: hand the table to an LLM instead, the way PG-MCP must (the
    // stock server's verbose object-rows), and count what that would cost.
    let mut session = db.session("analyst").expect("analyst exists");
    let result = session
        .execute_sql("SELECT * FROM house")
        .expect("select runs");
    let payload = bridgescope::core::bridge::result_to_output_verbose(result)
        .value
        .to_compact();
    let transfer_tokens = llmsim::tokens::estimate(&payload);
    println!(
        "\nthe same data routed through an LLM (PG-MCP style): {transfer_tokens} tokens per \
         transfer, ≥{} for the two transfers a training task needs — {}× the proxy's cost, \
         and past every current context window.",
        2 * transfer_tokens,
        (2 * transfer_tokens) / result_tokens.max(1),
    );
    assert!(2 * transfer_tokens > 1_000_000);
}
