//! Tour of BridgeScope's dual-level security model (paper §2.2–2.3):
//! database-side privileges decide which SQL tools a user's agent even
//! *sees*; user-side policies (object white/black lists, tool blocks, risk
//! caps) narrow that further; and object-level verification catches whatever
//! slips through — hallucinated objects, prompt-injected statements,
//! subquery smuggling.
//!
//! Run with: `cargo run --example security_policies`

use bridgescope::prelude::*;

fn surface(db: &Database, user: &str, policy: SecurityPolicy) -> Registry {
    BridgeScopeServer::build(db.clone(), user, policy, &Registry::new())
        .expect("user exists")
        .registry
}

fn main() {
    let db = Database::new();
    let mut admin = db.session("admin").expect("admin exists");
    for sql in [
        "CREATE TABLE sales (id INTEGER PRIMARY KEY, amount REAL)",
        "CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT, email TEXT)",
        "CREATE TABLE salaries (id INTEGER PRIMARY KEY, pay REAL)",
        "INSERT INTO sales VALUES (1, 10.0), (2, 20.0)",
        "INSERT INTO customers VALUES (1, 'Ada', 'ada@example.com')",
        "INSERT INTO salaries VALUES (1, 90000.0)",
    ] {
        admin.execute_sql(sql).expect("setup is valid");
    }

    // Three users with PostgreSQL-style grants.
    db.create_user("analyst", false).expect("fresh");
    db.grant("analyst", Action::Select, "sales").expect("grant");
    db.grant("analyst", Action::Select, "customers")
        .expect("grant");
    db.create_user("ops", false).expect("fresh");
    db.grant_all("ops", "sales").expect("grant");
    db.grant_all("ops", "customers").expect("grant");
    db.grant_all("ops", "salaries").expect("grant");

    // 1. Action-level modularization: what each agent sees.
    println!("== tool surfaces ==");
    let analyst = surface(&db, "analyst", SecurityPolicy::default());
    println!("analyst (read-only grants):     {:?}", analyst.names());
    let ops = surface(&db, "ops", SecurityPolicy::default());
    println!("ops (full grants):              {:?}", ops.names());

    // 2. User-side policy: hide PII and block destructive tools even for a
    //    fully privileged user.
    let locked = surface(
        &db,
        "ops",
        SecurityPolicy::default()
            .with_blacklist(["customers", "salaries"])
            .with_blocked_tools(["drop", "alter"])
            .with_max_risk(Risk::Mutating),
    );
    println!("ops under a hardened policy:    {:?}", locked.names());

    // 3. Schema outputs reflect the same boundaries.
    let schema = locked.call("get_schema", &Json::Null).expect("allowed");
    let visible: Vec<&str> = schema
        .value
        .get("tables")
        .and_then(Json::as_array)
        .map(|ts| {
            ts.iter()
                .filter_map(|t| t.get("name").and_then(Json::as_str))
                .collect()
        })
        .unwrap_or_default();
    println!("\n== schema visibility under the hardened policy ==");
    println!("visible objects: {visible:?}");
    assert_eq!(visible, vec!["sales"]);

    // 4. The verification gate, attack by attack.
    println!("\n== verification gate ==");
    let attempts: Vec<(&Registry, &str, &str, &str)> = vec![
        (
            &analyst,
            "select",
            "SELECT * FROM salaries",
            "unauthorized object",
        ),
        (
            &analyst,
            "select",
            "SELECT * FROM sales WHERE id IN (SELECT id FROM salaries)",
            "smuggled via subquery",
        ),
        (
            &locked,
            "select",
            "SELECT * FROM customers",
            "policy-hidden object",
        ),
        (
            &locked,
            "select",
            "DROP TABLE sales",
            "injected DROP in select",
        ),
        (
            &locked,
            "insert",
            "DELETE FROM sales",
            "wrong action for tool",
        ),
    ];
    for (reg, tool, stmt, label) in attempts {
        let verdict = match reg.call(tool, &Json::object([("sql", Json::str(stmt))])) {
            Err(e) => format!("BLOCKED ({e})"),
            Ok(_) => "ALLOWED".to_owned(),
        };
        println!("{label:<28} {tool:<7} {stmt:<55} -> {verdict}");
        assert!(verdict.starts_with("BLOCKED"), "{label} must be blocked");
    }

    // 5. And the legitimate path still works.
    let ok = locked
        .call(
            "update",
            &Json::object([(
                "sql",
                Json::str("UPDATE sales SET amount = amount + 1 WHERE id = 1"),
            )]),
        )
        .expect("authorized update");
    println!("\nauthorized update -> {}", ok.value);
}
