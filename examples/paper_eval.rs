//! Regenerate every table and figure of the paper's evaluation in one run
//! and print them in the published layout. This is the EXPERIMENTS.md
//! source of truth; the per-figure Criterion benches additionally assert
//! the shapes and time representative units.
//!
//! Run with: `cargo run --release --example paper_eval [-- --quick]`
//!
//! `--quick` caps each cell at 20 tasks and shrinks the NL2ML table so the
//! whole thing finishes in well under a minute.

use benchkit::generate_bird_ext;
use benchkit::report::{fig5, privilege_experiment, table2};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (limit, house_rows) = if quick {
        (Some(20), 2_000)
    } else {
        (None, 20_000)
    };
    println!(
        "mode: {} ({} BIRD-Ext tasks/cell, {house_rows}-row house table)\n",
        if quick { "quick" } else { "full" },
        limit.map_or("all".to_owned(), |l| l.to_string()),
    );

    let started = Instant::now();
    let bench = generate_bird_ext(42);
    println!(
        "BIRD-Ext generated: {} tasks over {} tables ({:.2?})\n",
        bench.tasks.len(),
        bench.template.table_names().len(),
        started.elapsed()
    );

    let t = Instant::now();
    let report = fig5(&bench, limit, 42);
    println!("{}  [{:.2?}]\n", report.render().trim_end(), t.elapsed());

    let t = Instant::now();
    let privilege = privilege_experiment(&bench, limit, 42);
    println!("{}", privilege.render_fig6());
    println!("{}", privilege.render_table1());
    for agent in ["GPT-4o", "Claude-4"] {
        let savings: Vec<String> = (2..5)
            .map(|cell| {
                format!(
                    "{:.0}%",
                    privilege.token_saving(agent, cell).unwrap_or(0.0) * 100.0
                )
            })
            .collect();
        println!(
            "{agent}: token savings on infeasible cells = {}",
            savings.join(", ")
        );
    }
    println!("[{:.2?}]\n", t.elapsed());

    let t = Instant::now();
    let table2_report = table2(house_rows, 20, limit, 42);
    println!(
        "{}  [{:.2?}]",
        table2_report.render().trim_end(),
        t.elapsed()
    );

    println!("\ntotal: {:.2?}", started.elapsed());
}
