//! Multi-datasource BridgeScope (paper §2.6): one consistent tool surface
//! over several databases, with per-source privileges and a cross-source
//! proxy that joins data from two databases inside one proxy unit.
//!
//! Run with: `cargo run --example multi_source`

use bridgescope::core::{MultiSourceServer, SourceSpec};
use bridgescope::prelude::*;

fn sales_db() -> Database {
    let db = Database::new();
    let mut s = db.session("admin").expect("admin exists");
    s.execute_sql("CREATE TABLE sales (id INTEGER PRIMARY KEY, rep_id INTEGER, amount REAL)")
        .expect("setup");
    s.execute_sql(
        "INSERT INTO sales VALUES (1, 1, 120.0), (2, 2, 80.0), (3, 1, 300.0), (4, 3, 45.0)",
    )
    .expect("setup");
    db.create_user("ana", false).expect("fresh");
    db.grant_all("ana", "sales").expect("grant");
    db
}

fn hr_db() -> Database {
    let db = Database::new();
    let mut s = db.session("admin").expect("admin exists");
    s.execute_sql("CREATE TABLE reps (rep_id INTEGER PRIMARY KEY, rep_name TEXT, region TEXT)")
        .expect("setup");
    s.execute_sql(
        "INSERT INTO reps VALUES (1, 'Ada', 'west'), (2, 'Bob', 'east'), (3, 'Cy', 'west')",
    )
    .expect("setup");
    db.create_user("ana", false).expect("fresh");
    db.grant("ana", Action::Select, "reps").expect("grant");
    db
}

fn main() {
    // A consumer tool joining the two sources' outputs — stand-in for any
    // analytics MCP server.
    let mut external = Registry::new();
    external.register_tool(toolproto::FnTool::new(
        "join_by_first_column",
        "Hash-join two row sets on their first column and return joined rows.",
        toolproto::Signature::open(vec![]),
        |args: &toolproto::Args| {
            let rows = |k: &str| -> Vec<&[Json]> {
                args.get(k)
                    .and_then(Json::as_array)
                    .map(|a| a.iter().filter_map(Json::as_array).collect())
                    .unwrap_or_default()
            };
            let right = rows("right");
            let mut joined = Vec::new();
            for l in rows("left") {
                for r in &right {
                    if l.first() == r.first() {
                        let mut row: Vec<Json> = l.to_vec();
                        row.extend(r.iter().skip(1).cloned());
                        joined.push(Json::Array(row));
                    }
                }
            }
            let n = joined.len();
            Ok(toolproto::ToolOutput::with_rows(
                Json::object([("rows", Json::Array(joined))]),
                n,
            ))
        },
    ));

    let server = MultiSourceServer::build(
        vec![
            SourceSpec {
                name: "sales_db".into(),
                db: sales_db(),
                user: "ana".into(),
                policy: SecurityPolicy::default(),
            },
            SourceSpec {
                name: "hr_db".into(),
                db: hr_db(),
                user: "ana".into(),
                policy: SecurityPolicy::default(),
            },
        ],
        &external,
    )
    .expect("sources build");
    let tools = &server.registry;

    let sources = tools.call("list_sources", &Json::Null).expect("runs");
    println!("sources:\n{}\n", sources.value.to_pretty());

    // Per-source dispatch with per-source privileges: ana can write on
    // sales_db but is read-only on hr_db.
    let ok = tools
        .call(
            "insert",
            &Json::object([
                ("source", Json::str("sales_db")),
                ("sql", Json::str("INSERT INTO sales VALUES (5, 2, 60.0)")),
            ]),
        )
        .is_ok();
    let denied = tools
        .call(
            "insert",
            &Json::object([
                ("source", Json::str("hr_db")),
                (
                    "sql",
                    Json::str("INSERT INTO reps VALUES (9, 'Eve', 'east')"),
                ),
            ]),
        )
        .is_err();
    println!("insert on sales_db: {} / insert on hr_db: {}", ok, denied);
    assert!(ok && denied);

    // One proxy unit joining per-rep sales (sales_db) with rep names (hr_db)
    // — the data from both databases flows straight into the join tool.
    let unit = r#"{
      "target_tool": "join_by_first_column",
      "tool_args": {
        "left": {"tool": "select", "args": {"source": "sales_db",
                 "sql": "SELECT rep_id, SUM(amount) FROM sales GROUP BY rep_id"},
                 "transform": "/rows"},
        "right": {"tool": "select", "args": {"source": "hr_db",
                  "sql": "SELECT rep_id, rep_name, region FROM reps"},
                  "transform": "/rows"}
      }
    }"#;
    let out = tools
        .call("proxy", &Json::parse(unit).expect("valid"))
        .expect("cross-source proxy runs");
    println!("\ncross-source join via one proxy unit:");
    println!("{}", out.value.to_pretty());
    let joined = out
        .value
        .get("rows")
        .and_then(Json::as_array)
        .expect("rows");
    assert_eq!(joined.len(), 3, "three reps have sales");
}
