//! Observability: run agent tasks with tracing on, print the per-run metrics
//! summary, and (optionally) export the full span tree as JSON Lines.
//!
//! Every layer reports into one `Obs` handle: the agent opens `task` and
//! `llm:call` spans, the registry wraps each tool invocation in a
//! `tool:{name}` span, the SQL layer attaches executor plan attributes to
//! `sql:execute` spans, denials become `denial:{gate}` events, and proxy
//! units account for the rows and bytes that never transit the LLM.
//!
//! Run with: `cargo run --example observability` — or pass a path to also
//! write the trace as JSONL: `cargo run --example observability trace.jsonl`

use bridgescope::prelude::*;
use llmsim::SqlStep;

fn setup_database() -> Database {
    let db = Database::new();
    let mut admin = db.session("admin").expect("admin exists");
    for sql in [
        "CREATE TABLE sales (id INTEGER PRIMARY KEY, region TEXT, amount REAL)",
        "CREATE INDEX idx_sales_region ON sales (region)",
        "CREATE TABLE salaries (id INTEGER PRIMARY KEY, who TEXT, pay REAL)",
        "INSERT INTO salaries VALUES (1, 'cfo', 1.0)",
    ] {
        admin.execute_sql(sql).expect("setup SQL is valid");
    }
    for i in 0..200 {
        let region = ["north", "south", "east", "west"][i % 4];
        admin
            .execute_sql(&format!(
                "INSERT INTO sales VALUES ({i}, '{region}', {}.0)",
                10 + i % 50
            ))
            .expect("insert");
    }
    // The analyst can read and write sales, but salaries are off-limits —
    // the denied probe below shows up in the denial counters.
    db.create_user("analyst", false).expect("fresh user");
    db.grant_all("analyst", "sales").expect("table exists");
    db
}

fn main() {
    let jsonl_path = std::env::args().nth(1);
    let obs = match &jsonl_path {
        Some(path) => Obs::jsonl(path),
        None => Obs::in_memory(),
    };

    let db = setup_database();
    let server = BridgeScopeServer::build_observed(
        db,
        "analyst",
        SecurityPolicy::default(),
        &ml_registry(),
        obs.clone(),
    )
    .expect("analyst exists");

    // A deterministic agent drives three tasks end to end: an indexed read,
    // a transactional write, and a pipeline whose bulk rows move through a
    // proxy unit instead of the LLM context.
    let profile = LlmProfile {
        schema_hallucination_rate: 0.0,
        predicate_error_rate: 0.0,
        privilege_awareness: 1.0,
        spurious_abort_rate: 0.0,
        sql_accuracy: 1.0,
        txn_awareness_explicit: 1.0,
        ..LlmProfile::gpt4o()
    };
    let agent = ReactAgent::new(profile, server.prompt).with_obs(obs.clone());

    let tasks = [
        TaskSpec::read(
            "indexed-read",
            "Total sales for the north region?",
            SqlStep::simple(
                "select",
                vec!["sales".into()],
                "SELECT COUNT(*) FROM sales WHERE region = 'north'",
            ),
        ),
        TaskSpec::write(
            "txn-write",
            "Record one more sale in the east region.",
            vec![SqlStep::simple(
                "insert",
                vec!["sales".into()],
                "INSERT INTO sales VALUES (900, 'east', 42.0)",
            )],
        ),
    ];
    for task in &tasks {
        let trace = agent.run(&server.registry, task, 7);
        println!("{}", trace.render());
    }

    // A denied probe: salaries were never granted, so the privilege gate
    // rejects the statement before the engine sees it.
    let denied = server.registry.call(
        "select",
        &Json::object([("sql", Json::str("SELECT pay FROM salaries"))]),
    );
    println!(
        "probe on salaries -> {}\n",
        denied.expect_err("analyst holds no privilege on salaries")
    );

    // F4 — all 200 sales rows move tool→tool through a proxy unit into the
    // trend analyzer; only the scalar verdict returns to the caller. The
    // `proxy.rows_moved` / `proxy.bytes_moved` counters below measure it.
    let out = server
        .registry
        .call(
            "proxy",
            &Json::parse(
                r#"{"target_tool": "trend_analyze", "tool_args": {
                    "sales": {"tool": "select",
                              "args": {"sql": "SELECT id, amount FROM sales ORDER BY id"},
                              "transform": "/rows"}}}"#,
            )
            .expect("valid proxy spec"),
        )
        .expect("proxy runs");
    println!("proxy(trend_analyze) -> {}\n", out.value);

    // The per-run summary the paper-style reports read from.
    let snapshot = server.snapshot();
    println!("{}", obs::summary::render(&snapshot));

    match obs.flush() {
        Ok(Some(path)) => println!("trace written to {}", path.display()),
        Ok(None) => println!("(no JSONL path given; pass one to export the trace)"),
        Err(e) => {
            eprintln!("failed to write trace: {e}");
            std::process::exit(1);
        }
    }
}
