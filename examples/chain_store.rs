//! The paper's running example (Figure 3): a Brand-A store manager's daily
//! workflow — atomically record sales/refunds, then analyze recent trends by
//! routing query results straight into an ML tool through a proxy unit.
//!
//! A simulated agent drives the whole flow end to end, so the output also
//! shows the interaction trace metrics the paper reports.
//!
//! Run with: `cargo run --example chain_store`

use bridgescope::prelude::*;
use llmsim::{DataSource, PipelineStage, SqlStep, TaskSpec};

fn main() {
    // The chain store database: brand-A tables the manager owns, a brand-B
    // table they must not see, and sensitive salaries blocked by policy.
    let db = Database::new();
    let mut admin = db.session("admin").expect("admin exists");
    for sql in [
        "CREATE TABLE brand_a_sales (id INTEGER PRIMARY KEY, day TEXT, category TEXT, amount REAL)",
        "CREATE TABLE brand_a_refunds (id INTEGER PRIMARY KEY, day TEXT, amount REAL)",
        "CREATE TABLE brand_b_sales (id INTEGER PRIMARY KEY, day TEXT, amount REAL)",
        "CREATE TABLE employee_salaries (id INTEGER PRIMARY KEY, name TEXT, salary REAL)",
    ] {
        admin.execute_sql(sql).expect("setup is valid");
    }
    // A month of history with a rising women's-wear trend.
    for d in 1..=30 {
        admin
            .execute_sql(&format!(
                "INSERT INTO brand_a_sales VALUES \
                 ({d}, '2026-06-{d:02}', 'women''s wear', {amount:.2}), \
                 ({}, '2026-06-{d:02}', 'menswear', {:.2})",
                100 + d,
                80.0 + (d % 5) as f64,
                amount = 100.0 + 6.0 * d as f64,
            ))
            .expect("insert is valid");
        admin
            .execute_sql(&format!(
                "INSERT INTO brand_a_refunds VALUES ({d}, '2026-06-{d:02}', {:.2})",
                5.0 + (d % 3) as f64
            ))
            .expect("insert is valid");
    }

    // The manager: full access to brand-A tables only; salaries additionally
    // blacklisted user-side.
    db.create_user("manager", false).expect("fresh user");
    db.grant_all("manager", "brand_a_sales")
        .expect("table exists");
    db.grant_all("manager", "brand_a_refunds")
        .expect("table exists");
    let policy = SecurityPolicy::default().with_blacklist(["employee_salaries"]);

    // The ML ecosystem tool (trend_analyze) joins the surface, exactly as a
    // third-party MCP server would.
    let server = BridgeScopeServer::build(db.clone(), "manager", policy, &ml_registry())
        .expect("manager exists");

    // --- Part 1: the daily update, as a write task driven by the agent ---
    let agent = ReactAgent::new(LlmProfile::claude4(), server.prompt);
    let update_task = TaskSpec::write(
        "daily-update",
        "Record today's figures: women's wear sales of 305.50 and a refund of 12.00, \
         stored atomically.",
        vec![
            SqlStep::simple(
                "insert",
                vec!["brand_a_sales".into()],
                "INSERT INTO brand_a_sales VALUES (999, '2026-07-01', 'women''s wear', 305.50)",
            ),
            SqlStep::simple(
                "insert",
                vec!["brand_a_refunds".into()],
                "INSERT INTO brand_a_refunds VALUES (999, '2026-07-01', 12.00)",
            ),
        ],
    );
    let trace = agent.run(&server.registry, &update_task, 1);
    println!("--- daily update ---");
    println!("outcome:      {:?}", trace.outcome);
    println!(
        "transaction:  began={} committed={}",
        trace.began_transaction, trace.committed
    );
    println!("LLM calls:    {}", trace.llm_calls);
    println!("tokens:       {}\n", trace.total_tokens());
    assert!(trace.began_transaction && trace.committed);

    // --- Part 2: trend analysis through a proxy unit ---
    // ⟨p, c, f⟩ = ⟨(select sales, select refunds), trend_analyze, /rows⟩:
    // the data flows tool→tool; the agent only sees the verdict.
    let analyze_task = TaskSpec::pipeline(
        "trend-analysis",
        "How are women's wear sales trending this month, net of refunds?",
        vec![PipelineStage {
            tool: "trend_analyze".into(),
            data_args: vec![
                (
                    "sales".into(),
                    DataSource::Sql(
                        "SELECT day, amount FROM brand_a_sales \
                         WHERE category = 'women''s wear' ORDER BY day"
                            .into(),
                    ),
                ),
                (
                    "refunds".into(),
                    DataSource::Sql("SELECT day, amount FROM brand_a_refunds ORDER BY day".into()),
                ),
            ],
            static_args: vec![("window".into(), Json::num(5.0))],
        }],
    );
    let trace = agent.run(&server.registry, &analyze_task, 2);
    println!("--- trend analysis (proxy) ---");
    println!("outcome:   {:?}", trace.outcome);
    println!("LLM calls: {} (schema + proxy + final)", trace.llm_calls);
    let answer = trace.answer.expect("completed");
    println!("verdict:   {answer}");
    assert_eq!(answer.get("trend").and_then(Json::as_str), Some("rising"));

    // --- Part 3: the boundaries hold ---
    println!("\n--- security boundaries ---");
    let brand_b = server.registry.call(
        "select",
        &Json::object([("sql", Json::str("SELECT * FROM brand_b_sales"))]),
    );
    println!("brand_b_sales (no privilege): {brand_b:?}");
    let salaries = server.registry.call(
        "select",
        &Json::object([("sql", Json::str("SELECT * FROM employee_salaries"))]),
    );
    println!("employee_salaries (policy):   {salaries:?}");
    assert!(brand_b.is_err() && salaries.is_err());
}
