//! AST → SQL text rendering.
//!
//! Rendering is canonical (keywords upper-case, minimal parentheses driven by
//! precedence) and round-trips through the parser: `parse(format(ast))`
//! yields an equivalent AST. The property-based tests rely on this to fuzz
//! the parser, and the benchmark generators use it to materialize gold SQL.

use crate::ast::*;
use std::fmt::Write as _;

/// Render any statement as SQL text.
pub fn format_statement(stmt: &Statement) -> String {
    match stmt {
        Statement::Select(s) => format_select(s),
        Statement::Insert(i) => format_insert(i),
        Statement::Update(u) => format_update(u),
        Statement::Delete(d) => format_delete(d),
        Statement::CreateTable(c) => format_create_table(c),
        Statement::CreateView(v) => {
            format!("CREATE VIEW {} AS {}", v.name, format_select(&v.query))
        }
        Statement::DropView { name, if_exists } => {
            let exists = if *if_exists { "IF EXISTS " } else { "" };
            format!("DROP VIEW {exists}{name}")
        }
        Statement::DropTable(d) => {
            let exists = if d.if_exists { "IF EXISTS " } else { "" };
            format!("DROP TABLE {exists}{}", d.names.join(", "))
        }
        Statement::CreateIndex(ci) => {
            let unique = if ci.unique { "UNIQUE " } else { "" };
            format!(
                "CREATE {unique}INDEX {} ON {} ({})",
                ci.name,
                ci.table,
                ci.columns.join(", ")
            )
        }
        Statement::AlterTable(at) => match at {
            AlterTable::AddColumn { table, column } => {
                format!(
                    "ALTER TABLE {table} ADD COLUMN {}",
                    format_column_def(column)
                )
            }
            AlterTable::DropColumn { table, column } => {
                format!("ALTER TABLE {table} DROP COLUMN {column}")
            }
            AlterTable::RenameTable { table, new_name } => {
                format!("ALTER TABLE {table} RENAME TO {new_name}")
            }
        },
        Statement::Begin => "BEGIN".to_owned(),
        Statement::Commit => "COMMIT".to_owned(),
        Statement::Rollback => "ROLLBACK".to_owned(),
        Statement::Savepoint(name) => format!("SAVEPOINT {name}"),
        Statement::RollbackTo(name) => format!("ROLLBACK TO SAVEPOINT {name}"),
        Statement::Release(name) => format!("RELEASE SAVEPOINT {name}"),
        Statement::Explain { stmt, analyze } => {
            let verb = if *analyze {
                "EXPLAIN ANALYZE"
            } else {
                "EXPLAIN"
            };
            format!("{verb} {}", format_statement(stmt))
        }
        Statement::Analyze { table } => match table {
            Some(t) => format!("ANALYZE {t}"),
            None => "ANALYZE".to_owned(),
        },
        Statement::GrantRevoke(g) => {
            let verb = if g.grant { "GRANT" } else { "REVOKE" };
            let privs = match &g.actions {
                None => "ALL PRIVILEGES".to_owned(),
                Some(actions) => actions
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            };
            let conn = if g.grant { "TO" } else { "FROM" };
            format!(
                "{verb} {privs} ON {} {conn} {}",
                g.objects.join(", "),
                g.user
            )
        }
    }
}

/// Render a SELECT.
pub fn format_select(s: &Select) -> String {
    let mut out = String::from("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = s
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => "*".to_owned(),
            SelectItem::QualifiedWildcard(t) => format!("{t}.*"),
            SelectItem::Expr { expr, alias } => {
                let mut text = format_expr(expr);
                if let Some(a) = alias {
                    let _ = write!(text, " AS {a}");
                }
                text
            }
        })
        .collect();
    out.push_str(&items.join(", "));
    if let Some(from) = &s.from {
        let _ = write!(out, " FROM {}", format_table_ref(from));
        for j in &s.joins {
            let kw = match j.kind {
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT JOIN",
                JoinKind::Cross => "CROSS JOIN",
            };
            let _ = write!(out, " {kw} {}", format_table_ref(&j.table));
            if let Some(on) = &j.on {
                let _ = write!(out, " ON {}", format_expr(on));
            }
        }
    }
    if let Some(w) = &s.where_clause {
        let _ = write!(out, " WHERE {}", format_expr(w));
    }
    if !s.group_by.is_empty() {
        let keys: Vec<String> = s.group_by.iter().map(format_expr).collect();
        let _ = write!(out, " GROUP BY {}", keys.join(", "));
    }
    if let Some(h) = &s.having {
        let _ = write!(out, " HAVING {}", format_expr(h));
    }
    if !s.order_by.is_empty() {
        let keys: Vec<String> = s
            .order_by
            .iter()
            .map(|o| {
                let dir = match o.dir {
                    OrderDir::Asc => "",
                    OrderDir::Desc => " DESC",
                };
                format!("{}{dir}", format_expr(&o.expr))
            })
            .collect();
        let _ = write!(out, " ORDER BY {}", keys.join(", "));
    }
    if let Some(l) = s.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    if let Some(o) = s.offset {
        let _ = write!(out, " OFFSET {o}");
    }
    out
}

fn format_table_ref(t: &TableRef) -> String {
    match &t.alias {
        Some(a) => format!("{} AS {a}", t.name),
        None => t.name.clone(),
    }
}

fn format_insert(i: &Insert) -> String {
    let cols = if i.columns.is_empty() {
        String::new()
    } else {
        format!(" ({})", i.columns.join(", "))
    };
    match &i.source {
        InsertSource::Values(rows) => {
            let rendered: Vec<String> = rows
                .iter()
                .map(|row| {
                    let vals: Vec<String> = row.iter().map(format_expr).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            format!(
                "INSERT INTO {}{cols} VALUES {}",
                i.table,
                rendered.join(", ")
            )
        }
        InsertSource::Select(sel) => {
            format!("INSERT INTO {}{cols} {}", i.table, format_select(sel))
        }
    }
}

fn format_update(u: &Update) -> String {
    let sets: Vec<String> = u
        .assignments
        .iter()
        .map(|(c, e)| format!("{c} = {}", format_expr(e)))
        .collect();
    let mut out = format!("UPDATE {} SET {}", u.table, sets.join(", "));
    if let Some(w) = &u.where_clause {
        let _ = write!(out, " WHERE {}", format_expr(w));
    }
    out
}

fn format_delete(d: &Delete) -> String {
    let mut out = format!("DELETE FROM {}", d.table);
    if let Some(w) = &d.where_clause {
        let _ = write!(out, " WHERE {}", format_expr(w));
    }
    out
}

fn format_column_def(c: &ColumnDef) -> String {
    let mut out = format!("{} {}", c.name, c.ty.sql());
    if c.primary_key {
        out.push_str(" PRIMARY KEY");
    } else if c.not_null {
        out.push_str(" NOT NULL");
    }
    if c.unique {
        out.push_str(" UNIQUE");
    }
    if let Some(d) = &c.default {
        let _ = write!(out, " DEFAULT {}", format_expr(d));
    }
    if let Some((t, col)) = &c.references {
        let _ = write!(out, " REFERENCES {t}({col})");
    }
    if let Some(check) = &c.check {
        let _ = write!(out, " CHECK ({})", format_expr(check));
    }
    out
}

fn format_create_table(ct: &CreateTable) -> String {
    let mut parts: Vec<String> = ct.columns.iter().map(format_column_def).collect();
    for cons in &ct.constraints {
        parts.push(match cons {
            TableConstraint::PrimaryKey(cols) => format!("PRIMARY KEY ({})", cols.join(", ")),
            TableConstraint::Unique(cols) => format!("UNIQUE ({})", cols.join(", ")),
            TableConstraint::ForeignKey {
                columns,
                foreign_table,
                foreign_columns,
            } => format!(
                "FOREIGN KEY ({}) REFERENCES {foreign_table} ({})",
                columns.join(", "),
                foreign_columns.join(", ")
            ),
            TableConstraint::Check(e) => format!("CHECK ({})", format_expr(e)),
        });
    }
    let exists = if ct.if_not_exists {
        "IF NOT EXISTS "
    } else {
        ""
    };
    format!("CREATE TABLE {exists}{} ({})", ct.name, parts.join(", "))
}

/// Operator precedence used to minimize parentheses. Higher binds tighter.
fn precedence(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Or => 1,
        BinaryOp::And => 2,
        BinaryOp::Eq
        | BinaryOp::NotEq
        | BinaryOp::Lt
        | BinaryOp::LtEq
        | BinaryOp::Gt
        | BinaryOp::GtEq => 3,
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Concat => 4,
        BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 5,
    }
}

/// Render an expression.
pub fn format_expr(e: &Expr) -> String {
    render_expr(e, 0)
}

fn render_expr(e: &Expr, parent_prec: u8) -> String {
    match e {
        Expr::Literal(lit) => format_literal(lit),
        Expr::Column(c) => match &c.table {
            Some(t) => format!("{t}.{}", c.column),
            None => c.column.clone(),
        },
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => {
                // NOT binds looser than comparisons: its operand renders at
                // comparison level (AND/OR children get parenthesized), and
                // NOT itself needs parens inside anything tighter than AND.
                let text = format!("NOT {}", render_expr(expr, 3));
                if parent_prec > 2 {
                    format!("({text})")
                } else {
                    text
                }
            }
            UnaryOp::Neg => {
                let inner = render_expr(expr, 6);
                if inner.starts_with('-') {
                    // Avoid "--x", which would lex as a line comment.
                    format!("-({inner})")
                } else {
                    format!("-{inner}")
                }
            }
        },
        Expr::Binary { left, op, right } => {
            let prec = precedence(*op);
            // Render children at this precedence; same-precedence right
            // children get parenthesized to preserve left associativity.
            // Comparisons don't chain in the grammar (`a = b = c` is a
            // syntax error), so both their operands render one level
            // tighter, parenthesizing nested predicates.
            let left_prec = if prec == 3 { prec + 1 } else { prec };
            let l = render_expr(left, left_prec);
            let r = render_expr(right, prec + 1);
            let text = format!("{l} {} {r}", op.symbol());
            if prec < parent_prec {
                format!("({text})")
            } else {
                text
            }
        }
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => {
            let upper = name.to_uppercase();
            if *star {
                format!("{upper}(*)")
            } else {
                let rendered: Vec<String> = args.iter().map(|a| render_expr(a, 0)).collect();
                let d = if *distinct { "DISTINCT " } else { "" };
                format!("{upper}({d}{})", rendered.join(", "))
            }
        }
        Expr::IsNull { expr, negated } => {
            let not = if *negated { " NOT" } else { "" };
            let text = format!("{} IS{not} NULL", render_expr(expr, 6));
            predicate_parens(text, parent_prec)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let not = if *negated { " NOT" } else { "" };
            let items: Vec<String> = list.iter().map(|i| render_expr(i, 0)).collect();
            let text = format!("{}{not} IN ({})", render_expr(expr, 6), items.join(", "));
            predicate_parens(text, parent_prec)
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            let not = if *negated { " NOT" } else { "" };
            let text = format!(
                "{}{not} IN ({})",
                render_expr(expr, 6),
                format_select(subquery)
            );
            predicate_parens(text, parent_prec)
        }
        Expr::ScalarSubquery(sub) => format!("({})", format_select(sub)),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let not = if *negated { " NOT" } else { "" };
            let text = format!(
                "{}{not} BETWEEN {} AND {}",
                render_expr(expr, 6),
                render_expr(low, 6),
                render_expr(high, 6)
            );
            predicate_parens(text, parent_prec)
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let not = if *negated { " NOT" } else { "" };
            let text = format!(
                "{}{not} LIKE {}",
                render_expr(expr, 6),
                render_expr(pattern, 6)
            );
            predicate_parens(text, parent_prec)
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            let mut out = String::from("CASE");
            for (cond, val) in branches {
                let _ = write!(
                    out,
                    " WHEN {} THEN {}",
                    render_expr(cond, 0),
                    render_expr(val, 0)
                );
            }
            if let Some(e) = else_expr {
                let _ = write!(out, " ELSE {}", render_expr(e, 0));
            }
            out.push_str(" END");
            out
        }
        Expr::Cast { expr, ty } => {
            format!("CAST({} AS {})", render_expr(expr, 0), ty.sql())
        }
    }
}

/// Postfix predicates (IS NULL, IN, BETWEEN, LIKE) sit at comparison
/// precedence; parenthesize them inside tighter contexts.
fn predicate_parens(text: String, parent_prec: u8) -> String {
    if parent_prec > 3 {
        format!("({text})")
    } else {
        text
    }
}

/// Condense SQL text for trace attributes and error contexts: collapse all
/// whitespace runs to single spaces, then truncate to at most `max`
/// characters (appending `…` when something was cut). Character-based, so
/// it never splits a multi-byte sequence.
pub fn truncate_sql(sql: &str, max: usize) -> String {
    let mut out = String::with_capacity(sql.len().min(max + 4));
    let mut pending_space = false;
    let mut count = 0usize;
    for word in sql.split_whitespace() {
        if pending_space {
            if count + 1 > max {
                out.push('…');
                return out;
            }
            out.push(' ');
            count += 1;
        }
        for ch in word.chars() {
            if count + 1 > max {
                out.push('…');
                return out;
            }
            out.push(ch);
            count += 1;
        }
        pending_space = true;
    }
    out
}

fn format_literal(lit: &Literal) -> String {
    match lit {
        Literal::Null => "NULL".to_owned(),
        Literal::Bool(true) => "TRUE".to_owned(),
        Literal::Bool(false) => "FALSE".to_owned(),
        Literal::Int(v) => v.to_string(),
        Literal::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Literal::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    #[test]
    fn truncate_sql_collapses_and_caps() {
        assert_eq!(truncate_sql("SELECT 1", 100), "SELECT 1");
        assert_eq!(
            truncate_sql("SELECT *\n  FROM   t\n WHERE x = 1", 100),
            "SELECT * FROM t WHERE x = 1"
        );
        assert_eq!(truncate_sql("SELECT abcdef", 9), "SELECT ab…");
        assert_eq!(truncate_sql("SELECT", 6), "SELECT");
        assert_eq!(truncate_sql("SELECT x", 6), "SELECT…");
        assert_eq!(truncate_sql("", 10), "");
    }

    /// parse → format → parse must be a fixpoint (equivalent ASTs).
    fn roundtrip(sql: &str) -> String {
        let stmt = parse_statement(sql).unwrap();
        let text = format_statement(&stmt);
        let reparsed =
            parse_statement(&text).unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"));
        assert_eq!(stmt, reparsed, "round trip changed AST for {sql:?}");
        text
    }

    #[test]
    fn roundtrips_selects() {
        roundtrip("SELECT 1");
        roundtrip("SELECT DISTINCT a, b AS total FROM t AS x WHERE a > 1 AND b < 2");
        roundtrip(
            "SELECT d.name, COUNT(*) FROM emp AS e JOIN dept AS d ON e.d = d.id \
             GROUP BY d.name HAVING COUNT(*) > 1 ORDER BY d.name DESC LIMIT 5 OFFSET 2",
        );
        roundtrip("SELECT * FROM t WHERE a IN (SELECT a FROM u) OR b NOT LIKE 'x%'");
        roundtrip("SELECT CASE WHEN x > 0 THEN 1 ELSE 0 END FROM t");
        roundtrip("SELECT CAST(x AS REAL) FROM t");
    }

    #[test]
    fn roundtrips_dml() {
        roundtrip("INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, TRUE)");
        roundtrip("INSERT INTO t SELECT * FROM u WHERE x = 1");
        roundtrip("UPDATE t SET a = a + 1 WHERE b IS NOT NULL");
        roundtrip("DELETE FROM t WHERE a BETWEEN 1 AND 2");
    }

    #[test]
    fn roundtrips_ddl_tcl() {
        roundtrip("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT NOT NULL, CHECK (id > 0))");
        roundtrip("DROP TABLE IF EXISTS a, b");
        roundtrip("CREATE UNIQUE INDEX i ON t (a, b)");
        roundtrip("BEGIN");
        roundtrip("GRANT SELECT, INSERT ON a, b TO carol");
        roundtrip("REVOKE ALL PRIVILEGES ON t FROM dave");
    }

    #[test]
    fn parenthesization_preserves_precedence() {
        // (1 + 2) * 3 must not lose its parens.
        let text = roundtrip("SELECT (1 + 2) * 3");
        assert!(text.contains("(1 + 2) * 3"), "got {text}");
        // a OR (b AND c) needs no parens; (a OR b) AND c does.
        let text = roundtrip("SELECT * FROM t WHERE (a OR b) AND c");
        assert!(text.contains("(a OR b) AND c"), "got {text}");
    }

    #[test]
    fn left_associativity_preserved() {
        // 10 - 2 - 3 == (10-2)-3; re-render must not become 10 - (2 - 3).
        let text = roundtrip("SELECT 10 - 2 - 3");
        assert_eq!(text, "SELECT 10 - 2 - 3");
        let text = roundtrip("SELECT 10 - (2 - 3)");
        assert!(text.contains("10 - (2 - 3)"));
    }

    #[test]
    fn string_quotes_escaped() {
        assert_eq!(format_expr(&Expr::string("it's")), "'it''s'");
    }

    #[test]
    fn float_literals_keep_decimal_point() {
        // Otherwise INT/FLOAT literal kinds flip on round trip.
        assert_eq!(format_literal(&Literal::Float(3.0)), "3.0");
        assert_eq!(format_literal(&Literal::Int(3)), "3");
    }
}
