//! Recursive-descent SQL parser.
//!
//! Expression parsing uses precedence climbing. Error messages carry the
//! byte offset of the offending token so the agent transcript can show
//! database-grade diagnostics.

use crate::ast::*;
use crate::token::{lex, LexError, Spanned, Token};
use std::fmt;

/// Parse error: lexical or syntactic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem (input length for unexpected EOF).
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            offset: e.offset,
            message: e.message,
        }
    }
}

/// Parse a single SQL statement. Trailing semicolon is allowed.
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let mut statements = parse_statements(sql)?;
    match statements.len() {
        1 => Ok(statements.remove(0)),
        0 => Err(ParseError {
            offset: 0,
            message: "empty statement".into(),
        }),
        _ => Err(ParseError {
            offset: 0,
            message: "expected a single statement".into(),
        }),
    }
}

/// Parse a semicolon-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let tokens = lex(sql)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        end: sql.len(),
    };
    let mut out = Vec::new();
    loop {
        while parser.eat_symbol(";") {}
        if parser.at_end() {
            break;
        }
        out.push(parser.statement()?);
        if !parser.eat_symbol(";") && !parser.at_end() {
            return Err(parser.error_here("expected ';' between statements"));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n).map(|s| &s.token)
    }

    fn offset_here(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.end, |s| s.offset)
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset_here(),
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Check whether the current token is the given (unquoted) keyword.
    fn is_keyword(&self, kw: &str) -> bool {
        matches!(
            self.peek(),
            Some(Token::Ident { text, quoted: false }) if text.eq_ignore_ascii_case(kw)
        )
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.is_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {}", kw.to_uppercase())))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected '{sym}'")))
        }
    }

    /// Consume an identifier (keyword-like words allowed where unambiguous).
    fn identifier(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident { text, .. }) => {
                let name = text.clone();
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.error_here("expected identifier")),
        }
    }

    /// True when the token *after* the current one begins a statement —
    /// used to disambiguate the `ANALYZE` execution flag of `EXPLAIN`.
    fn next_starts_statement(&self) -> bool {
        const STARTERS: [&str; 17] = [
            "explain",
            "analyze",
            "select",
            "insert",
            "update",
            "delete",
            "create",
            "drop",
            "alter",
            "begin",
            "start",
            "commit",
            "rollback",
            "savepoint",
            "release",
            "grant",
            "revoke",
        ];
        match self.peek_at(1) {
            Some(Token::Ident { text, .. }) => {
                STARTERS.iter().any(|k| text.eq_ignore_ascii_case(k))
            }
            _ => false,
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_keyword("explain") {
            // `EXPLAIN ANALYZE <stmt>` vs `EXPLAIN ANALYZE [t]` (explaining
            // the ANALYZE statement itself): ANALYZE is an execution flag
            // only when a statement keyword follows it.
            let analyze = self.is_keyword("analyze") && self.next_starts_statement();
            if analyze {
                self.pos += 1;
            }
            let inner = self.statement()?;
            return Ok(Statement::Explain {
                stmt: Box::new(inner),
                analyze,
            });
        }
        if self.eat_keyword("analyze") {
            let table = if matches!(self.peek(), Some(Token::Ident { .. })) {
                Some(self.identifier()?)
            } else {
                None
            };
            return Ok(Statement::Analyze { table });
        }
        if self.is_keyword("select") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.is_keyword("insert") {
            return self.insert();
        }
        if self.is_keyword("update") {
            return self.update();
        }
        if self.is_keyword("delete") {
            return self.delete();
        }
        if self.is_keyword("create") {
            return self.create();
        }
        if self.is_keyword("drop") {
            return self.drop_table();
        }
        if self.is_keyword("alter") {
            return self.alter_table();
        }
        if self.eat_keyword("begin") || self.is_keyword("start") {
            if self.is_keyword("start") {
                self.pos += 1;
                self.expect_keyword("transaction")?;
            } else {
                // Optional TRANSACTION/WORK after BEGIN.
                let _ = self.eat_keyword("transaction") || self.eat_keyword("work");
            }
            return Ok(Statement::Begin);
        }
        if self.eat_keyword("commit") {
            let _ = self.eat_keyword("transaction") || self.eat_keyword("work");
            return Ok(Statement::Commit);
        }
        if self.eat_keyword("rollback") {
            let _ = self.eat_keyword("transaction") || self.eat_keyword("work");
            if self.eat_keyword("to") {
                let _ = self.eat_keyword("savepoint");
                return Ok(Statement::RollbackTo(self.identifier()?));
            }
            return Ok(Statement::Rollback);
        }
        if self.eat_keyword("savepoint") {
            return Ok(Statement::Savepoint(self.identifier()?));
        }
        if self.eat_keyword("release") {
            let _ = self.eat_keyword("savepoint");
            return Ok(Statement::Release(self.identifier()?));
        }
        if self.is_keyword("grant") || self.is_keyword("revoke") {
            return self.grant_revoke();
        }
        Err(self.error_here("expected a statement keyword"))
    }

    // ---------------- SELECT ----------------

    fn select(&mut self) -> Result<Select, ParseError> {
        self.expect_keyword("select")?;
        let mut stmt = Select::new();
        stmt.distinct = self.eat_keyword("distinct");
        if !stmt.distinct {
            let _ = self.eat_keyword("all");
        }
        loop {
            stmt.items.push(self.select_item()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        if self.eat_keyword("from") {
            stmt.from = Some(self.table_ref()?);
            loop {
                let kind = if self.eat_keyword("cross") {
                    self.expect_keyword("join")?;
                    JoinKind::Cross
                } else if self.eat_keyword("inner") {
                    self.expect_keyword("join")?;
                    JoinKind::Inner
                } else if self.eat_keyword("left") {
                    let _ = self.eat_keyword("outer");
                    self.expect_keyword("join")?;
                    JoinKind::Left
                } else if self.eat_keyword("join") {
                    JoinKind::Inner
                } else if self.eat_symbol(",") {
                    // Comma join = cross join.
                    JoinKind::Cross
                } else {
                    break;
                };
                let table = self.table_ref()?;
                let on = if kind == JoinKind::Cross {
                    None
                } else {
                    self.expect_keyword("on")?;
                    Some(self.expr()?)
                };
                stmt.joins.push(Join { kind, table, on });
            }
        }
        if self.eat_keyword("where") {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        if self.eat_keyword("having") {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.expr()?;
                let dir = if self.eat_keyword("desc") {
                    OrderDir::Desc
                } else {
                    let _ = self.eat_keyword("asc");
                    OrderDir::Asc
                };
                stmt.order_by.push(OrderItem { expr, dir });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        if self.eat_keyword("limit") {
            stmt.limit = Some(self.unsigned_integer()?);
            if self.eat_keyword("offset") {
                stmt.offset = Some(self.unsigned_integer()?);
            } else if self.eat_symbol(",") {
                // MySQL style LIMIT offset, count.
                let count = self.unsigned_integer()?;
                stmt.offset = stmt.limit.take();
                stmt.limit = Some(count);
            }
        } else if self.eat_keyword("offset") {
            stmt.offset = Some(self.unsigned_integer()?);
        }
        Ok(stmt)
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        // t.* — identifier dot star.
        if let Some(Token::Ident { text, .. }) = self.peek() {
            if matches!(self.peek_at(1), Some(Token::Symbol(".")))
                && matches!(self.peek_at(2), Some(Token::Symbol("*")))
            {
                let table = text.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(table));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("as") || self.can_be_bare_alias() {
            Some(self.identifier()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    /// A bare identifier can serve as an alias unless it's a clause keyword.
    fn can_be_bare_alias(&self) -> bool {
        const RESERVED: &[&str] = &[
            "from", "where", "group", "having", "order", "limit", "offset", "join", "inner",
            "left", "right", "cross", "on", "and", "or", "not", "as", "union", "set", "values",
            "when", "then", "else", "end", "asc", "desc", "is", "in", "like", "between",
        ];
        match self.peek() {
            Some(Token::Ident { text, quoted }) => {
                *quoted || !RESERVED.iter().any(|r| text.eq_ignore_ascii_case(r))
            }
            _ => false,
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.identifier()?;
        let alias = if self.eat_keyword("as") || self.can_be_bare_alias() {
            Some(self.identifier()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn unsigned_integer(&mut self) -> Result<u64, ParseError> {
        match self.peek() {
            Some(Token::Number(n)) => {
                let v: u64 = n
                    .parse()
                    .map_err(|_| self.error_here("expected unsigned integer"))?;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.error_here("expected unsigned integer")),
        }
    }

    // ---------------- DML ----------------

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.identifier()?;
        let mut columns = Vec::new();
        if self.eat_symbol("(") {
            loop {
                columns.push(self.identifier()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
        }
        let source = if self.eat_keyword("values") {
            let mut rows = Vec::new();
            loop {
                self.expect_symbol("(")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
                rows.push(row);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.is_keyword("select") {
            InsertSource::Select(Box::new(self.select()?))
        } else {
            return Err(self.error_here("expected VALUES or SELECT"));
        };
        Ok(Statement::Insert(Insert {
            table,
            columns,
            source,
        }))
    }

    fn update(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("update")?;
        let table = self.identifier()?;
        self.expect_keyword("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_symbol("=")?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat_symbol(",") {
                break;
            }
        }
        let where_clause = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            where_clause,
        }))
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("delete")?;
        self.expect_keyword("from")?;
        let table = self.identifier()?;
        let where_clause = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            where_clause,
        }))
    }

    // ---------------- DDL ----------------

    fn create(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("create")?;
        let unique = self.eat_keyword("unique");
        if self.eat_keyword("index") {
            let name = self.identifier()?;
            self.expect_keyword("on")?;
            let table = self.identifier()?;
            self.expect_symbol("(")?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.identifier()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(Statement::CreateIndex(CreateIndex {
                name,
                table,
                columns,
                unique,
            }));
        }
        if unique {
            return Err(self.error_here("expected INDEX after UNIQUE"));
        }
        if self.eat_keyword("view") {
            let name = self.identifier()?;
            self.expect_keyword("as")?;
            let query = self.select()?;
            return Ok(Statement::CreateView(CreateView { name, query }));
        }
        self.expect_keyword("table")?;
        let if_not_exists = if self.eat_keyword("if") {
            self.expect_keyword("not")?;
            self.expect_keyword("exists")?;
            true
        } else {
            false
        };
        let name = self.identifier()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.is_keyword("primary")
                || self.is_keyword("unique") && matches!(self.peek_at(1), Some(Token::Symbol("(")))
                || self.is_keyword("foreign")
                || self.is_keyword("check")
                || self.is_keyword("constraint")
            {
                constraints.push(self.table_constraint()?);
            } else {
                columns.push(self.column_def()?);
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            if_not_exists,
            columns,
            constraints,
        }))
    }

    fn column_def(&mut self) -> Result<ColumnDef, ParseError> {
        let name = self.identifier()?;
        let ty = self.type_name()?;
        let mut def = ColumnDef::new(name, ty);
        loop {
            if self.eat_keyword("not") {
                self.expect_keyword("null")?;
                def.not_null = true;
            } else if self.eat_keyword("null") {
                def.not_null = false;
            } else if self.eat_keyword("primary") {
                self.expect_keyword("key")?;
                def.primary_key = true;
                def.not_null = true;
            } else if self.eat_keyword("unique") {
                def.unique = true;
            } else if self.eat_keyword("default") {
                def.default = Some(self.primary_expr()?);
            } else if self.eat_keyword("references") {
                let table = self.identifier()?;
                self.expect_symbol("(")?;
                let column = self.identifier()?;
                self.expect_symbol(")")?;
                def.references = Some((table, column));
            } else if self.eat_keyword("check") {
                self.expect_symbol("(")?;
                def.check = Some(self.expr()?);
                self.expect_symbol(")")?;
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn type_name(&mut self) -> Result<TypeName, ParseError> {
        let raw = self.identifier()?.to_ascii_lowercase();
        let ty = match raw.as_str() {
            "int" | "integer" | "bigint" | "smallint" | "serial" => TypeName::Integer,
            "real" | "float" | "double" | "numeric" | "decimal" => {
                let _ = self.eat_keyword("precision");
                self.maybe_type_args()?;
                TypeName::Float
            }
            "text" | "varchar" | "char" | "character" | "date" | "timestamp" | "time" => {
                let _ = self.eat_keyword("varying");
                self.maybe_type_args()?;
                TypeName::Text
            }
            "boolean" | "bool" => TypeName::Boolean,
            other => {
                return Err(self.error_here(format!("unknown type '{other}'")));
            }
        };
        Ok(ty)
    }

    /// Consume optional `(n[, m])` after a type name.
    fn maybe_type_args(&mut self) -> Result<(), ParseError> {
        if self.eat_symbol("(") {
            self.unsigned_integer()?;
            if self.eat_symbol(",") {
                self.unsigned_integer()?;
            }
            self.expect_symbol(")")?;
        }
        Ok(())
    }

    fn table_constraint(&mut self) -> Result<TableConstraint, ParseError> {
        if self.eat_keyword("constraint") {
            // Named constraint — consume the name, then the body.
            let _name = self.identifier()?;
        }
        if self.eat_keyword("primary") {
            self.expect_keyword("key")?;
            return Ok(TableConstraint::PrimaryKey(self.paren_name_list()?));
        }
        if self.eat_keyword("unique") {
            return Ok(TableConstraint::Unique(self.paren_name_list()?));
        }
        if self.eat_keyword("foreign") {
            self.expect_keyword("key")?;
            let columns = self.paren_name_list()?;
            self.expect_keyword("references")?;
            let foreign_table = self.identifier()?;
            let foreign_columns = self.paren_name_list()?;
            return Ok(TableConstraint::ForeignKey {
                columns,
                foreign_table,
                foreign_columns,
            });
        }
        if self.eat_keyword("check") {
            self.expect_symbol("(")?;
            let expr = self.expr()?;
            self.expect_symbol(")")?;
            return Ok(TableConstraint::Check(expr));
        }
        Err(self.error_here("expected table constraint"))
    }

    fn paren_name_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect_symbol("(")?;
        let mut names = Vec::new();
        loop {
            names.push(self.identifier()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(names)
    }

    fn drop_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("drop")?;
        if self.eat_keyword("view") {
            let if_exists = if self.eat_keyword("if") {
                self.expect_keyword("exists")?;
                true
            } else {
                false
            };
            let name = self.identifier()?;
            return Ok(Statement::DropView { name, if_exists });
        }
        self.expect_keyword("table")?;
        let if_exists = if self.eat_keyword("if") {
            self.expect_keyword("exists")?;
            true
        } else {
            false
        };
        let mut names = Vec::new();
        loop {
            names.push(self.identifier()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(Statement::DropTable(DropTable { names, if_exists }))
    }

    fn alter_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("alter")?;
        self.expect_keyword("table")?;
        let table = self.identifier()?;
        if self.eat_keyword("add") {
            let _ = self.eat_keyword("column");
            let column = self.column_def()?;
            return Ok(Statement::AlterTable(AlterTable::AddColumn {
                table,
                column,
            }));
        }
        if self.eat_keyword("drop") {
            let _ = self.eat_keyword("column");
            let column = self.identifier()?;
            return Ok(Statement::AlterTable(AlterTable::DropColumn {
                table,
                column,
            }));
        }
        if self.eat_keyword("rename") {
            self.expect_keyword("to")?;
            let new_name = self.identifier()?;
            return Ok(Statement::AlterTable(AlterTable::RenameTable {
                table,
                new_name,
            }));
        }
        Err(self.error_here("expected ADD, DROP, or RENAME"))
    }

    fn grant_revoke(&mut self) -> Result<Statement, ParseError> {
        let grant = self.eat_keyword("grant");
        if !grant {
            self.expect_keyword("revoke")?;
        }
        let actions = if self.eat_keyword("all") {
            let _ = self.eat_keyword("privileges");
            None
        } else {
            let mut list = Vec::new();
            loop {
                let word = self.identifier()?.to_ascii_lowercase();
                let action = match word.as_str() {
                    "select" => Action::Select,
                    "insert" => Action::Insert,
                    "update" => Action::Update,
                    "delete" => Action::Delete,
                    "create" => Action::Create,
                    "drop" => Action::Drop,
                    "alter" => Action::Alter,
                    other => {
                        return Err(self.error_here(format!("unknown privilege '{other}'")));
                    }
                };
                list.push(action);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            Some(list)
        };
        self.expect_keyword("on")?;
        let _ = self.eat_keyword("table");
        let mut objects = Vec::new();
        loop {
            objects.push(self.identifier()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        if grant {
            self.expect_keyword("to")?;
        } else {
            self.expect_keyword("from")?;
        }
        let user = self.identifier()?;
        Ok(Statement::GrantRevoke(GrantRevoke {
            grant,
            actions,
            objects,
            user,
        }))
    }

    // ---------------- Expressions ----------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("and") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("not") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = self.eat_keyword("not");
        if self.eat_keyword("in") {
            self.expect_symbol("(")?;
            if self.is_keyword("select") {
                let subquery = self.select()?;
                self.expect_symbol(")")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(subquery),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("between") {
            let low = self.additive()?;
            self.expect_keyword("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.error_here("expected IN, BETWEEN, or LIKE after NOT"));
        }
        let op = if self.eat_symbol("=") {
            Some(BinaryOp::Eq)
        } else if self.eat_symbol("<>") || self.eat_symbol("!=") {
            Some(BinaryOp::NotEq)
        } else if self.eat_symbol("<=") {
            Some(BinaryOp::LtEq)
        } else if self.eat_symbol(">=") {
            Some(BinaryOp::GtEq)
        } else if self.eat_symbol("<") {
            Some(BinaryOp::Lt)
        } else if self.eat_symbol(">") {
            Some(BinaryOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let right = self.additive()?;
                Ok(Expr::binary(left, op, right))
            }
            None => Ok(left),
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_symbol("+") {
                BinaryOp::Add
            } else if self.eat_symbol("-") {
                BinaryOp::Sub
            } else if self.eat_symbol("||") {
                BinaryOp::Concat
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_symbol("*") {
                BinaryOp::Mul
            } else if self.eat_symbol("/") {
                BinaryOp::Div
            } else if self.eat_symbol("%") {
                BinaryOp::Mod
            } else {
                break;
            };
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_symbol("-") {
            let inner = self.unary()?;
            // Constant-fold negated numeric literals, as engines do; this
            // also makes format→parse a structural identity for "-1".
            return Ok(match inner {
                Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                inner => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(inner),
                },
            });
        }
        if self.eat_symbol("+") {
            return self.unary();
        }
        self.postfix()
    }

    /// Primary expression plus `::type` cast suffixes.
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary_expr()?;
        while self.eat_symbol("::") {
            let ty = self.type_name()?;
            expr = Expr::Cast {
                expr: Box::new(expr),
                ty,
            };
        }
        Ok(expr)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        // Parenthesized: scalar subquery or grouped expression.
        if self.eat_symbol("(") {
            if self.is_keyword("select") {
                let sub = self.select()?;
                self.expect_symbol(")")?;
                return Ok(Expr::ScalarSubquery(Box::new(sub)));
            }
            let inner = self.expr()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        // CASE.
        if self.eat_keyword("case") {
            let mut branches = Vec::new();
            while self.eat_keyword("when") {
                let cond = self.expr()?;
                self.expect_keyword("then")?;
                let value = self.expr()?;
                branches.push((cond, value));
            }
            if branches.is_empty() {
                return Err(self.error_here("CASE requires at least one WHEN"));
            }
            let else_expr = if self.eat_keyword("else") {
                Some(Box::new(self.expr()?))
            } else {
                None
            };
            self.expect_keyword("end")?;
            return Ok(Expr::Case {
                branches,
                else_expr,
            });
        }
        // CAST(expr AS type).
        if self.is_keyword("cast") && matches!(self.peek_at(1), Some(Token::Symbol("("))) {
            self.pos += 2;
            let expr = self.expr()?;
            self.expect_keyword("as")?;
            let ty = self.type_name()?;
            self.expect_symbol(")")?;
            return Ok(Expr::Cast {
                expr: Box::new(expr),
                ty,
            });
        }
        match self.advance() {
            Some(Token::Number(n)) => {
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    let v: f64 = n.parse().map_err(|_| ParseError {
                        offset: self.offset_here(),
                        message: "invalid number".into(),
                    })?;
                    Ok(Expr::Literal(Literal::Float(v)))
                } else {
                    match n.parse::<i64>() {
                        Ok(v) => Ok(Expr::Literal(Literal::Int(v))),
                        // Overflowing integers fall back to float, as in
                        // most engines' lexers.
                        Err(_) => {
                            let v: f64 = n.parse().map_err(|_| ParseError {
                                offset: self.offset_here(),
                                message: "invalid number".into(),
                            })?;
                            Ok(Expr::Literal(Literal::Float(v)))
                        }
                    }
                }
            }
            Some(Token::Str(s)) => Ok(Expr::Literal(Literal::Str(s))),
            Some(Token::Ident { text, quoted }) => {
                // Keyword literals.
                if !quoted {
                    const RESERVED_IN_EXPR: &[&str] = &[
                        "from", "where", "group", "having", "order", "limit", "offset", "join",
                        "inner", "left", "cross", "on", "select", "set", "values", "when", "then",
                        "else", "end", "as", "union",
                    ];
                    if RESERVED_IN_EXPR
                        .iter()
                        .any(|r| text.eq_ignore_ascii_case(r))
                    {
                        return Err(ParseError {
                            offset: self.offset_here(),
                            message: format!(
                                "reserved keyword '{}' cannot be used as an identifier",
                                text.to_uppercase()
                            ),
                        });
                    }
                    if text.eq_ignore_ascii_case("null") {
                        return Ok(Expr::Literal(Literal::Null));
                    }
                    if text.eq_ignore_ascii_case("true") {
                        return Ok(Expr::Literal(Literal::Bool(true)));
                    }
                    if text.eq_ignore_ascii_case("false") {
                        return Ok(Expr::Literal(Literal::Bool(false)));
                    }
                }
                // Function call.
                if matches!(self.peek(), Some(Token::Symbol("("))) {
                    self.pos += 1;
                    let name = text.to_ascii_lowercase();
                    if self.eat_symbol("*") {
                        self.expect_symbol(")")?;
                        return Ok(Expr::Function {
                            name,
                            args: Vec::new(),
                            distinct: false,
                            star: true,
                        });
                    }
                    let distinct = self.eat_keyword("distinct");
                    let mut args = Vec::new();
                    if !self.eat_symbol(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(",") {
                                break;
                            }
                        }
                        self.expect_symbol(")")?;
                    }
                    return Ok(Expr::Function {
                        name,
                        args,
                        distinct,
                        star: false,
                    });
                }
                // Qualified column t.c.
                if matches!(self.peek(), Some(Token::Symbol("."))) {
                    self.pos += 1;
                    let column = self.identifier()?;
                    return Ok(Expr::Column(ColumnRef {
                        table: Some(text),
                        column,
                    }));
                }
                Ok(Expr::Column(ColumnRef {
                    table: None,
                    column: text,
                }))
            }
            Some(Token::Param(_)) => Err(ParseError {
                offset: self.offset_here(),
                message: "positional parameters are not supported in direct execution".into(),
            }),
            Some(tok) => Err(ParseError {
                offset: self.offset_here(),
                message: format!("unexpected token '{tok}' in expression"),
            }),
            None => Err(ParseError {
                offset: self.end,
                message: "unexpected end of statement".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_minimal_select() {
        let s = sel("SELECT 1");
        assert_eq!(s.items.len(), 1);
        assert!(s.from.is_none());
    }

    #[test]
    fn parses_full_select() {
        let s = sel(
            "SELECT d.name, COUNT(*) AS n FROM emp e JOIN dept d ON e.dept_id = d.id \
             WHERE e.salary > 1000 AND d.region = 'west' GROUP BY d.name \
             HAVING COUNT(*) >= 2 ORDER BY n DESC, d.name LIMIT 10 OFFSET 5",
        );
        assert!(s.from.is_some());
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(5));
    }

    #[test]
    fn parses_joins() {
        let s = sel("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x CROSS JOIN c");
        assert_eq!(s.joins[0].kind, JoinKind::Left);
        assert_eq!(s.joins[1].kind, JoinKind::Cross);
        assert!(s.joins[1].on.is_none());
    }

    #[test]
    fn comma_join_is_cross() {
        let s = sel("SELECT * FROM a, b WHERE a.x = b.x");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].kind, JoinKind::Cross);
    }

    #[test]
    fn parses_subqueries() {
        let s =
            sel("SELECT * FROM t WHERE id IN (SELECT id FROM u) AND x > (SELECT AVG(x) FROM t)");
        let w = s.where_clause.unwrap();
        let text = format!("{w:?}");
        assert!(text.contains("InSubquery"));
        assert!(text.contains("ScalarSubquery"));
    }

    #[test]
    fn parses_predicates() {
        let s = sel(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b NOT LIKE 'x%' AND c IS NOT NULL \
             AND d IN (1, 2, 3) AND NOT e",
        );
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_case_cast() {
        let s = sel(
            "SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END, CAST(y AS REAL), z::integer FROM t",
        );
        assert_eq!(s.items.len(), 3);
    }

    #[test]
    fn parses_insert_values() {
        let st = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match st {
            Statement::Insert(ins) => {
                assert_eq!(ins.table, "t");
                assert_eq!(ins.columns, vec!["a", "b"]);
                match ins.source {
                    InsertSource::Values(rows) => assert_eq!(rows.len(), 2),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_select() {
        let st = parse_statement("INSERT INTO t SELECT * FROM u WHERE x > 1").unwrap();
        assert!(matches!(
            st,
            Statement::Insert(Insert {
                source: InsertSource::Select(_),
                ..
            })
        ));
    }

    #[test]
    fn parses_update_delete() {
        let st = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        match st {
            Statement::Update(u) => {
                assert_eq!(u.assignments.len(), 2);
                assert!(u.where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
        let st = parse_statement("DELETE FROM t WHERE id = 3").unwrap();
        assert!(matches!(st, Statement::Delete(_)));
    }

    #[test]
    fn parses_create_table() {
        let st = parse_statement(
            "CREATE TABLE IF NOT EXISTS sales (\
               id INTEGER PRIMARY KEY, \
               store TEXT NOT NULL REFERENCES stores(name), \
               amount REAL DEFAULT 0, \
               day DATE, \
               ok BOOLEAN, \
               UNIQUE (store, day), \
               FOREIGN KEY (store) REFERENCES stores (name), \
               CHECK (amount >= 0))",
        )
        .unwrap();
        match st {
            Statement::CreateTable(ct) => {
                assert!(ct.if_not_exists);
                assert_eq!(ct.columns.len(), 5);
                assert_eq!(ct.constraints.len(), 3);
                assert!(ct.columns[0].primary_key);
                assert!(ct.columns[1].not_null);
                assert_eq!(
                    ct.columns[1].references,
                    Some(("stores".into(), "name".into()))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_ddl_misc() {
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS a, b").unwrap(),
            Statement::DropTable(DropTable {
                if_exists: true,
                ..
            })
        ));
        assert!(matches!(
            parse_statement("CREATE UNIQUE INDEX ix ON t (a, b)").unwrap(),
            Statement::CreateIndex(CreateIndex { unique: true, .. })
        ));
        assert!(matches!(
            parse_statement("ALTER TABLE t ADD COLUMN c INTEGER").unwrap(),
            Statement::AlterTable(AlterTable::AddColumn { .. })
        ));
        assert!(matches!(
            parse_statement("ALTER TABLE t RENAME TO u").unwrap(),
            Statement::AlterTable(AlterTable::RenameTable { .. })
        ));
    }

    #[test]
    fn parses_transactions() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(
            parse_statement("BEGIN TRANSACTION").unwrap(),
            Statement::Begin
        );
        assert_eq!(
            parse_statement("START TRANSACTION").unwrap(),
            Statement::Begin
        );
        assert_eq!(parse_statement("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(
            parse_statement("ROLLBACK WORK").unwrap(),
            Statement::Rollback
        );
    }

    #[test]
    fn parses_grant_revoke() {
        let st = parse_statement("GRANT SELECT, INSERT ON t1, t2 TO alice").unwrap();
        match st {
            Statement::GrantRevoke(g) => {
                assert!(g.grant);
                assert_eq!(g.actions, Some(vec![Action::Select, Action::Insert]));
                assert_eq!(g.objects, vec!["t1", "t2"]);
                assert_eq!(g.user, "alice");
            }
            other => panic!("{other:?}"),
        }
        let st = parse_statement("REVOKE ALL PRIVILEGES ON t FROM bob").unwrap();
        match st {
            Statement::GrantRevoke(g) => {
                assert!(!g.grant);
                assert_eq!(g.actions, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_scripts() {
        let stmts = parse_statements("BEGIN; INSERT INTO t VALUES (1); COMMIT;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn operator_precedence() {
        let s = sel("SELECT 1 + 2 * 3");
        match &s.items[0] {
            SelectItem::Expr {
                expr:
                    Expr::Binary {
                        op: BinaryOp::Add,
                        right,
                        ..
                    },
                ..
            } => {
                assert!(matches!(
                    **right,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = sel("SELECT * FROM t WHERE a OR b AND c");
        match s.where_clause.unwrap() {
            Expr::Binary {
                op: BinaryOp::Or,
                right,
                ..
            } => {
                assert!(matches!(
                    *right,
                    Expr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_sql() {
        for bad in [
            "",
            "SELEC 1",
            "SELECT FROM t",
            "INSERT t VALUES (1)",
            "UPDATE t SET",
            "DELETE t",
            "CREATE TABLE t",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t GROUP",
            "GRANT SUPERPOWERS ON t TO x",
        ] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn mysql_limit_offset_form() {
        let s = sel("SELECT * FROM t LIMIT 5, 10");
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(5));
    }

    #[test]
    fn distinct_and_aggregates() {
        let s = sel("SELECT DISTINCT city, COUNT(DISTINCT name) FROM t");
        assert!(s.distinct);
        match &s.items[1] {
            SelectItem::Expr {
                expr: Expr::Function { distinct, .. },
                ..
            } => assert!(distinct),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let s = sel("SELECT COUNT(*) FROM t");
        match &s.items[0] {
            SelectItem::Expr {
                expr: Expr::Function { star, name, .. },
                ..
            } => {
                assert!(*star);
                assert_eq!(name, "count");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_alias_not_confused_with_keywords() {
        let s = sel("SELECT amount total FROM sales WHERE x = 1");
        match &s.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("total")),
            other => panic!("{other:?}"),
        }
    }
}
