//! # sqlkit — SQL front-end for the BridgeScope reproduction
//!
//! A self-contained SQL dialect front-end:
//!
//! * [`token`] — tokenizer with byte-offset diagnostics;
//! * [`ast`] — statements, expressions, and the [`ast::Action`] enum that is
//!   the unit of both privilege checking and BridgeScope's action-level tool
//!   modularization;
//! * [`parser`] — recursive-descent parser for single-block SELECT (joins,
//!   aggregation, uncorrelated subqueries), INSERT/UPDATE/DELETE,
//!   CREATE/DROP/ALTER TABLE, CREATE INDEX, BEGIN/COMMIT/ROLLBACK, and
//!   GRANT/REVOKE;
//! * [`analyze`] — computes which ⟨action, object⟩ pairs a statement needs,
//!   used by BridgeScope's object-level verification gate;
//! * [`format`] — canonical SQL rendering that round-trips through the
//!   parser.
//!
//! Out of scope (documented in DESIGN.md): correlated subqueries, window
//! functions, set operations, multi-statement CTEs.

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod format;
pub mod parser;
pub mod token;

pub use analyze::{analyze, column_usage, AccessProfile, ColumnUsage};
pub use ast::{Action, Expr, Literal, Select, Statement};
pub use format::{format_expr, format_select, format_statement, truncate_sql};
pub use parser::{parse_statement, parse_statements, ParseError};
