//! SQL abstract syntax tree.
//!
//! The AST covers the dialect subset the benchmarks exercise: full
//! single-block `SELECT` (joins, aggregation, uncorrelated subqueries,
//! ordering, limits), the four DML actions, table DDL with constraints,
//! index DDL, transaction control, and `GRANT`/`REVOKE`. Correlated
//! subqueries and window functions are out of scope (documented in
//! DESIGN.md).

use std::fmt;

/// The privilege-relevant action a statement performs. This is the `a` in
/// the paper's privilege set `P_u ⊆ A × O` and the unit of BridgeScope's
/// action-level tool modularization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Read rows.
    Select,
    /// Add rows.
    Insert,
    /// Modify rows.
    Update,
    /// Remove rows.
    Delete,
    /// Create objects (tables, indexes).
    Create,
    /// Drop objects.
    Drop,
    /// Alter object structure.
    Alter,
    /// Grant or revoke privileges.
    GrantRevoke,
    /// Transaction control (BEGIN/COMMIT/ROLLBACK).
    Transaction,
}

impl Action {
    /// All data-plane actions, i.e. those with per-object privileges.
    pub const DATA_ACTIONS: [Action; 7] = [
        Action::Select,
        Action::Insert,
        Action::Update,
        Action::Delete,
        Action::Create,
        Action::Drop,
        Action::Alter,
    ];

    /// Lower-case keyword for the action, used as the tool name.
    pub fn keyword(&self) -> &'static str {
        match self {
            Action::Select => "select",
            Action::Insert => "insert",
            Action::Update => "update",
            Action::Delete => "delete",
            Action::Create => "create",
            Action::Drop => "drop",
            Action::Alter => "alter",
            Action::GrantRevoke => "grant",
            Action::Transaction => "transaction",
        }
    }

    /// Whether the action can change database state.
    pub fn is_write(&self) -> bool {
        !matches!(self, Action::Select | Action::Transaction)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.keyword().to_uppercase())
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// SQL NULL.
    Null,
    /// Boolean TRUE/FALSE.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal.
    Str(String),
}

/// Reference to a column, optionally qualified by table name or alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Qualifier (table name or alias), if written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

/// Binary operators, in one enum so precedence lives in the parser only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `OR`
    Or,
    /// `AND`
    And,
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||` string concatenation
    Concat,
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Literal(Literal),
    /// A column reference.
    Column(ColumnRef),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call (scalar or aggregate; resolved at execution).
    Function {
        /// Function name, lower-cased.
        name: String,
        /// Arguments; empty for `count(*)` with `star = true`.
        args: Vec<Expr>,
        /// `true` for `f(DISTINCT x)`.
        distinct: bool,
        /// `true` for `count(*)`.
        star: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Whether the test is negated (`IS NOT NULL`).
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// Negation flag.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT …)` — uncorrelated.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// Subquery producing the candidate set (first column used).
        subquery: Box<Select>,
        /// Negation flag.
        negated: bool,
    },
    /// Scalar subquery `(SELECT …)` — uncorrelated, first row/column.
    ScalarSubquery(Box<Select>),
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// Negation flag.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
        /// Negation flag.
        negated: bool,
    },
    /// `CASE WHEN … THEN … [ELSE …] END` (searched form).
    Case {
        /// WHEN/THEN arms.
        branches: Vec<(Expr, Expr)>,
        /// ELSE arm.
        else_expr: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Target type name (normalized).
        ty: TypeName,
    },
}

impl Expr {
    /// Shorthand for a column reference without qualifier.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef {
            table: None,
            column: name.into(),
        })
    }

    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// Shorthand for a string literal.
    pub fn string(v: impl Into<String>) -> Expr {
        Expr::Literal(Literal::Str(v.into()))
    }

    /// Shorthand for a binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }
}

/// Normalized SQL type name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeName {
    /// 64-bit integer (`INT`, `INTEGER`, `BIGINT`, `SMALLINT`).
    Integer,
    /// 64-bit float (`REAL`, `FLOAT`, `DOUBLE [PRECISION]`, `NUMERIC`, `DECIMAL`).
    Float,
    /// UTF-8 text (`TEXT`, `VARCHAR[(n)]`, `CHAR[(n)]`, `DATE`, `TIMESTAMP`).
    /// Dates are stored as ISO-8601 text; their ordering matches string order.
    Text,
    /// Boolean (`BOOLEAN`, `BOOL`).
    Boolean,
}

impl TypeName {
    /// Canonical SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            TypeName::Integer => "INTEGER",
            TypeName::Float => "REAL",
            TypeName::Text => "TEXT",
            TypeName::Boolean => "BOOLEAN",
        }
    }
}

/// One item of a SELECT projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression, optionally aliased.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias` if written.
        alias: Option<String>,
    },
}

/// A table in FROM, optionally aliased.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// Alias (`FROM t AS x` or `FROM t x`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is addressed by inside the query.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Join kinds supported by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT [OUTER] JOIN.
    Left,
    /// CROSS JOIN.
    Cross,
}

/// One join clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join kind.
    pub kind: JoinKind,
    /// The joined table.
    pub table: TableRef,
    /// `ON` condition (absent for CROSS).
    pub on: Option<Expr>,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderDir {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// One ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key expression.
    pub expr: Expr,
    /// Direction.
    pub dir: OrderDir,
}

/// A single-block SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM table (absent for `SELECT 1`-style queries).
    pub from: Option<TableRef>,
    /// Joins applied left to right.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY keys.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// OFFSET row count.
    pub offset: Option<u64>,
}

impl Select {
    /// An empty SELECT skeleton; builders fill in fields.
    pub fn new() -> Self {
        Select {
            distinct: false,
            items: Vec::new(),
            from: None,
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

impl Default for Select {
    fn default() -> Self {
        Select::new()
    }
}

/// INSERT statement. Either explicit VALUES rows or `INSERT … SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Column list; empty means "all columns in declaration order".
    pub columns: Vec<String>,
    /// Data source.
    pub source: InsertSource,
}

/// The data source of an INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (…), (…)`.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO t SELECT …`.
    Select(Box<Select>),
}

/// UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `SET col = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// WHERE predicate; `None` updates every row.
    pub where_clause: Option<Expr>,
}

/// DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// WHERE predicate; `None` deletes every row.
    pub where_clause: Option<Expr>,
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: TypeName,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// Single-column PRIMARY KEY marker.
    pub primary_key: bool,
    /// UNIQUE constraint.
    pub unique: bool,
    /// DEFAULT expression.
    pub default: Option<Expr>,
    /// Inline `REFERENCES table(col)`.
    pub references: Option<(String, String)>,
    /// Inline `CHECK (expr)` constraint.
    pub check: Option<Expr>,
}

impl ColumnDef {
    /// A plain nullable column of the given type.
    pub fn new(name: impl Into<String>, ty: TypeName) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            not_null: false,
            primary_key: false,
            unique: false,
            default: None,
            references: None,
            check: None,
        }
    }
}

/// Table-level constraint in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraint {
    /// `PRIMARY KEY (a, b)`.
    PrimaryKey(Vec<String>),
    /// `UNIQUE (a, b)`.
    Unique(Vec<String>),
    /// `FOREIGN KEY (a) REFERENCES t (b)`.
    ForeignKey {
        /// Local columns.
        columns: Vec<String>,
        /// Referenced table.
        foreign_table: String,
        /// Referenced columns.
        foreign_columns: Vec<String>,
    },
    /// `CHECK (expr)`.
    Check(Expr),
}

/// CREATE TABLE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// `IF NOT EXISTS` flag.
    pub if_not_exists: bool,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
    /// Table-level constraints.
    pub constraints: Vec<TableConstraint>,
}

/// CREATE VIEW statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateView {
    /// View name.
    pub name: String,
    /// The defining query.
    pub query: Select,
}

/// DROP TABLE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DropTable {
    /// Table names.
    pub names: Vec<String>,
    /// `IF EXISTS` flag.
    pub if_exists: bool,
}

/// CREATE INDEX statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// Index name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed columns, in order.
    pub columns: Vec<String>,
    /// UNIQUE index?
    pub unique: bool,
}

/// ALTER TABLE statement (column add/drop/rename only).
#[derive(Debug, Clone, PartialEq)]
pub enum AlterTable {
    /// `ALTER TABLE t ADD COLUMN c type`.
    AddColumn {
        /// Table.
        table: String,
        /// New column.
        column: ColumnDef,
    },
    /// `ALTER TABLE t DROP COLUMN c`.
    DropColumn {
        /// Table.
        table: String,
        /// Dropped column.
        column: String,
    },
    /// `ALTER TABLE t RENAME TO u`.
    RenameTable {
        /// Table.
        table: String,
        /// New name.
        new_name: String,
    },
}

impl AlterTable {
    /// The table the statement alters.
    pub fn table(&self) -> &str {
        match self {
            AlterTable::AddColumn { table, .. }
            | AlterTable::DropColumn { table, .. }
            | AlterTable::RenameTable { table, .. } => table,
        }
    }
}

/// GRANT / REVOKE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct GrantRevoke {
    /// `true` for GRANT, `false` for REVOKE.
    pub grant: bool,
    /// Actions granted; `None` means `ALL PRIVILEGES`.
    pub actions: Option<Vec<Action>>,
    /// Object names (`ON t1, t2`).
    pub objects: Vec<String>,
    /// Grantee user name.
    pub user: String,
}

/// Any parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT.
    Select(Select),
    /// INSERT.
    Insert(Insert),
    /// UPDATE.
    Update(Update),
    /// DELETE.
    Delete(Delete),
    /// CREATE TABLE.
    CreateTable(CreateTable),
    /// CREATE VIEW.
    CreateView(CreateView),
    /// DROP VIEW.
    DropView {
        /// View name.
        name: String,
        /// IF EXISTS flag.
        if_exists: bool,
    },
    /// DROP TABLE.
    DropTable(DropTable),
    /// CREATE INDEX.
    CreateIndex(CreateIndex),
    /// ALTER TABLE.
    AlterTable(AlterTable),
    /// BEGIN [TRANSACTION].
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
    /// SAVEPOINT name.
    Savepoint(String),
    /// ROLLBACK TO [SAVEPOINT] name.
    RollbackTo(String),
    /// RELEASE [SAVEPOINT] name.
    Release(String),
    /// GRANT / REVOKE.
    GrantRevoke(GrantRevoke),
    /// EXPLAIN wrapping another statement: describe the plan, don't run it.
    Explain {
        /// The statement being explained.
        stmt: Box<Statement>,
        /// `EXPLAIN ANALYZE`: execute the statement and report real
        /// per-operator row counts alongside the estimates.
        analyze: bool,
    },
    /// ANALYZE \[table\]: collect optimizer statistics (row counts and
    /// per-column distinct counts) for one table, or for every table when
    /// no name is given.
    Analyze {
        /// The table to analyze; `None` analyzes the whole database.
        table: Option<String>,
    },
}

impl Statement {
    /// The primary action the statement performs (drives privilege checks
    /// and tool routing).
    pub fn action(&self) -> Action {
        match self {
            Statement::Select(_) => Action::Select,
            Statement::Insert(_) => Action::Insert,
            Statement::Update(_) => Action::Update,
            Statement::Delete(_) => Action::Delete,
            Statement::CreateTable(_) | Statement::CreateView(_) | Statement::CreateIndex(_) => {
                Action::Create
            }
            Statement::DropTable(_) | Statement::DropView { .. } => Action::Drop,
            Statement::AlterTable(_) => Action::Alter,
            Statement::Begin
            | Statement::Commit
            | Statement::Rollback
            | Statement::Savepoint(_)
            | Statement::RollbackTo(_)
            | Statement::Release(_) => Action::Transaction,
            Statement::GrantRevoke(_) => Action::GrantRevoke,
            // EXPLAIN needs the privileges of the statement it explains.
            Statement::Explain { stmt, .. } => stmt.action(),
            // ANALYZE rewrites catalog statistics: a schema-level write.
            Statement::Analyze { .. } => Action::Alter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_keywords() {
        assert_eq!(Action::Select.keyword(), "select");
        assert_eq!(Action::Drop.keyword(), "drop");
        assert!(!Action::Select.is_write());
        assert!(Action::Insert.is_write());
        assert!(!Action::Transaction.is_write());
    }

    #[test]
    fn statement_actions() {
        assert_eq!(Statement::Begin.action(), Action::Transaction);
        let sel = Statement::Select(Select::new());
        assert_eq!(sel.action(), Action::Select);
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef {
            name: "orders".into(),
            alias: Some("o".into()),
        };
        assert_eq!(t.binding(), "o");
        let t = TableRef {
            name: "orders".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "orders");
    }

    #[test]
    fn expr_builders() {
        let e = Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::int(5));
        match e {
            Expr::Binary {
                op: BinaryOp::Gt, ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
