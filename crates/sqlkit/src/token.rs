//! SQL tokenizer.
//!
//! Produces a flat token stream with byte offsets so parse errors can point
//! at the offending position — the simulated agent surfaces these messages
//! back into the LLM transcript, mirroring how a real database error would
//! read.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (case preserved; keyword matching is
    /// case-insensitive at the parser level). Double-quoted identifiers are
    /// unquoted into this variant with `quoted = true`.
    Ident {
        /// The identifier text.
        text: String,
        /// Whether it was written as a quoted identifier (`"name"`).
        quoted: bool,
    },
    /// Numeric literal (integer or decimal).
    Number(String),
    /// Single-quoted string literal, unescaped.
    Str(String),
    /// Punctuation / operator symbol, e.g. `(`, `,`, `<=`, `||`.
    Symbol(&'static str),
    /// Positional parameter like `$1` (parsed but unused by the engine).
    Param(u32),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident { text, quoted: true } => write!(f, "\"{text}\""),
            Token::Ident { text, .. } => write!(f, "{text}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Symbol(s) => write!(f, "{s}"),
            Token::Param(n) => write!(f, "${n}"),
        }
    }
}

/// A token plus its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Lexer error with source offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

const SYMBOLS: &[&str] = &[
    "<>", "!=", "<=", ">=", "||", "::", "(", ")", ",", ";", "+", "-", "*", "/", "%", "<", ">", "=",
    ".",
];

/// Tokenize SQL text. Comments (`-- …` and `/* … */`) are skipped.
pub fn lex(sql: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = sql.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    'outer: while pos < bytes.len() {
        let b = bytes[pos];
        // Whitespace.
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        // Line comment.
        if b == b'-' && bytes.get(pos + 1) == Some(&b'-') {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        // Block comment.
        if b == b'/' && bytes.get(pos + 1) == Some(&b'*') {
            let start = pos;
            pos += 2;
            loop {
                if pos + 1 >= bytes.len() {
                    return Err(LexError {
                        offset: start,
                        message: "unterminated block comment".into(),
                    });
                }
                if bytes[pos] == b'*' && bytes[pos + 1] == b'/' {
                    pos += 2;
                    break;
                }
                pos += 1;
            }
            continue;
        }
        // String literal.
        if b == b'\'' {
            let start = pos;
            pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(pos) {
                    None => {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated string literal".into(),
                        })
                    }
                    Some(b'\'') if bytes.get(pos + 1) == Some(&b'\'') => {
                        s.push('\'');
                        pos += 2;
                    }
                    Some(b'\'') => {
                        pos += 1;
                        break;
                    }
                    Some(_) => {
                        let rest = &sql[pos..];
                        let ch = rest.chars().next().expect("in range");
                        s.push(ch);
                        pos += ch.len_utf8();
                    }
                }
            }
            out.push(Spanned {
                token: Token::Str(s),
                offset: start,
            });
            continue;
        }
        // Quoted identifier.
        if b == b'"' {
            let start = pos;
            pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(pos) {
                    None => {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated quoted identifier".into(),
                        })
                    }
                    Some(b'"') if bytes.get(pos + 1) == Some(&b'"') => {
                        s.push('"');
                        pos += 2;
                    }
                    Some(b'"') => {
                        pos += 1;
                        break;
                    }
                    Some(_) => {
                        let rest = &sql[pos..];
                        let ch = rest.chars().next().expect("in range");
                        s.push(ch);
                        pos += ch.len_utf8();
                    }
                }
            }
            out.push(Spanned {
                token: Token::Ident {
                    text: s,
                    quoted: true,
                },
                offset: start,
            });
            continue;
        }
        // Number: digits, optional fraction/exponent. A leading '.' followed
        // by a digit is also a number (".5").
        if b.is_ascii_digit() || (b == b'.' && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit)) {
            let start = pos;
            while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'.' {
                pos += 1;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
            }
            if pos < bytes.len() && (bytes[pos] == b'e' || bytes[pos] == b'E') {
                let mut probe = pos + 1;
                if probe < bytes.len() && (bytes[probe] == b'+' || bytes[probe] == b'-') {
                    probe += 1;
                }
                if probe < bytes.len() && bytes[probe].is_ascii_digit() {
                    pos = probe;
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                }
            }
            out.push(Spanned {
                token: Token::Number(sql[start..pos].to_owned()),
                offset: start,
            });
            continue;
        }
        // Identifier / keyword.
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = pos;
            while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
                pos += 1;
            }
            out.push(Spanned {
                token: Token::Ident {
                    text: sql[start..pos].to_owned(),
                    quoted: false,
                },
                offset: start,
            });
            continue;
        }
        // Positional parameter.
        if b == b'$' {
            let start = pos;
            pos += 1;
            let digits_start = pos;
            while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                pos += 1;
            }
            if pos == digits_start {
                return Err(LexError {
                    offset: start,
                    message: "expected digits after '$'".into(),
                });
            }
            let n: u32 = sql[digits_start..pos].parse().map_err(|_| LexError {
                offset: start,
                message: "parameter number out of range".into(),
            })?;
            out.push(Spanned {
                token: Token::Param(n),
                offset: start,
            });
            continue;
        }
        // Multi/single character symbols, longest first.
        for sym in SYMBOLS {
            if sql[pos..].starts_with(sym) {
                out.push(Spanned {
                    token: Token::Symbol(sym),
                    offset: pos,
                });
                pos += sym.len();
                continue 'outer;
            }
        }
        return Err(LexError {
            offset: pos,
            message: format!(
                "unexpected character '{}'",
                &sql[pos..].chars().next().unwrap()
            ),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<Token> {
        lex(sql).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let toks = kinds("SELECT a, b FROM t WHERE x >= 10;");
        assert_eq!(
            toks[0],
            Token::Ident {
                text: "SELECT".into(),
                quoted: false
            }
        );
        assert!(toks.contains(&Token::Symbol(">=")));
        assert!(toks.contains(&Token::Number("10".into())));
        assert_eq!(*toks.last().unwrap(), Token::Symbol(";"));
    }

    #[test]
    fn string_escapes_doubled_quotes() {
        let toks = kinds("'it''s'");
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn quoted_identifiers() {
        let toks = kinds(r#""Order Details""#);
        assert_eq!(
            toks,
            vec![Token::Ident {
                text: "Order Details".into(),
                quoted: true
            }]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 .5 1e3 1.5e-2"),
            vec![
                Token::Number("1".into()),
                Token::Number("2.5".into()),
                Token::Number(".5".into()),
                Token::Number("1e3".into()),
                Token::Number("1.5e-2".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = kinds("SELECT -- line\n 1 /* block */ + 2");
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn neq_both_spellings() {
        assert_eq!(kinds("a <> b")[1], Token::Symbol("<>"));
        assert_eq!(kinds("a != b")[1], Token::Symbol("!="));
    }

    #[test]
    fn params() {
        assert_eq!(kinds("$1")[0], Token::Param(1));
        assert!(lex("$x").is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        let err = lex("SELECT 'abc").unwrap_err();
        assert_eq!(err.offset, 7);
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("'café'"), vec![Token::Str("café".into())]);
    }
}
