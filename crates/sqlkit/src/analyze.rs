//! Static analysis of parsed statements.
//!
//! BridgeScope's object-level verification (§2.3 of the paper) needs to know,
//! for any SQL text, *which action it performs on which objects* — before the
//! engine touches anything. [`analyze`] walks the AST and produces exactly
//! that: per-object action requirements, including objects referenced only
//! from subqueries or `INSERT … SELECT` sources.

use crate::ast::*;
use std::collections::BTreeSet;

/// The access profile of one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessProfile {
    /// The primary action of the statement.
    pub action: Action,
    /// Objects the statement reads from (tables appearing in FROM/joins/
    /// subqueries/sources).
    pub reads: BTreeSet<String>,
    /// Objects the statement writes (DML targets, DDL subjects).
    pub writes: BTreeSet<String>,
}

impl AccessProfile {
    /// All ⟨action, object⟩ pairs the statement requires. Reads require
    /// SELECT; writes require the statement's primary action.
    pub fn required_privileges(&self) -> Vec<(Action, String)> {
        let mut out = Vec::new();
        for obj in &self.reads {
            out.push((Action::Select, obj.clone()));
        }
        for obj in &self.writes {
            out.push((self.action, obj.clone()));
        }
        out
    }

    /// Every object the statement touches in any way.
    pub fn all_objects(&self) -> BTreeSet<String> {
        self.reads.union(&self.writes).cloned().collect()
    }
}

/// Column-level usage of a statement, with aliases resolved to table names.
/// Supports column-granular security checks (paper §2.2's "more granular
/// privileges (e.g., on specific columns)").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnUsage {
    /// Tables whose *entire* row is exposed or written: `SELECT *`,
    /// `t.*`, or `INSERT INTO t VALUES …` without a column list.
    pub wildcard_tables: BTreeSet<String>,
    /// Column references resolved to a table (`t.c`, or an alias of `t`).
    pub qualified: BTreeSet<(String, String)>,
    /// Unqualified column names, paired with the set of tables in scope at
    /// the point of use — the column belongs to one of them.
    pub unqualified: Vec<(String, BTreeSet<String>)>,
}

impl ColumnUsage {
    /// Whether the statement may touch `table.column` — conservatively
    /// (wildcards and unresolved unqualified names count as "may touch").
    pub fn may_touch(&self, table: &str, column: &str) -> bool {
        if self.wildcard_tables.contains(table) {
            return true;
        }
        if self
            .qualified
            .contains(&(table.to_owned(), column.to_owned()))
        {
            return true;
        }
        self.unqualified
            .iter()
            .any(|(name, scope)| name == column && scope.contains(table))
    }
}

/// Compute the column-level usage of a statement.
pub fn column_usage(stmt: &Statement) -> ColumnUsage {
    if let Statement::Explain { stmt: inner, .. } = stmt {
        return column_usage(inner);
    }
    let mut usage = ColumnUsage::default();
    match stmt {
        Statement::Select(s) => usage_select(s, &mut usage),
        Statement::Insert(ins) => {
            if ins.columns.is_empty() {
                usage.wildcard_tables.insert(ins.table.clone());
            } else {
                for c in &ins.columns {
                    usage.qualified.insert((ins.table.clone(), c.clone()));
                }
            }
            match &ins.source {
                InsertSource::Values(rows) => {
                    let scope = BTreeSet::new();
                    for row in rows {
                        for e in row {
                            usage_expr(e, &scope, &mut usage);
                        }
                    }
                }
                InsertSource::Select(sel) => usage_select(sel, &mut usage),
            }
        }
        Statement::Update(u) => {
            let scope: BTreeSet<String> = [u.table.clone()].into();
            for (col, e) in &u.assignments {
                usage.qualified.insert((u.table.clone(), col.clone()));
                usage_expr(e, &scope, &mut usage);
            }
            if let Some(w) = &u.where_clause {
                usage_expr(w, &scope, &mut usage);
            }
        }
        Statement::Delete(d) => {
            let scope: BTreeSet<String> = [d.table.clone()].into();
            if let Some(w) = &d.where_clause {
                usage_expr(w, &scope, &mut usage);
            }
        }
        Statement::CreateView(v) => usage_select(&v.query, &mut usage),
        // DDL/TCL/privilege statements operate at object granularity.
        _ => {}
    }
    usage
}

fn usage_select(s: &Select, usage: &mut ColumnUsage) {
    // Resolve bindings: alias (or table name) → table name.
    let mut bindings: Vec<(&str, &str)> = Vec::new();
    let mut scope: BTreeSet<String> = BTreeSet::new();
    if let Some(from) = &s.from {
        bindings.push((from.binding(), from.name.as_str()));
        scope.insert(from.name.clone());
    }
    for j in &s.joins {
        bindings.push((j.table.binding(), j.table.name.as_str()));
        scope.insert(j.table.name.clone());
    }
    let resolve = |qualifier: &str| -> Option<String> {
        bindings
            .iter()
            .find(|(b, _)| *b == qualifier)
            .map(|(_, t)| (*t).to_owned())
    };
    for item in &s.items {
        match item {
            SelectItem::Wildcard => {
                usage.wildcard_tables.extend(scope.iter().cloned());
            }
            SelectItem::QualifiedWildcard(q) => {
                if let Some(t) = resolve(q) {
                    usage.wildcard_tables.insert(t);
                } else {
                    usage.wildcard_tables.insert(q.clone());
                }
            }
            SelectItem::Expr { expr, .. } => usage_expr_in_select(expr, &scope, &resolve, usage),
        }
    }
    for e in s
        .where_clause
        .iter()
        .chain(s.group_by.iter())
        .chain(s.having.iter())
        .chain(s.order_by.iter().map(|o| &o.expr))
        .chain(s.joins.iter().filter_map(|j| j.on.as_ref()))
    {
        usage_expr_in_select(e, &scope, &resolve, usage);
    }
}

fn usage_expr_in_select(
    e: &Expr,
    scope: &BTreeSet<String>,
    resolve: &dyn Fn(&str) -> Option<String>,
    usage: &mut ColumnUsage,
) {
    match e {
        Expr::Column(c) => match &c.table {
            Some(q) => {
                let table = resolve(q).unwrap_or_else(|| q.clone());
                usage.qualified.insert((table, c.column.clone()));
            }
            None => usage.unqualified.push((c.column.clone(), scope.clone())),
        },
        Expr::InSubquery { expr, subquery, .. } => {
            usage_expr_in_select(expr, scope, resolve, usage);
            usage_select(subquery, usage);
        }
        Expr::ScalarSubquery(sub) => usage_select(sub, usage),
        other => {
            for child in expr_children(other) {
                usage_expr_in_select(child, scope, resolve, usage);
            }
        }
    }
}

fn usage_expr(e: &Expr, scope: &BTreeSet<String>, usage: &mut ColumnUsage) {
    let resolve = |q: &str| -> Option<String> {
        if scope.contains(q) {
            Some(q.to_owned())
        } else {
            None
        }
    };
    usage_expr_in_select(e, scope, &resolve, usage);
}

/// Direct sub-expressions of an expression (excluding subqueries, which the
/// usage walker handles itself).
fn expr_children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Literal(_) | Expr::Column(_) => Vec::new(),
        Expr::Unary { expr, .. } => vec![expr],
        Expr::Binary { left, right, .. } => vec![left, right],
        Expr::Function { args, .. } => args.iter().collect(),
        Expr::IsNull { expr, .. } => vec![expr],
        Expr::InList { expr, list, .. } => {
            let mut out = vec![expr.as_ref()];
            out.extend(list.iter());
            out
        }
        Expr::InSubquery { expr, .. } => vec![expr],
        Expr::ScalarSubquery(_) => Vec::new(),
        Expr::Between {
            expr, low, high, ..
        } => vec![expr, low, high],
        Expr::Like { expr, pattern, .. } => vec![expr, pattern],
        Expr::Case {
            branches,
            else_expr,
        } => {
            let mut out = Vec::new();
            for (c, v) in branches {
                out.push(c);
                out.push(v);
            }
            if let Some(e) = else_expr {
                out.push(e.as_ref());
            }
            out
        }
        Expr::Cast { expr, .. } => vec![expr],
    }
}

/// Compute the access profile of a statement.
pub fn analyze(stmt: &Statement) -> AccessProfile {
    if let Statement::Explain { stmt: inner, .. } = stmt {
        // EXPLAIN requires the explained statement's privileges.
        return analyze(inner);
    }
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    match stmt {
        Statement::Select(s) => collect_select(s, &mut reads),
        Statement::Insert(ins) => {
            writes.insert(ins.table.clone());
            match &ins.source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            collect_expr(e, &mut reads);
                        }
                    }
                }
                InsertSource::Select(sel) => collect_select(sel, &mut reads),
            }
        }
        Statement::Update(u) => {
            writes.insert(u.table.clone());
            for (_, e) in &u.assignments {
                collect_expr(e, &mut reads);
            }
            if let Some(w) = &u.where_clause {
                collect_expr(w, &mut reads);
            }
        }
        Statement::Delete(d) => {
            writes.insert(d.table.clone());
            if let Some(w) = &d.where_clause {
                collect_expr(w, &mut reads);
            }
        }
        Statement::CreateView(v) => {
            writes.insert(v.name.clone());
            collect_select(&v.query, &mut reads);
        }
        Statement::DropView { name, .. } => {
            writes.insert(name.clone());
        }
        Statement::CreateTable(ct) => {
            writes.insert(ct.name.clone());
            for c in &ct.columns {
                if let Some((t, _)) = &c.references {
                    reads.insert(t.clone());
                }
            }
            for cons in &ct.constraints {
                if let TableConstraint::ForeignKey { foreign_table, .. } = cons {
                    reads.insert(foreign_table.clone());
                }
            }
        }
        Statement::DropTable(dt) => {
            for name in &dt.names {
                writes.insert(name.clone());
            }
        }
        Statement::CreateIndex(ci) => {
            writes.insert(ci.table.clone());
        }
        Statement::AlterTable(at) => {
            writes.insert(at.table().to_owned());
        }
        Statement::Begin
        | Statement::Commit
        | Statement::Rollback
        | Statement::Savepoint(_)
        | Statement::RollbackTo(_)
        | Statement::Release(_) => {}
        Statement::Explain { .. } => unreachable!("handled above"),
        Statement::Analyze { table } => {
            // Statistics collection rewrites the catalog entry of the named
            // table. A whole-database ANALYZE names no static object; the
            // engine gates it at execution (superuser only).
            if let Some(t) = table {
                writes.insert(t.clone());
            }
        }
        Statement::GrantRevoke(g) => {
            for obj in &g.objects {
                writes.insert(obj.clone());
            }
        }
    }
    AccessProfile {
        action: stmt.action(),
        reads,
        writes,
    }
}

fn collect_select(s: &Select, reads: &mut BTreeSet<String>) {
    if let Some(from) = &s.from {
        reads.insert(from.name.clone());
    }
    for j in &s.joins {
        reads.insert(j.table.name.clone());
        if let Some(on) = &j.on {
            collect_expr(on, reads);
        }
    }
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_expr(expr, reads);
        }
    }
    if let Some(w) = &s.where_clause {
        collect_expr(w, reads);
    }
    for g in &s.group_by {
        collect_expr(g, reads);
    }
    if let Some(h) = &s.having {
        collect_expr(h, reads);
    }
    for o in &s.order_by {
        collect_expr(&o.expr, reads);
    }
}

fn collect_expr(e: &Expr, reads: &mut BTreeSet<String>) {
    match e {
        Expr::Literal(_) | Expr::Column(_) => {}
        Expr::Unary { expr, .. } => collect_expr(expr, reads),
        Expr::Binary { left, right, .. } => {
            collect_expr(left, reads);
            collect_expr(right, reads);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_expr(a, reads);
            }
        }
        Expr::IsNull { expr, .. } => collect_expr(expr, reads),
        Expr::InList { expr, list, .. } => {
            collect_expr(expr, reads);
            for item in list {
                collect_expr(item, reads);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            collect_expr(expr, reads);
            collect_select(subquery, reads);
        }
        Expr::ScalarSubquery(sub) => collect_select(sub, reads),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_expr(expr, reads);
            collect_expr(low, reads);
            collect_expr(high, reads);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_expr(expr, reads);
            collect_expr(pattern, reads);
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                collect_expr(c, reads);
                collect_expr(v, reads);
            }
            if let Some(e) = else_expr {
                collect_expr(e, reads);
            }
        }
        Expr::Cast { expr, .. } => collect_expr(expr, reads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn profile(sql: &str) -> AccessProfile {
        analyze(&parse_statement(sql).unwrap())
    }

    fn names(set: &BTreeSet<String>) -> Vec<&str> {
        set.iter().map(String::as_str).collect()
    }

    #[test]
    fn select_reads_all_tables() {
        let p = profile("SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y IN (SELECT y FROM c)");
        assert_eq!(p.action, Action::Select);
        assert_eq!(names(&p.reads), vec!["a", "b", "c"]);
        assert!(p.writes.is_empty());
    }

    #[test]
    fn insert_writes_target_reads_source() {
        let p = profile("INSERT INTO t SELECT * FROM u");
        assert_eq!(p.action, Action::Insert);
        assert_eq!(names(&p.writes), vec!["t"]);
        assert_eq!(names(&p.reads), vec!["u"]);
    }

    #[test]
    fn update_with_subquery_in_where() {
        let p = profile("UPDATE t SET a = 1 WHERE id IN (SELECT id FROM u)");
        assert_eq!(names(&p.writes), vec!["t"]);
        assert_eq!(names(&p.reads), vec!["u"]);
    }

    #[test]
    fn delete_profile() {
        let p = profile("DELETE FROM logs WHERE day < '2020-01-01'");
        assert_eq!(p.action, Action::Delete);
        assert_eq!(names(&p.writes), vec!["logs"]);
    }

    #[test]
    fn ddl_profiles() {
        let p = profile("CREATE TABLE t (id INTEGER REFERENCES u(id))");
        assert_eq!(p.action, Action::Create);
        assert_eq!(names(&p.writes), vec!["t"]);
        assert_eq!(names(&p.reads), vec!["u"]);

        let p = profile("DROP TABLE a, b");
        assert_eq!(p.action, Action::Drop);
        assert_eq!(names(&p.writes), vec!["a", "b"]);
    }

    #[test]
    fn required_privileges_pairs() {
        let p = profile("INSERT INTO t SELECT * FROM u");
        let req = p.required_privileges();
        assert!(req.contains(&(Action::Select, "u".into())));
        assert!(req.contains(&(Action::Insert, "t".into())));
    }

    #[test]
    fn transaction_statements_touch_nothing() {
        let p = profile("BEGIN");
        assert!(p.reads.is_empty() && p.writes.is_empty());
        assert_eq!(p.action, Action::Transaction);
    }

    #[test]
    fn scalar_subquery_in_projection() {
        let p = profile("SELECT (SELECT MAX(x) FROM m), a FROM t");
        assert_eq!(names(&p.reads), vec!["m", "t"]);
    }

    fn usage(sql: &str) -> ColumnUsage {
        column_usage(&parse_statement(sql).unwrap())
    }

    #[test]
    fn column_usage_resolves_aliases() {
        let u = usage("SELECT e.salary, d.name FROM emp AS e JOIN dept AS d ON e.dept_id = d.id");
        assert!(u.qualified.contains(&("emp".into(), "salary".into())));
        assert!(u.qualified.contains(&("dept".into(), "name".into())));
        assert!(u.qualified.contains(&("emp".into(), "dept_id".into())));
        assert!(u.may_touch("emp", "salary"));
        assert!(!u.may_touch("emp", "nope"));
    }

    #[test]
    fn column_usage_unqualified_is_conservative() {
        let u = usage("SELECT salary FROM emp JOIN dept ON 1 = 1");
        // `salary` could come from either table in scope.
        assert!(u.may_touch("emp", "salary"));
        assert!(u.may_touch("dept", "salary"));
        assert!(!u.may_touch("other", "salary"));
    }

    #[test]
    fn column_usage_wildcards() {
        let u = usage("SELECT * FROM emp");
        assert!(u.wildcard_tables.contains("emp"));
        assert!(u.may_touch("emp", "anything"));
        let u = usage("SELECT e.* FROM emp AS e JOIN dept AS d ON e.id = d.id");
        assert!(u.wildcard_tables.contains("emp"));
        assert!(!u.wildcard_tables.contains("dept"));
    }

    #[test]
    fn column_usage_dml() {
        let u = usage("INSERT INTO emp (id, salary) VALUES (1, 2)");
        assert!(u.may_touch("emp", "salary"));
        assert!(!u.may_touch("emp", "name"));
        let u = usage("INSERT INTO emp VALUES (1, 2)");
        assert!(u.wildcard_tables.contains("emp"));
        let u = usage("UPDATE emp SET salary = salary * 2 WHERE id = 1");
        assert!(u.may_touch("emp", "salary"));
        assert!(u.may_touch("emp", "id"));
        let u = usage("DELETE FROM emp WHERE salary > 10");
        assert!(u.may_touch("emp", "salary"));
    }

    #[test]
    fn column_usage_sees_subqueries() {
        let u = usage("SELECT a FROM t WHERE x IN (SELECT salary FROM emp)");
        assert!(u.may_touch("emp", "salary"));
        let u = usage("INSERT INTO t SELECT salary FROM emp");
        assert!(u.may_touch("emp", "salary"));
    }
}
