//! Property-based tests: generated ASTs must survive `format → parse`
//! unchanged, and the analyzer must see every referenced table.

use proptest::prelude::*;
use sqlkit::ast::*;
use sqlkit::{analyze, format_statement, parse_statement};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a reserved word", |s| {
        !matches!(
            s.as_str(),
            "select"
                | "from"
                | "where"
                | "group"
                | "having"
                | "order"
                | "limit"
                | "offset"
                | "join"
                | "inner"
                | "left"
                | "cross"
                | "on"
                | "and"
                | "or"
                | "not"
                | "as"
                | "in"
                | "is"
                | "null"
                | "like"
                | "between"
                | "case"
                | "when"
                | "then"
                | "else"
                | "end"
                | "cast"
                | "true"
                | "false"
                | "insert"
                | "update"
                | "delete"
                | "set"
                | "values"
                | "into"
                | "create"
                | "drop"
                | "alter"
                | "table"
                | "index"
                | "begin"
                | "commit"
                | "rollback"
                | "grant"
                | "revoke"
                | "union"
                | "distinct"
                | "all"
                | "by"
                | "asc"
                | "desc"
                | "exists"
                | "if"
        )
    })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Bool),
        (-1_000_000i64..1_000_000).prop_map(Literal::Int),
        (-1.0e6f64..1.0e6).prop_map(Literal::Float),
        "[a-zA-Z0-9 '%_]{0,12}".prop_map(Literal::Str),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Literal),
        ident().prop_map(|c| Expr::Column(ColumnRef {
            table: None,
            column: c
        })),
        (ident(), ident()).prop_map(|(t, c)| Expr::Column(ColumnRef {
            table: Some(t),
            column: c
        })),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(l, r, op)| {
                let op = match op % 10 {
                    0 => BinaryOp::Or,
                    1 => BinaryOp::And,
                    2 => BinaryOp::Eq,
                    3 => BinaryOp::NotEq,
                    4 => BinaryOp::Lt,
                    5 => BinaryOp::Gt,
                    6 => BinaryOp::Add,
                    7 => BinaryOp::Sub,
                    8 => BinaryOp::Mul,
                    _ => BinaryOp::Concat,
                };
                Expr::binary(l, op, r)
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n
            }),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, n)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: n
                }),
            (ident(), prop::collection::vec(inner.clone(), 0..3)).prop_map(|(name, args)| {
                Expr::Function {
                    name,
                    args,
                    distinct: false,
                    star: false,
                }
            }),
            inner.prop_map(|e| Expr::Cast {
                expr: Box::new(e),
                ty: TypeName::Integer
            }),
        ]
    })
}

fn select() -> impl Strategy<Value = Select> {
    (
        ident(),
        prop::collection::vec((expr(), prop::option::of(ident())), 1..4),
        prop::option::of(expr()),
        prop::collection::vec(expr(), 0..3),
        prop::option::of((0u64..1000, 0u64..100)),
        any::<bool>(),
    )
        .prop_map(|(table, items, where_clause, group_by, lim, distinct)| {
            let mut s = Select::new();
            s.distinct = distinct;
            s.items = items
                .into_iter()
                .map(|(expr, alias)| SelectItem::Expr { expr, alias })
                .collect();
            s.from = Some(TableRef {
                name: table,
                alias: None,
            });
            s.where_clause = where_clause;
            s.group_by = group_by;
            if let Some((l, o)) = lim {
                s.limit = Some(l);
                s.offset = Some(o);
            }
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn select_roundtrips(s in select()) {
        let stmt = Statement::Select(s);
        let text = format_statement(&stmt);
        let reparsed = parse_statement(&text)
            .unwrap_or_else(|e| panic!("{text:?} failed to reparse: {e}"));
        prop_assert_eq!(reparsed, stmt);
    }

    #[test]
    fn expressions_roundtrip(e in expr()) {
        let stmt = Statement::Select(Select {
            items: vec![SelectItem::Expr { expr: e, alias: None }],
            ..Select::new()
        });
        let text = format_statement(&stmt);
        let reparsed = parse_statement(&text)
            .unwrap_or_else(|err| panic!("{text:?} failed to reparse: {err}"));
        prop_assert_eq!(reparsed, stmt);
    }

    #[test]
    fn insert_roundtrips(
        table in ident(),
        cols in prop::collection::vec(ident(), 0..4),
        rows in prop::collection::vec(prop::collection::vec(literal(), 1..4), 1..3),
    ) {
        // Ragged rows are legal to *parse*; pad to the first row's width for
        // a well-formed statement.
        let width = rows[0].len();
        let rows: Vec<Vec<Expr>> = rows
            .into_iter()
            .map(|r| {
                r.into_iter()
                    .map(Expr::Literal)
                    .chain(std::iter::repeat(Expr::int(0)))
                    .take(width)
                    .collect()
            })
            .collect();
        let cols = if cols.len() == width { cols } else { Vec::new() };
        let stmt = Statement::Insert(Insert {
            table,
            columns: cols,
            source: InsertSource::Values(rows),
        });
        let text = format_statement(&stmt);
        let reparsed = parse_statement(&text)
            .unwrap_or_else(|e| panic!("{text:?} failed to reparse: {e}"));
        prop_assert_eq!(reparsed, stmt);
    }

    #[test]
    fn update_and_delete_roundtrip(
        table in ident(),
        col in ident(),
        value in literal(),
        pred in prop::option::of(expr()),
    ) {
        let upd = Statement::Update(Update {
            table: table.clone(),
            assignments: vec![(col, Expr::Literal(value))],
            where_clause: pred.clone(),
        });
        let reparsed = parse_statement(&format_statement(&upd)).expect("update reparses");
        prop_assert_eq!(reparsed, upd);
        let del = Statement::Delete(Delete { table, where_clause: pred });
        let reparsed = parse_statement(&format_statement(&del)).expect("delete reparses");
        prop_assert_eq!(reparsed, del);
    }

    #[test]
    fn analyzer_sees_the_from_table(s in select()) {
        let name = s.from.as_ref().expect("generated with FROM").name.clone();
        let profile = analyze(&Statement::Select(s));
        prop_assert!(profile.reads.contains(&name));
        prop_assert!(profile.writes.is_empty());
    }

    #[test]
    fn parser_never_panics(text in "\\PC{0,60}") {
        let _ = parse_statement(&text);
    }

    #[test]
    fn lexer_never_panics(text in "\\PC{0,60}") {
        let _ = sqlkit::token::lex(&text);
    }
}
