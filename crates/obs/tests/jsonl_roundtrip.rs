//! JSONL round-trip: export a recorded snapshot, re-parse it with the same
//! JSON kit, rebuild the span tree, and compare against the in-memory sink.

use obs::{parse_jsonl, to_jsonl, validate_tree, AttrValue, Obs};

fn record_a_run(obs: &Obs) {
    let mut task = obs.span("task");
    task.attr("task", "t1");
    {
        let mut llm = obs.span("llm:call");
        llm.attr("tool", "select");
        {
            let mut tool = obs.span("tool:select");
            tool.attr("arg_bytes", 42u64);
            tool.attr("ok", true);
            {
                let mut sql = obs.span("sql:execute");
                sql.attr("action", "SELECT");
                sql.attr("plan.seq_scans", 1u64);
                sql.fail("simulated failure");
            }
        }
    }
    obs.incr("tool.calls", 3);
    obs.incr("tool.calls.select", 2);
    obs.observe_ns("tool.latency.select", 1_500);
    obs.observe_ns("tool.latency.select", 900_000);
}

#[test]
fn export_and_reparse_reproduces_the_snapshot_exactly() {
    let obs = Obs::in_memory();
    record_a_run(&obs);
    let original = obs.snapshot();
    validate_tree(&original.spans).unwrap();

    let jsonl = to_jsonl(&original);
    assert!(!jsonl.trim().is_empty());
    // One line per span plus one metrics line, each a standalone JSON object.
    assert_eq!(jsonl.trim().lines().count(), original.spans.len() + 1);
    for line in jsonl.trim().lines() {
        toolproto::Json::parse(line).expect("each line parses standalone");
    }

    let rebuilt = parse_jsonl(&jsonl).expect("exported trace re-parses");
    validate_tree(&rebuilt.spans).unwrap();
    assert_eq!(rebuilt.spans.len(), original.spans.len());
    for (a, b) in original.spans.iter().zip(rebuilt.spans.iter()) {
        assert_eq!(a, b, "span {} round-trips", a.name);
    }
    assert_eq!(
        rebuilt.metrics.counter("tool.calls"),
        original.metrics.counter("tool.calls")
    );
    assert_eq!(
        rebuilt.metrics.counter("tool.calls.select"),
        original.metrics.counter("tool.calls.select")
    );
    // Histograms round-trip bucket for bucket.
    let find = |snap: &obs::MetricsSnapshot| {
        snap.histograms
            .get("tool.latency.select")
            .cloned()
            .expect("histogram present")
    };
    assert_eq!(find(&original.metrics), find(&rebuilt.metrics));
}

#[test]
fn error_and_attr_payloads_survive_the_trip() {
    let obs = Obs::in_memory();
    record_a_run(&obs);
    let rebuilt = parse_jsonl(&to_jsonl(&obs.snapshot())).unwrap();

    let sql = rebuilt
        .spans
        .iter()
        .find(|sp| sp.name == "sql:execute")
        .unwrap();
    assert_eq!(sql.error.as_deref(), Some("simulated failure"));
    assert_eq!(sql.attr("action"), Some(&AttrValue::Str("SELECT".into())));
    assert_eq!(sql.attr("plan.seq_scans"), Some(&AttrValue::Int(1)));
    let tool = rebuilt
        .spans
        .iter()
        .find(|sp| sp.name == "tool:select")
        .unwrap();
    assert_eq!(tool.attr("ok"), Some(&AttrValue::Bool(true)));
}

#[test]
fn flush_writes_a_parseable_file() {
    let path = std::env::temp_dir().join(format!("obs-roundtrip-{}.jsonl", std::process::id()));
    let obs = Obs::jsonl(&path);
    record_a_run(&obs);
    let written = obs.flush().expect("flush succeeds").expect("path armed");
    assert_eq!(written, path);

    let text = std::fs::read_to_string(&path).unwrap();
    let rebuilt = parse_jsonl(&text).expect("file re-parses");
    validate_tree(&rebuilt.spans).unwrap();
    assert_eq!(rebuilt.spans.len(), obs.snapshot().spans.len());
    std::fs::remove_file(&path).ok();
}

#[test]
fn parser_skips_blank_and_unknown_lines_but_rejects_garbage() {
    let obs = Obs::in_memory();
    record_a_run(&obs);
    let mut jsonl = to_jsonl(&obs.snapshot());
    jsonl.push_str("\n\n{\"type\":\"future-extension\",\"x\":1}\n");
    let rebuilt = parse_jsonl(&jsonl).expect("unknown record types are skipped");
    assert_eq!(rebuilt.spans.len(), obs.snapshot().spans.len());

    let err = parse_jsonl("this is not json\n").unwrap_err();
    assert!(err.contains("line 1"), "error names the line: {err}");
}
