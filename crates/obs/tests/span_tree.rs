//! Span-tree integrity: nesting, cross-thread adoption, and the invariants
//! `validate_tree` enforces (unique ids, existing parents, interval
//! containment, acyclicity).

use obs::{validate_tree, Obs, SpanRecord};

#[test]
fn same_thread_nesting_builds_a_tree() {
    let obs = Obs::in_memory();
    {
        let root = obs.span("task");
        let root_id = root.id().unwrap();
        {
            let child = obs.span("llm:call");
            assert_ne!(child.id().unwrap(), root_id);
            {
                let grandchild = obs.span("tool:select");
                drop(grandchild);
            }
        }
    }
    let snap = obs.snapshot();
    validate_tree(&snap.spans).unwrap();
    assert_eq!(snap.spans.len(), 3);

    let by_name = |name: &str| snap.spans.iter().find(|sp| sp.name == name).unwrap();
    let task = by_name("task");
    let llm = by_name("llm:call");
    let tool = by_name("tool:select");
    assert_eq!(task.parent, None);
    assert_eq!(llm.parent, Some(task.id));
    assert_eq!(tool.parent, Some(llm.id));
    // Interval containment holds at every level.
    assert!(task.start_ns <= llm.start_ns && llm.end_ns <= task.end_ns);
    assert!(llm.start_ns <= tool.start_ns && tool.end_ns <= llm.end_ns);
}

#[test]
fn sibling_spans_share_a_parent() {
    let obs = Obs::in_memory();
    {
        let root = obs.span("task");
        for name in ["a", "b", "c"] {
            drop(obs.span(name));
        }
        drop(root);
    }
    let snap = obs.snapshot();
    validate_tree(&snap.spans).unwrap();
    let root_id = snap.spans.iter().find(|sp| sp.name == "task").unwrap().id;
    for name in ["a", "b", "c"] {
        let sp = snap.spans.iter().find(|sp| sp.name == name).unwrap();
        assert_eq!(sp.parent, Some(root_id), "sibling {name}");
    }
}

#[test]
fn adoption_parents_worker_thread_spans() {
    let obs = Obs::in_memory();
    {
        let root = obs.span("proxy:unit");
        let ctx = root.context();
        std::thread::scope(|scope| {
            for i in 0..4 {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _scope = obs::adopt_context(ctx);
                    let mut sp = obs.span("producer");
                    sp.attr("index", i as u64);
                });
            }
        });
        drop(root);
    }
    let snap = obs.snapshot();
    validate_tree(&snap.spans).unwrap();
    let root_id = snap
        .spans
        .iter()
        .find(|sp| sp.name == "proxy:unit")
        .unwrap()
        .id;
    let producers: Vec<&SpanRecord> = snap
        .spans
        .iter()
        .filter(|sp| sp.name == "producer")
        .collect();
    assert_eq!(producers.len(), 4);
    assert!(producers.iter().all(|sp| sp.parent == Some(root_id)));
}

#[test]
fn unadopted_thread_spans_become_roots() {
    let obs = Obs::in_memory();
    {
        let _root = obs.span("task");
        let worker_obs = obs.clone();
        std::thread::spawn(move || {
            drop(worker_obs.span("orphan"));
        })
        .join()
        .unwrap();
    }
    let snap = obs.snapshot();
    validate_tree(&snap.spans).unwrap();
    let orphan = snap.spans.iter().find(|sp| sp.name == "orphan").unwrap();
    assert_eq!(orphan.parent, None, "no adoption → new root, not a child");
}

#[test]
fn validate_tree_rejects_broken_shapes() {
    let span = |id: u64, parent: Option<u64>, start: u64, end: u64| SpanRecord {
        id,
        parent,
        trace: None,
        name: format!("s{id}"),
        start_ns: start,
        end_ns: end,
        error: None,
        attrs: Vec::new(),
    };
    // Duplicate ids.
    assert!(validate_tree(&[span(1, None, 0, 10), span(1, None, 0, 5)]).is_err());
    // Parent that does not exist.
    assert!(validate_tree(&[span(1, Some(99), 0, 10)]).is_err());
    // Child interval escaping its parent.
    assert!(validate_tree(&[span(1, None, 0, 10), span(2, Some(1), 5, 20)]).is_err());
    // A cycle.
    assert!(validate_tree(&[span(1, Some(2), 0, 10), span(2, Some(1), 0, 10)]).is_err());
    // And a well-formed pair passes.
    validate_tree(&[span(1, None, 0, 10), span(2, Some(1), 2, 8)]).unwrap();
}

#[test]
fn disabled_handle_records_nothing_and_costs_no_ids() {
    let obs = Obs::disabled();
    {
        let mut sp = obs.span("task");
        assert!(!sp.enabled());
        assert_eq!(sp.id(), None);
        sp.attr("ignored", 1u64);
        sp.fail("ignored");
    }
    obs.incr("counter", 5);
    obs.observe_ns("latency", 100);
    let snap = obs.snapshot();
    assert!(snap.spans.is_empty());
    assert_eq!(snap.metrics.counter("counter"), 0);
}
