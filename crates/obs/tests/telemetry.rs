//! Telemetry-plane integration tests: labeled metrics under concurrency,
//! gauge lifecycle, flight-recorder ring semantics, and a golden test for
//! the Prometheus exposition format.

use obs::metrics::MetricsRegistry;
use obs::{FlightConfig, Obs, ObsConfig};
use std::time::Duration;

#[test]
fn labeled_counters_are_exact_under_concurrency() {
    let obs = Obs::in_memory();
    const THREADS: usize = 8;
    const INCRS: u64 = 1_000;
    let labels: [&[(&str, &str)]; 3] = [
        &[("tool", "select"), ("outcome", "ok")],
        &[("tool", "select"), ("outcome", "denied")],
        &[("tool", "update"), ("outcome", "ok")],
    ];
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let obs = obs.clone();
            s.spawn(move || {
                for i in 0..INCRS {
                    let set = labels[(i % 3) as usize];
                    obs.incr_with("tool.calls", set, 1);
                    obs.incr("tool.calls", 1);
                    obs.observe_ns_with("tool.latency", &[("tool", set[0].1)], 1_000 * i);
                }
            });
        }
    });
    let m = obs.snapshot().metrics;
    // 1000 iterations cycle i%3: 334 hits for remainder 0, 333 for 1 and 2.
    let per_thread = [334, 333, 333];
    for (set, expect) in labels.iter().zip(per_thread) {
        assert_eq!(
            m.labeled_counter("tool.calls", set),
            expect * THREADS as u64,
            "{set:?}"
        );
    }
    // Label order must not matter: lookups are canonicalized.
    assert_eq!(
        m.labeled_counter("tool.calls", &[("outcome", "ok"), ("tool", "select")]),
        334 * THREADS as u64
    );
    // The unlabeled counter of the same name is a distinct series.
    assert_eq!(m.counter("tool.calls"), THREADS as u64 * INCRS);
    // Histogram counts add up across both tools.
    let total: u64 = m
        .labeled_histograms
        .iter()
        .filter(|h| h.name == "tool.latency")
        .map(|h| h.histogram.count)
        .sum();
    assert_eq!(total, THREADS as u64 * INCRS);
}

#[test]
fn gauges_register_sample_and_unregister() {
    let obs = Obs::in_memory();
    let id = obs
        .register_gauge("pool.size", &[("kind", "worker")], || 7.0)
        .expect("enabled handle registers gauges");
    let m = obs.snapshot().metrics;
    assert_eq!(m.gauge("pool.size", &[("kind", "worker")]), Some(7.0));
    // An enabled handle always samples process uptime.
    assert!(m.gauge("process.uptime_seconds", &[]).is_some());

    assert!(obs.unregister_gauge(id));
    assert!(!obs.unregister_gauge(id), "double unregister is a no-op");
    let m = obs.snapshot().metrics;
    assert_eq!(m.gauge("pool.size", &[("kind", "worker")]), None);

    // Disabled handles ignore the whole surface.
    let off = Obs::disabled();
    assert!(off.register_gauge("x", &[], || 1.0).is_none());
    off.incr_with("x", &[("a", "b")], 1);
    assert_eq!(
        off.snapshot().metrics.labeled_counter("x", &[("a", "b")]),
        0
    );
}

#[test]
fn flight_ring_wraps_and_respects_threshold_and_prefixes() {
    let config = FlightConfig {
        threshold_ns: 1_000_000, // 1ms
        ring_capacity: 4,
        ..FlightConfig::default()
    };
    let obs = Obs::with_flight(&ObsConfig::InMemory, config);
    assert!(obs.flight_enabled());
    assert_eq!(obs.flight_threshold_ns(), Some(1_000_000));

    // Six slow trigger spans: the 4-slot ring keeps only the last four.
    for i in 0..6 {
        let span = obs.span(&format!("tool:slow{i}"));
        std::thread::sleep(Duration::from_millis(3));
        drop(span);
    }
    // Fast trigger span: below threshold, not captured.
    drop(obs.span("tool:fast"));
    // Slow non-trigger span: prefix doesn't match, not captured.
    let span = obs.span("db:background");
    std::thread::sleep(Duration::from_millis(3));
    drop(span);

    let calls = obs.slow_calls();
    assert_eq!(calls.len(), 4, "ring holds exactly its capacity");
    let names: Vec<&str> = calls.iter().map(|c| c.root.name.as_str()).collect();
    assert_eq!(
        names,
        ["tool:slow2", "tool:slow3", "tool:slow4", "tool:slow5"]
    );
    for pair in calls.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "captures stay in order");
    }
    assert!(calls.iter().all(|c| c.duration_ns() >= 1_000_000));
    let metrics = obs.snapshot().metrics;
    assert_eq!(
        metrics.counter("obs.slow_calls.captured"),
        6,
        "wraparound drops entries but the captured counter keeps counting"
    );
    // Ring truncation is never silent: the two captures the 4-slot ring
    // pushed out are counted, and occupancy is observable as a gauge.
    assert_eq!(metrics.counter("obs.flight.dropped_total"), 2);
    assert_eq!(metrics.gauge("obs.flight.ring_occupancy", &[]), Some(4.0));

    // A slow call keeps its full span tree, children included.
    let parent = obs.span("wire:call deep");
    {
        let _child = obs.span("tool:inner");
        std::thread::sleep(Duration::from_millis(3));
    }
    drop(parent);
    let calls = obs.slow_calls();
    let last = calls.last().unwrap();
    assert_eq!(last.root.name, "wire:call deep");
    assert!(
        last.spans.iter().any(|s| s.name == "tool:inner"),
        "{last:?}"
    );
}

#[test]
fn golden_prometheus_exposition() {
    let m = MetricsRegistry::new();
    m.incr("req.count", 2);
    m.incr_with("req.count", &[("q", "a\"b\\c\nd")], 1);
    m.register_gauge("pool.size", &[], || 3.0);
    m.observe_ns("lat", 500); // first bucket
    m.observe_ns("lat", 2_000_000_000); // overflow bucket

    let text = obs::prom::render(&m.snapshot());
    let expected = "\
# TYPE req_count_total counter
req_count_total 2
req_count_total{q=\"a\\\"b\\\\c\\nd\"} 1
# TYPE pool_size gauge
pool_size 3
# TYPE lat histogram
lat_bucket{le=\"0.000001\"} 1
lat_bucket{le=\"0.000005\"} 1
lat_bucket{le=\"0.00001\"} 1
lat_bucket{le=\"0.00005\"} 1
lat_bucket{le=\"0.0001\"} 1
lat_bucket{le=\"0.0005\"} 1
lat_bucket{le=\"0.001\"} 1
lat_bucket{le=\"0.005\"} 1
lat_bucket{le=\"0.01\"} 1
lat_bucket{le=\"0.05\"} 1
lat_bucket{le=\"0.1\"} 1
lat_bucket{le=\"0.5\"} 1
lat_bucket{le=\"1\"} 1
lat_bucket{le=\"+Inf\"} 2
lat_sum 2.0000005
lat_count 2
";
    assert_eq!(text, expected);

    // Rendering is deterministic: a second render is byte-identical.
    assert_eq!(obs::prom::render(&m.snapshot()), text);
}
