//! In-flight call registry: what is the server doing *right now*.
//!
//! Metrics and flight captures only describe completed work; a hung or
//! runaway call is invisible in both until it finishes. This registry
//! tracks every live wire call — trace id, user, tool, start time, and the
//! SQL statement it is currently executing — so the admin `/queries`
//! endpoint can answer the operator's first incident question ("who is
//! running what, and for how long") while the call is still in flight.
//!
//! Entries are registered by the wire dispatcher via a RAII guard (dropped
//! on any exit path, so a panicking tool cannot leak an entry) and
//! annotated mid-flight by the SQL layer, which finds its own entry through
//! the ambient trace id.

use crate::trace::TraceId;
use std::collections::BTreeMap;
use std::sync::Mutex;
use toolproto::Json;

/// One live call, as reported by [`InflightRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InflightCall {
    /// Registration token (ordering key; unique within one registry).
    pub token: u64,
    /// Trace the call belongs to.
    pub trace: Option<TraceId>,
    /// Authenticated user running the call.
    pub user: String,
    /// Tool being dispatched.
    pub tool: String,
    /// Start time in nanoseconds since the obs epoch.
    pub start_ns: u64,
    /// The SQL statement currently executing, once known.
    pub statement: Option<String>,
}

/// The registry itself. Concurrency-safe; one lives inside every enabled
/// [`crate::Obs`] handle.
#[derive(Debug, Default)]
pub struct InflightRegistry {
    inner: Mutex<BTreeMap<u64, InflightCall>>,
}

impl InflightRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        InflightRegistry::default()
    }

    /// Register a call; the caller removes it with [`InflightRegistry::end`]
    /// (normally via the RAII guard in `crate::Obs::begin_call`).
    pub fn begin(&self, token: u64, trace: Option<TraceId>, user: &str, tool: &str, start_ns: u64) {
        self.inner.lock().expect("inflight lock").insert(
            token,
            InflightCall {
                token,
                trace,
                user: user.to_owned(),
                tool: tool.to_owned(),
                start_ns,
                statement: None,
            },
        );
    }

    /// Attach the currently executing statement to the live call(s) on
    /// `trace`. Lookup is by trace because the SQL layer knows its ambient
    /// trace id but not the wire dispatcher's registration token.
    pub fn note_statement(&self, trace: TraceId, statement: &str) {
        let mut inner = self.inner.lock().expect("inflight lock");
        for call in inner.values_mut() {
            if call.trace == Some(trace) {
                call.statement = Some(statement.to_owned());
            }
        }
    }

    /// Remove a finished call.
    pub fn end(&self, token: u64) {
        self.inner.lock().expect("inflight lock").remove(&token);
    }

    /// Live calls, oldest registration first.
    pub fn snapshot(&self) -> Vec<InflightCall> {
        self.inner
            .lock()
            .expect("inflight lock")
            .values()
            .cloned()
            .collect()
    }

    /// Number of live calls.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("inflight lock").len()
    }

    /// Whether no calls are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// JSON form served by the admin `/queries` endpoint. `now_ns` (the
    /// obs clock) turns start times into elapsed durations.
    pub fn to_json(&self, now_ns: u64) -> Json {
        let queries = Json::array(self.snapshot().into_iter().map(|c| {
            Json::object([
                (
                    "trace",
                    c.trace
                        .map(|t| Json::str(t.to_string()))
                        .unwrap_or(Json::Null),
                ),
                ("user", Json::str(c.user)),
                ("tool", Json::str(c.tool)),
                (
                    "elapsed_ns",
                    Json::num(now_ns.saturating_sub(c.start_ns) as f64),
                ),
                (
                    "statement",
                    c.statement.map(Json::str).unwrap_or(Json::Null),
                ),
            ])
        }));
        Json::object([
            ("queries", queries),
            ("in_flight", Json::num(self.len() as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_note_end_lifecycle() {
        let reg = InflightRegistry::new();
        let trace = TraceId::from_u128(5).unwrap();
        reg.begin(1, Some(trace), "alice", "select", 100);
        reg.begin(2, None, "bob", "insert", 200);
        assert_eq!(reg.len(), 2);
        reg.note_statement(trace, "SELECT * FROM t");
        let snap = reg.snapshot();
        assert_eq!(snap[0].statement.as_deref(), Some("SELECT * FROM t"));
        assert_eq!(snap[1].statement, None);
        reg.end(1);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.snapshot()[0].user, "bob");
        reg.end(2);
        assert!(reg.is_empty());
    }

    #[test]
    fn json_reports_elapsed_and_count() {
        let reg = InflightRegistry::new();
        let trace = TraceId::from_u128(5).unwrap();
        reg.begin(1, Some(trace), "alice", "select", 1_000);
        let json = reg.to_json(5_000);
        assert_eq!(json.get("in_flight").and_then(Json::as_i64), Some(1));
        let rows = json.get("queries").and_then(Json::as_array).unwrap();
        assert_eq!(
            rows[0].get("elapsed_ns").and_then(Json::as_i64),
            Some(4_000)
        );
        assert_eq!(
            rows[0].get("trace").and_then(Json::as_str),
            Some(trace.to_string().as_str())
        );
        assert_eq!(rows[0].get("statement"), Some(&Json::Null));
    }
}
