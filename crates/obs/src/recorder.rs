//! Span sinks: where finished spans go.
//!
//! The default sink is [`ShardedSink`], which spreads contention across
//! several small mutexed vectors keyed by span id — concurrent producer
//! threads closing spans rarely touch the same shard.

use crate::span::SpanRecord;
use std::sync::Mutex;

/// Receives finished spans. Implementations must tolerate concurrent calls.
pub trait Recorder: Send + Sync {
    /// Store one finished span.
    fn record(&self, span: SpanRecord);
}

/// Number of independent shards in a [`ShardedSink`].
pub const SHARD_COUNT: usize = 16;

/// An in-memory span sink sharded by span id to reduce lock contention.
#[derive(Debug)]
pub struct ShardedSink {
    shards: Vec<Mutex<Vec<SpanRecord>>>,
}

impl Default for ShardedSink {
    fn default() -> Self {
        ShardedSink {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }
}

impl ShardedSink {
    /// An empty sink.
    pub fn new() -> Self {
        ShardedSink::default()
    }

    /// Total number of stored spans.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("sink lock").len())
            .sum()
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All recorded spans, merged and sorted by `(start_ns, id)` so parents
    /// precede their children deterministically.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend(shard.lock().expect("sink lock").iter().cloned());
        }
        out.sort_by_key(|s| (s.start_ns, s.id));
        out
    }
}

impl Recorder for ShardedSink {
    fn record(&self, span: SpanRecord) {
        let idx = (span.id as usize) % SHARD_COUNT;
        self.shards[idx].lock().expect("sink lock").push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, start: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: None,
            trace: None,
            name: format!("s{id}"),
            start_ns: start,
            end_ns: start + 1,
            error: None,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let sink = ShardedSink::new();
        assert!(sink.is_empty());
        for id in (1..=40).rev() {
            sink.record(rec(id, 1000 - id));
        }
        assert_eq!(sink.len(), 40);
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 40);
        assert!(snap
            .windows(2)
            .all(|w| (w[0].start_ns, w[0].id) <= (w[1].start_ns, w[1].id)));
    }

    #[test]
    fn concurrent_recording_keeps_every_span() {
        let sink = ShardedSink::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        sink.record(rec(t * 100 + i + 1, i));
                    }
                });
            }
        });
        assert_eq!(sink.len(), 800);
    }
}
