//! Structured observability kernel for the BridgeScope reproduction.
//!
//! Everything that happens between the simulated agent and the database —
//! tool dispatch, privilege checks, SQL execution, transaction control,
//! proxy data movement, executor plan choices — is invisible unless it is
//! recorded somewhere. This crate is that somewhere: a std-only (offline
//! build policy; the sole dependency is `toolproto` for its JSON type)
//! kernel of
//!
//! * hierarchical [spans](span::SpanRecord) with ids, parents, attributes,
//!   and monotonic nanosecond timings,
//! * a [`MetricsRegistry`](metrics::MetricsRegistry) of named counters and
//!   fixed-bucket latency histograms,
//! * a [`Recorder`](recorder::Recorder) trait with a sharded in-memory sink,
//! * a [JSONL exporter](export) (one event per line, `toolproto::Json`
//!   syntax) with a matching parser, and
//! * a [summary table renderer](summary) for human-readable per-run reports.
//!
//! The entry point is [`Obs`]: a cheap clonable handle that is either
//! enabled (shared sink + metrics) or disabled. Disabled handles make every
//! call a no-op on an `Option` check, so instrumented code paths cost
//! effectively nothing when observability is off.
//!
//! ```
//! let obs = obs::Obs::in_memory();
//! {
//!     let mut task = obs.span("task");
//!     task.attr("id", "t1");
//!     let llm = obs.span("llm:call");
//!     drop(llm);
//!     obs.incr("llm.calls", 1);
//! }
//! let snap = obs.snapshot();
//! assert_eq!(snap.spans.len(), 2);
//! assert_eq!(snap.spans[1].parent, Some(snap.spans[0].id));
//! assert_eq!(snap.metrics.counter("llm.calls"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod inflight;
pub mod metrics;
pub mod observer;
pub mod prom;
pub mod recorder;
pub mod span;
pub mod stmt;
pub mod summary;
pub mod trace;

pub use export::{parse_jsonl, to_jsonl};
pub use flight::{
    CaptureReason, FlightConfig, FlightRecorder, OfferOutcome, SlowCall, SAMPLED_ATTR,
};
pub use inflight::{InflightCall, InflightRegistry};
pub use metrics::{
    canonical_labels, GaugeId, GaugeSample, Histogram, HistogramSnapshot, LabelSet, LabeledCounter,
    LabeledHistogram, MetricsRegistry, MetricsSnapshot,
};
pub use observer::RegistryObserver;
pub use recorder::{Recorder, ShardedSink};
pub use span::{
    adopt, adopt_context, current_context, current_parent, current_trace, validate_tree, AttrValue,
    ParentScope, SpanContext, SpanGuard, SpanRecord,
};
pub use stmt::{StatementEntry, StatementOutcome, StatementStats, StatementStore};
pub use trace::{next_span_id, next_trace_id, seed_ids, SpanId, TraceContext, TraceId};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a server or harness should record observability data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ObsConfig {
    /// Record nothing; instrumentation is a no-op.
    #[default]
    Off,
    /// Record spans and metrics in memory; read them via [`Obs::snapshot`].
    InMemory,
    /// Record in memory and write a JSONL trace to this path on
    /// [`Obs::flush`].
    Jsonl(PathBuf),
}

pub(crate) struct ObsInner {
    epoch: Instant,
    next_id: AtomicU64,
    metrics: MetricsRegistry,
    sink: ShardedSink,
    jsonl_path: Option<PathBuf>,
    /// `Arc` so pull-model gauges (ring occupancy) can sample the recorder
    /// without holding the whole handle alive through `self`.
    flight: Option<Arc<FlightRecorder>>,
    statements: Arc<StatementStore>,
    inflight: Arc<InflightRegistry>,
}

/// Distinct `(user, normalized statement)` keys retained by the statement
/// store before LRU eviction kicks in.
const STATEMENT_STORE_CAPACITY: usize = 512;

impl ObsInner {
    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn record(&self, span: SpanRecord) {
        use recorder::Recorder as _;
        if let Some(flight) = &self.flight {
            let outcome = flight.offer(span.clone());
            if outcome.captured.is_some() {
                self.metrics.incr("obs.slow_calls.captured", 1);
            }
            if outcome.ring_evicted {
                self.metrics.incr("obs.flight.dropped_total", 1);
            }
            if outcome.pending_dropped > 0 {
                self.metrics
                    .incr("obs.flight.pending_dropped_total", outcome.pending_dropped);
            }
        }
        self.sink.record(span);
    }
}

/// Everything an enabled [`Obs`] handle has collected so far.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Finished spans sorted by `(start_ns, id)`.
    pub spans: Vec<SpanRecord>,
    /// Counter and histogram values.
    pub metrics: MetricsSnapshot,
}

/// Handle to one observability domain: a shared span sink, id generator,
/// monotonic epoch, and metrics registry. Clones share state; a disabled
/// handle (the default) records nothing.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A handle that records nothing; every operation is a no-op.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    fn enabled_with(jsonl_path: Option<PathBuf>, flight: Option<FlightConfig>) -> Self {
        let epoch = Instant::now();
        let metrics = MetricsRegistry::new();
        // Process uptime as a gauge: the epoch Instant is captured by value,
        // so the sampler stays valid for the life of the registry.
        metrics.register_gauge("process.uptime_seconds", &[], move || {
            epoch.elapsed().as_secs_f64()
        });
        let flight = flight.map(|config| Arc::new(FlightRecorder::new(config)));
        if let Some(recorder) = &flight {
            // Samplers capture their own Arc so occupancy stays readable
            // for as long as the registry lives.
            let ring = Arc::clone(recorder);
            metrics.register_gauge("obs.flight.ring_occupancy", &[], move || {
                ring.ring_len() as f64
            });
        }
        let statements = Arc::new(StatementStore::new(STATEMENT_STORE_CAPACITY));
        let store = Arc::clone(&statements);
        metrics.register_gauge("obs.statements.entries", &[], move || store.len() as f64);
        let inflight = Arc::new(InflightRegistry::new());
        let live = Arc::clone(&inflight);
        metrics.register_gauge("obs.queries.in_flight", &[], move || live.len() as f64);
        Obs {
            inner: Some(Arc::new(ObsInner {
                epoch,
                next_id: AtomicU64::new(1),
                metrics,
                sink: ShardedSink::new(),
                jsonl_path,
                flight,
                statements,
                inflight,
            })),
        }
    }

    /// An enabled handle recording into memory only.
    pub fn in_memory() -> Self {
        Obs::enabled_with(None, None)
    }

    /// An enabled handle that additionally writes a JSONL trace to `path`
    /// when [`Obs::flush`] is called.
    pub fn jsonl(path: impl Into<PathBuf>) -> Self {
        Obs::enabled_with(Some(path.into()), None)
    }

    /// Build a handle from a configuration value.
    pub fn from_config(config: &ObsConfig) -> Self {
        match config {
            ObsConfig::Off => Obs::disabled(),
            ObsConfig::InMemory => Obs::in_memory(),
            ObsConfig::Jsonl(path) => Obs::jsonl(path.clone()),
        }
    }

    /// Build a handle from a configuration value with a slow-call flight
    /// recorder attached (ignored when the config is [`ObsConfig::Off`]).
    pub fn with_flight(config: &ObsConfig, flight: FlightConfig) -> Self {
        match config {
            ObsConfig::Off => Obs::disabled(),
            ObsConfig::InMemory => Obs::enabled_with(None, Some(flight)),
            ObsConfig::Jsonl(path) => Obs::enabled_with(Some(path.clone()), Some(flight)),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span named `name`. It becomes a child of the innermost span
    /// currently open on this thread and is recorded when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::disabled(),
            Some(inner) => SpanGuard::open(Arc::clone(inner), name),
        }
    }

    /// Add `by` to the counter `name` (no-op when disabled).
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.incr(name, by);
        }
    }

    /// Record a latency observation in the histogram `name`.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe_ns(name, ns);
        }
    }

    /// Add `by` to the labeled counter series `name{labels}` (no-op when
    /// disabled). Labels must be low-cardinality; see the metrics docs.
    pub fn incr_with(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.incr_with(name, labels, by);
        }
    }

    /// Record a latency observation in the labeled histogram series
    /// `name{labels}` (no-op when disabled).
    pub fn observe_ns_with(&self, name: &str, labels: &[(&str, &str)], ns: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe_ns_with(name, labels, ns);
        }
    }

    /// Register a gauge sampler on this handle's metrics registry. Returns
    /// `None` when disabled.
    pub fn register_gauge(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        sampler: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> Option<GaugeId> {
        self.inner
            .as_ref()
            .map(|inner| inner.metrics.register_gauge(name, labels, sampler))
    }

    /// Register a gauge sampler keyed on `(name, labels)`: re-registering
    /// the same series replaces the sampler in place instead of adding a
    /// duplicate. Use for samplers re-registered per session/server build
    /// (e.g. per-user cache gauges) together with the `Weak`-and-`NaN`
    /// idiom for samplers that can outlive their subject. Returns `None`
    /// when disabled.
    pub fn register_gauge_keyed(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        sampler: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> Option<GaugeId> {
        self.inner
            .as_ref()
            .map(|inner| inner.metrics.register_gauge_keyed(name, labels, sampler))
    }

    /// Remove a previously registered gauge sampler.
    pub fn unregister_gauge(&self, id: GaugeId) -> bool {
        self.inner
            .as_ref()
            .map(|inner| inner.metrics.unregister_gauge(id))
            .unwrap_or(false)
    }

    /// Whether a flight recorder is attached to this handle.
    pub fn flight_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .map(|inner| inner.flight.is_some())
            .unwrap_or(false)
    }

    /// The flight recorder's slow threshold in nanoseconds, if attached.
    pub fn flight_threshold_ns(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.flight.as_ref())
            .map(|flight| flight.threshold_ns())
    }

    /// Captured slow calls, oldest first (empty when disabled or no flight
    /// recorder is attached).
    pub fn slow_calls(&self) -> Vec<SlowCall> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.flight.as_ref())
            .map(|flight| flight.slow_calls())
            .unwrap_or_default()
    }

    /// The newest captured call for `trace`, if the flight recorder
    /// retained one.
    pub fn slow_call_by_trace(&self, trace: TraceId) -> Option<SlowCall> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.flight.as_ref())
            .and_then(|flight| flight.slow_call_by_trace(trace))
    }

    /// Whether `user`'s next call should be explicitly retained by the
    /// flight recorder (tail-based sampling). Always `false` when disabled
    /// or no flight recorder is attached.
    pub fn should_sample(&self, user: &str) -> bool {
        self.inner
            .as_ref()
            .and_then(|inner| inner.flight.as_ref())
            .map(|flight| flight.should_sample(user))
            .unwrap_or(false)
    }

    /// Record one executed statement into the statement statistics store
    /// (no-op when disabled). `statement` must already be normalized —
    /// callers use the gate's token normalizer, which erases whitespace
    /// and formatting variance so one statement shape is one key.
    pub fn record_statement(
        &self,
        user: &str,
        statement: &str,
        latency_ns: u64,
        rows: u64,
        cache_hit: bool,
        outcome: StatementOutcome,
    ) {
        if let Some(inner) = &self.inner {
            inner
                .statements
                .record(user, statement, latency_ns, rows, cache_hit, outcome);
            inner.metrics.incr_with(
                "stmt.calls",
                &[
                    ("user", user),
                    (
                        "outcome",
                        match outcome {
                            StatementOutcome::Ok => "ok",
                            StatementOutcome::Conflict => "conflict",
                            StatementOutcome::Denied => "denied",
                            StatementOutcome::Error => "error",
                        },
                    ),
                ],
                1,
            );
            inner
                .metrics
                .observe_ns_with("stmt.latency", &[("user", user)], latency_ns);
        }
    }

    /// Per-(user, statement) aggregates, sorted by total time descending
    /// (empty when disabled).
    pub fn statements_snapshot(&self) -> Vec<StatementEntry> {
        self.inner
            .as_ref()
            .map(|inner| inner.statements.snapshot())
            .unwrap_or_default()
    }

    /// The statement store's JSON form (admin `/statements`); `None` when
    /// disabled.
    pub fn statements_json(&self) -> Option<toolproto::Json> {
        self.inner.as_ref().map(|inner| inner.statements.to_json())
    }

    /// Keys evicted from the statement store since creation.
    pub fn statements_evicted_total(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.statements.evicted_total())
            .unwrap_or(0)
    }

    /// Register a live call in the in-flight registry, picking up the
    /// ambient trace id. The call stays listed (admin `/queries`) until the
    /// returned guard drops — on *any* exit path, so a panicking tool can't
    /// leak an entry. Call after opening the dispatch span so the trace id
    /// is in scope.
    pub fn begin_call(&self, user: &str, tool: &str) -> CallGuard {
        match &self.inner {
            None => CallGuard(None),
            Some(inner) => {
                let token = inner.next_span_id();
                inner
                    .inflight
                    .begin(token, current_trace(), user, tool, inner.now_ns());
                CallGuard(Some((Arc::clone(inner), token)))
            }
        }
    }

    /// Attach the currently executing statement to this thread's live call
    /// (matched through the ambient trace id; no-op when disabled or no
    /// call is registered).
    pub fn note_statement(&self, statement: &str) {
        if let (Some(inner), Some(trace)) = (&self.inner, current_trace()) {
            inner.inflight.note_statement(trace, statement);
        }
    }

    /// Live calls, oldest first (empty when disabled).
    pub fn inflight(&self) -> Vec<InflightCall> {
        self.inner
            .as_ref()
            .map(|inner| inner.inflight.snapshot())
            .unwrap_or_default()
    }

    /// The in-flight registry's JSON form (admin `/queries`); `None` when
    /// disabled.
    pub fn inflight_json(&self) -> Option<toolproto::Json> {
        self.inner
            .as_ref()
            .map(|inner| inner.inflight.to_json(inner.now_ns()))
    }

    /// Nanoseconds since this handle was created (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map(|i| i.now_ns()).unwrap_or(0)
    }

    /// A point-in-time copy of all spans and metrics (empty when disabled).
    pub fn snapshot(&self) -> ObsSnapshot {
        match &self.inner {
            None => ObsSnapshot {
                spans: Vec::new(),
                metrics: MetricsSnapshot::default(),
            },
            Some(inner) => ObsSnapshot {
                spans: inner.sink.snapshot(),
                metrics: inner.metrics.snapshot(),
            },
        }
    }

    /// Serialize the current snapshot as JSONL (empty string when
    /// disabled). Captured slow calls, if any, are appended as
    /// `{"type":"slow_call",…}` lines after the snapshot events; the
    /// parser skips unknown types, so older readers ignore them.
    pub fn export_jsonl(&self) -> String {
        if !self.is_enabled() {
            return String::new();
        }
        let mut out = export::to_jsonl(&self.snapshot());
        for call in self.slow_calls() {
            out.push_str(&call.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// The JSONL output path configured for this handle, if any.
    pub fn jsonl_path(&self) -> Option<&Path> {
        self.inner.as_ref().and_then(|i| i.jsonl_path.as_deref())
    }

    /// Write the JSONL trace to the configured path, returning the path
    /// written. `Ok(None)` when disabled or no path was configured.
    pub fn flush(&self) -> std::io::Result<Option<PathBuf>> {
        let Some(path) = self.jsonl_path().map(Path::to_path_buf) else {
            return Ok(None);
        };
        std::fs::write(&path, self.export_jsonl())?;
        Ok(Some(path))
    }

    /// An observer suitable for `toolproto::Registry::set_observer`, or
    /// `None` when disabled (so disabled servers attach no observer at all).
    pub fn registry_observer(&self) -> Option<Arc<RegistryObserver>> {
        if self.is_enabled() {
            Some(Arc::new(RegistryObserver::new(self.clone())))
        } else {
            None
        }
    }

    /// Start a background thread that calls [`Obs::flush`] every
    /// `interval`, so a killed process loses at most one interval of trace
    /// data instead of the whole run. Returns `None` when the handle is
    /// disabled or has no JSONL path. Dropping the handle stops the thread
    /// and performs one final flush.
    pub fn start_flusher(&self, interval: Duration) -> Option<FlushHandle> {
        self.jsonl_path()?;
        let obs = self.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("obs-flusher".to_owned())
            .spawn(move || {
                // Poll the stop flag at a finer grain than the flush
                // interval so shutdown is prompt even for long intervals.
                let tick = interval
                    .min(Duration::from_millis(50))
                    .max(Duration::from_millis(1));
                let mut elapsed = Duration::ZERO;
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    elapsed += tick;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        let _ = obs.flush();
                    }
                }
            })
            .ok()?;
        Some(FlushHandle {
            obs: self.clone(),
            stop,
            thread: Some(thread),
        })
    }
}

/// Guard returned by [`Obs::begin_call`]; removes the call from the
/// in-flight registry when dropped.
#[must_use = "the call stays listed as in-flight until the guard drops"]
pub struct CallGuard(Option<(Arc<ObsInner>, u64)>);

impl Drop for CallGuard {
    fn drop(&mut self) {
        if let Some((inner, token)) = self.0.take() {
            inner.inflight.end(token);
        }
    }
}

impl std::fmt::Debug for CallGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("CallGuard(disabled)"),
            Some((_, token)) => f.debug_tuple("CallGuard").field(token).finish(),
        }
    }
}

/// Guard for the periodic JSONL flusher started by [`Obs::start_flusher`].
/// Dropping it stops the background thread and flushes one last time.
#[derive(Debug)]
pub struct FlushHandle {
    obs: Obs,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl FlushHandle {
    /// Stop the flusher thread and write a final flush. Idempotent; also
    /// runs on drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
            let _ = self.obs.flush();
        }
    }
}

impl Drop for FlushHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("jsonl_path", &self.jsonl_path())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        let mut span = obs.span("x");
        span.attr("k", 1i64);
        span.fail("nope");
        assert!(!span.enabled());
        assert_eq!(span.id(), None);
        drop(span);
        obs.incr("c", 1);
        obs.observe_ns("h", 10);
        let snap = obs.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.metrics.counters.is_empty());
        assert_eq!(obs.export_jsonl(), "");
        assert!(obs.flush().unwrap().is_none());
        assert!(obs.registry_observer().is_none());
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::in_memory();
        let clone = obs.clone();
        drop(clone.span("a"));
        obs.incr("n", 2);
        let snap = clone.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.metrics.counter("n"), 2);
    }

    #[test]
    fn from_config_matches_variants() {
        assert!(!Obs::from_config(&ObsConfig::Off).is_enabled());
        assert!(Obs::from_config(&ObsConfig::InMemory).is_enabled());
        let obs = Obs::from_config(&ObsConfig::Jsonl(PathBuf::from("/tmp/t.jsonl")));
        assert_eq!(obs.jsonl_path(), Some(Path::new("/tmp/t.jsonl")));
    }

    #[test]
    fn flight_recorder_captures_and_exports_slow_calls() {
        let obs = Obs::with_flight(&ObsConfig::InMemory, FlightConfig::with_threshold_ns(1));
        {
            let _call = obs.span("tool:select");
            let _child = obs.span("sql:execute");
            std::thread::sleep(Duration::from_millis(2));
        }
        let calls = obs.slow_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].root.name, "tool:select");
        assert_eq!(calls[0].spans.len(), 2);
        assert_eq!(obs.snapshot().metrics.counter("obs.slow_calls.captured"), 1);
        assert!(obs.export_jsonl().contains("\"type\":\"slow_call\""));
    }

    #[test]
    fn uptime_gauge_is_registered_and_passthroughs_work() {
        let obs = Obs::in_memory();
        obs.incr_with("tool.calls", &[("tool", "select"), ("outcome", "ok")], 3);
        obs.observe_ns_with("tool.latency", &[("tool", "select")], 1_000);
        let id = obs.register_gauge("queue.depth", &[], || 7.0).unwrap();
        let snap = obs.snapshot().metrics;
        assert!(snap.gauge("process.uptime_seconds", &[]).is_some());
        assert_eq!(snap.gauge("queue.depth", &[]), Some(7.0));
        assert_eq!(
            snap.labeled_counter("tool.calls", &[("outcome", "ok"), ("tool", "select")]),
            3
        );
        assert!(obs.unregister_gauge(id));
        assert_eq!(obs.snapshot().metrics.gauge("queue.depth", &[]), None);
    }

    #[test]
    fn flusher_writes_periodically_and_on_drop() {
        let dir = std::env::temp_dir().join(format!("obs-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let obs = Obs::jsonl(&path);
        drop(obs.span("tool:x"));
        let handle = obs.start_flusher(Duration::from_millis(10)).unwrap();
        for _ in 0..100 {
            if path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(path.exists(), "periodic flush never wrote the trace");
        drop(obs.span("tool:y"));
        drop(handle); // final flush must include the second span
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("tool:y"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_handle_telemetry_is_inert() {
        let obs = Obs::disabled();
        obs.incr_with("c", &[("a", "b")], 1);
        obs.observe_ns_with("h", &[], 5);
        assert!(obs.register_gauge("g", &[], || 1.0).is_none());
        assert!(!obs.flight_enabled());
        assert!(obs.slow_calls().is_empty());
        assert!(obs.start_flusher(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn span_ids_are_unique_and_parents_nest() {
        let obs = Obs::in_memory();
        {
            let _root = obs.span("root");
            let _mid = obs.span("mid");
            drop(obs.span("leaf"));
        }
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), 3);
        validate_tree(&snap.spans).unwrap();
    }

    #[test]
    fn children_inherit_trace_and_roots_get_fresh_ones() {
        let obs = Obs::in_memory();
        {
            let _root = obs.span("root");
            drop(obs.span("child"));
        }
        drop(obs.span("other_root"));
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), 3);
        let root_trace = snap.spans[0].trace.expect("root has a trace");
        assert_eq!(snap.spans[1].trace, Some(root_trace));
        assert_ne!(snap.spans[2].trace, Some(root_trace));
        validate_tree(&snap.spans).unwrap();
    }

    #[test]
    fn adopted_context_joins_the_same_trace() {
        let obs = Obs::in_memory();
        let ctx = {
            let root = obs.span("wire:call");
            root.context()
        };
        // Simulate a worker thread picking the context up.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _scope = adopt_context(ctx);
                drop(obs.span("tool:select"));
            });
        });
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[1].trace, snap.spans[0].trace);
        assert_eq!(snap.spans[1].parent, Some(snap.spans[0].id));
    }

    #[test]
    fn inflight_registry_tracks_live_calls() {
        let obs = Obs::in_memory();
        let span = obs.span("wire:call");
        let guard = obs.begin_call("alice", "select");
        obs.note_statement("SELECT 1");
        let live = obs.inflight();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].user, "alice");
        assert_eq!(live[0].trace, span.trace());
        assert_eq!(live[0].statement.as_deref(), Some("SELECT 1"));
        let json = obs.inflight_json().unwrap();
        assert_eq!(
            json.get("in_flight").and_then(toolproto::Json::as_i64),
            Some(1)
        );
        drop(guard);
        assert!(obs.inflight().is_empty());
        assert_eq!(
            obs.snapshot().metrics.gauge("obs.queries.in_flight", &[]),
            Some(0.0)
        );
    }

    #[test]
    fn statement_store_rides_the_handle() {
        let obs = Obs::in_memory();
        obs.record_statement("alice", "select $n", 500, 3, true, StatementOutcome::Ok);
        obs.record_statement(
            "alice",
            "select $n",
            700,
            4,
            false,
            StatementOutcome::Conflict,
        );
        let snap = obs.statements_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].stats.calls, 2);
        assert_eq!(snap[0].stats.conflicts, 1);
        let metrics = obs.snapshot().metrics;
        assert_eq!(
            metrics.labeled_counter("stmt.calls", &[("outcome", "ok"), ("user", "alice")]),
            1
        );
        assert_eq!(metrics.gauge("obs.statements.entries", &[]), Some(1.0));
        assert!(obs.statements_json().is_some());
        // Disabled handles stay inert.
        let off = Obs::disabled();
        off.record_statement("u", "s", 1, 0, false, StatementOutcome::Ok);
        assert!(off.statements_snapshot().is_empty());
        assert!(off.statements_json().is_none());
        assert!(off.inflight_json().is_none());
        let g = off.begin_call("u", "t");
        drop(g);
    }

    #[test]
    fn flight_dropped_counter_and_occupancy_gauge_are_wired() {
        let config = FlightConfig {
            threshold_ns: 1,
            ring_capacity: 2,
            ..FlightConfig::default()
        };
        let obs = Obs::with_flight(&ObsConfig::InMemory, config);
        for _ in 0..5 {
            let span = obs.span("tool:slow");
            std::thread::sleep(Duration::from_millis(1));
            drop(span);
        }
        let metrics = obs.snapshot().metrics;
        assert_eq!(metrics.counter("obs.slow_calls.captured"), 5);
        assert_eq!(metrics.counter("obs.flight.dropped_total"), 3);
        assert_eq!(metrics.gauge("obs.flight.ring_occupancy", &[]), Some(2.0));
    }
}
