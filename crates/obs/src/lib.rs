//! Structured observability kernel for the BridgeScope reproduction.
//!
//! Everything that happens between the simulated agent and the database —
//! tool dispatch, privilege checks, SQL execution, transaction control,
//! proxy data movement, executor plan choices — is invisible unless it is
//! recorded somewhere. This crate is that somewhere: a std-only (offline
//! build policy; the sole dependency is `toolproto` for its JSON type)
//! kernel of
//!
//! * hierarchical [spans](span::SpanRecord) with ids, parents, attributes,
//!   and monotonic nanosecond timings,
//! * a [`MetricsRegistry`](metrics::MetricsRegistry) of named counters and
//!   fixed-bucket latency histograms,
//! * a [`Recorder`](recorder::Recorder) trait with a sharded in-memory sink,
//! * a [JSONL exporter](export) (one event per line, `toolproto::Json`
//!   syntax) with a matching parser, and
//! * a [summary table renderer](summary) for human-readable per-run reports.
//!
//! The entry point is [`Obs`]: a cheap clonable handle that is either
//! enabled (shared sink + metrics) or disabled. Disabled handles make every
//! call a no-op on an `Option` check, so instrumented code paths cost
//! effectively nothing when observability is off.
//!
//! ```
//! let obs = obs::Obs::in_memory();
//! {
//!     let mut task = obs.span("task");
//!     task.attr("id", "t1");
//!     let llm = obs.span("llm:call");
//!     drop(llm);
//!     obs.incr("llm.calls", 1);
//! }
//! let snap = obs.snapshot();
//! assert_eq!(snap.spans.len(), 2);
//! assert_eq!(snap.spans[1].parent, Some(snap.spans[0].id));
//! assert_eq!(snap.metrics.counter("llm.calls"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod observer;
pub mod recorder;
pub mod span;
pub mod summary;

pub use export::{parse_jsonl, to_jsonl};
pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use observer::RegistryObserver;
pub use recorder::{Recorder, ShardedSink};
pub use span::{
    adopt, current_parent, validate_tree, AttrValue, ParentScope, SpanGuard, SpanRecord,
};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How a server or harness should record observability data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ObsConfig {
    /// Record nothing; instrumentation is a no-op.
    #[default]
    Off,
    /// Record spans and metrics in memory; read them via [`Obs::snapshot`].
    InMemory,
    /// Record in memory and write a JSONL trace to this path on
    /// [`Obs::flush`].
    Jsonl(PathBuf),
}

pub(crate) struct ObsInner {
    epoch: Instant,
    next_id: AtomicU64,
    metrics: MetricsRegistry,
    sink: ShardedSink,
    jsonl_path: Option<PathBuf>,
}

impl ObsInner {
    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn record(&self, span: SpanRecord) {
        use recorder::Recorder as _;
        self.sink.record(span);
    }
}

/// Everything an enabled [`Obs`] handle has collected so far.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Finished spans sorted by `(start_ns, id)`.
    pub spans: Vec<SpanRecord>,
    /// Counter and histogram values.
    pub metrics: MetricsSnapshot,
}

/// Handle to one observability domain: a shared span sink, id generator,
/// monotonic epoch, and metrics registry. Clones share state; a disabled
/// handle (the default) records nothing.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A handle that records nothing; every operation is a no-op.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    fn enabled_with(jsonl_path: Option<PathBuf>) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                metrics: MetricsRegistry::new(),
                sink: ShardedSink::new(),
                jsonl_path,
            })),
        }
    }

    /// An enabled handle recording into memory only.
    pub fn in_memory() -> Self {
        Obs::enabled_with(None)
    }

    /// An enabled handle that additionally writes a JSONL trace to `path`
    /// when [`Obs::flush`] is called.
    pub fn jsonl(path: impl Into<PathBuf>) -> Self {
        Obs::enabled_with(Some(path.into()))
    }

    /// Build a handle from a configuration value.
    pub fn from_config(config: &ObsConfig) -> Self {
        match config {
            ObsConfig::Off => Obs::disabled(),
            ObsConfig::InMemory => Obs::in_memory(),
            ObsConfig::Jsonl(path) => Obs::jsonl(path.clone()),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span named `name`. It becomes a child of the innermost span
    /// currently open on this thread and is recorded when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::disabled(),
            Some(inner) => SpanGuard::open(Arc::clone(inner), name),
        }
    }

    /// Add `by` to the counter `name` (no-op when disabled).
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.incr(name, by);
        }
    }

    /// Record a latency observation in the histogram `name`.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe_ns(name, ns);
        }
    }

    /// Nanoseconds since this handle was created (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map(|i| i.now_ns()).unwrap_or(0)
    }

    /// A point-in-time copy of all spans and metrics (empty when disabled).
    pub fn snapshot(&self) -> ObsSnapshot {
        match &self.inner {
            None => ObsSnapshot {
                spans: Vec::new(),
                metrics: MetricsSnapshot::default(),
            },
            Some(inner) => ObsSnapshot {
                spans: inner.sink.snapshot(),
                metrics: inner.metrics.snapshot(),
            },
        }
    }

    /// Serialize the current snapshot as JSONL (empty string when disabled).
    pub fn export_jsonl(&self) -> String {
        if self.is_enabled() {
            export::to_jsonl(&self.snapshot())
        } else {
            String::new()
        }
    }

    /// The JSONL output path configured for this handle, if any.
    pub fn jsonl_path(&self) -> Option<&Path> {
        self.inner.as_ref().and_then(|i| i.jsonl_path.as_deref())
    }

    /// Write the JSONL trace to the configured path, returning the path
    /// written. `Ok(None)` when disabled or no path was configured.
    pub fn flush(&self) -> std::io::Result<Option<PathBuf>> {
        let Some(path) = self.jsonl_path().map(Path::to_path_buf) else {
            return Ok(None);
        };
        std::fs::write(&path, self.export_jsonl())?;
        Ok(Some(path))
    }

    /// An observer suitable for `toolproto::Registry::set_observer`, or
    /// `None` when disabled (so disabled servers attach no observer at all).
    pub fn registry_observer(&self) -> Option<Arc<RegistryObserver>> {
        if self.is_enabled() {
            Some(Arc::new(RegistryObserver::new(self.clone())))
        } else {
            None
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("jsonl_path", &self.jsonl_path())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        let mut span = obs.span("x");
        span.attr("k", 1i64);
        span.fail("nope");
        assert!(!span.enabled());
        assert_eq!(span.id(), None);
        drop(span);
        obs.incr("c", 1);
        obs.observe_ns("h", 10);
        let snap = obs.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.metrics.counters.is_empty());
        assert_eq!(obs.export_jsonl(), "");
        assert!(obs.flush().unwrap().is_none());
        assert!(obs.registry_observer().is_none());
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::in_memory();
        let clone = obs.clone();
        drop(clone.span("a"));
        obs.incr("n", 2);
        let snap = clone.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.metrics.counter("n"), 2);
    }

    #[test]
    fn from_config_matches_variants() {
        assert!(!Obs::from_config(&ObsConfig::Off).is_enabled());
        assert!(Obs::from_config(&ObsConfig::InMemory).is_enabled());
        let obs = Obs::from_config(&ObsConfig::Jsonl(PathBuf::from("/tmp/t.jsonl")));
        assert_eq!(obs.jsonl_path(), Some(Path::new("/tmp/t.jsonl")));
    }

    #[test]
    fn span_ids_are_unique_and_parents_nest() {
        let obs = Obs::in_memory();
        {
            let _root = obs.span("root");
            let _mid = obs.span("mid");
            drop(obs.span("leaf"));
        }
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), 3);
        validate_tree(&snap.spans).unwrap();
    }
}
