//! Flight recorder: a bounded ring buffer of recently completed
//! interesting span trees, with tail-based retention.
//!
//! Post-mortem traces answer "what happened over the whole run"; the flight
//! recorder answers the live-operations question "what were the worst calls
//! *recently*, and what did they spend their time on". Every finished span
//! is offered to the recorder. Spans are buffered in a bounded FIFO pool;
//! when a *trigger* span (name matching one of the configured prefixes,
//! e.g. `tool:` or `wire:call`) closes and the tail-based retention rule
//! fires — the call was **slow** (over the threshold), **errored**, or
//! **explicitly sampled** (the `trace.sampled` attribute, set per-user via
//! [`FlightRecorder::should_sample`]) — the recorder captures it together
//! with every buffered descendant — children always close before their
//! parents, so the full subtree is already in the pool — into a ring of
//! [`SlowCall`] entries. The ring overwrites its oldest entry when full,
//! so memory stays bounded no matter how long the server runs; evictions
//! are reported in the [`OfferOutcome`] so the owner can count them.

use crate::span::{AttrValue, SpanRecord};
use crate::trace::TraceId;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use toolproto::Json;

/// Span attribute that marks a call tree as explicitly sampled; trigger
/// spans carrying it are retained regardless of duration.
pub const SAMPLED_ATTR: &str = "trace.sampled";

/// Tuning for a [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlightConfig {
    /// A trigger span slower than this (in nanoseconds) is captured.
    pub threshold_ns: u64,
    /// Maximum retained [`SlowCall`] entries; the oldest is evicted first.
    pub ring_capacity: usize,
    /// Maximum buffered finished spans awaiting their root's close. Bounds
    /// memory; a subtree larger than this is captured truncated.
    pub pending_capacity: usize,
    /// Span-name prefixes that can trigger a capture. `tool:` matches every
    /// `tool:{name}` span; `wire:call` matches the wire dispatch wrapper.
    pub trigger_prefixes: Vec<String>,
    /// Fraction of calls (per user) retained even when fast and clean, in
    /// `[0, 1]`. 0 disables explicit sampling.
    pub sample_rate: f64,
    /// Per-user overrides of [`FlightConfig::sample_rate`].
    pub user_sample_rates: Vec<(String, f64)>,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            threshold_ns: 100_000_000, // 100ms
            ring_capacity: 64,
            pending_capacity: 4096,
            trigger_prefixes: vec!["tool:".to_owned(), "wire:call".to_owned()],
            sample_rate: 0.0,
            user_sample_rates: Vec::new(),
        }
    }
}

impl FlightConfig {
    /// Config with a custom slow threshold and the default capacities.
    pub fn with_threshold_ns(threshold_ns: u64) -> Self {
        FlightConfig {
            threshold_ns,
            ..FlightConfig::default()
        }
    }

    /// Set the default per-user sample rate (clamped to `[0, 1]`).
    pub fn sampled(mut self, rate: f64) -> Self {
        self.sample_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Override the sample rate for one user (clamped to `[0, 1]`).
    pub fn sampled_user(mut self, user: &str, rate: f64) -> Self {
        self.user_sample_rates
            .push((user.to_owned(), rate.clamp(0.0, 1.0)));
        self
    }
}

/// Why a call tree was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureReason {
    /// The trigger span exceeded the duration threshold.
    Slow,
    /// The trigger span carried an error.
    Error,
    /// The trigger span was explicitly sampled ([`SAMPLED_ATTR`]).
    Sampled,
}

impl CaptureReason {
    /// Stable lowercase label used in JSON and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            CaptureReason::Slow => "slow",
            CaptureReason::Error => "error",
            CaptureReason::Sampled => "sampled",
        }
    }
}

/// What one [`FlightRecorder::offer`] call did, so the owning handle can
/// account for captures and losses without re-locking the recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OfferOutcome {
    /// `Some` when the span triggered a capture, with the retention reason.
    pub captured: Option<CaptureReason>,
    /// A previously captured call was evicted from the ring to make room.
    pub ring_evicted: bool,
    /// Buffered spans dropped from the pending pool to respect its bound.
    pub pending_dropped: u64,
}

/// One captured call: the trigger span plus its recorded subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowCall {
    /// Monotonic capture sequence number (1-based) within one recorder.
    pub seq: u64,
    /// Why this call was retained.
    pub reason: CaptureReason,
    /// The trigger span that fired the retention rule.
    pub root: SpanRecord,
    /// The captured tree: the root plus every buffered descendant, sorted
    /// by `(start_ns, id)` so parents precede children.
    pub spans: Vec<SpanRecord>,
}

impl SlowCall {
    /// Duration of the captured root span in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.root.duration_ns()
    }

    /// The trace id the captured tree belongs to, if recorded with one.
    pub fn trace(&self) -> Option<TraceId> {
        self.root.trace
    }

    /// JSON form served by the admin `/slow` endpoint and appended to
    /// JSONL dumps as a `{"type":"slow_call",…}` event.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("type", Json::str("slow_call")),
            ("seq", Json::num(self.seq as f64)),
            (
                "trace",
                self.trace()
                    .map(|t| Json::str(t.to_string()))
                    .unwrap_or(Json::Null),
            ),
            ("reason", Json::str(self.reason.as_str())),
            ("name", Json::str(self.root.name.clone())),
            ("duration_ns", Json::num(self.duration_ns() as f64)),
            (
                "spans",
                Json::array(self.spans.iter().map(crate::export::span_to_json)),
            ),
        ])
    }
}

struct FlightInner {
    /// Finished spans awaiting a potential trigger ancestor, FIFO-bounded.
    pending: VecDeque<SpanRecord>,
    /// Captured slow calls, oldest first, ring-bounded.
    ring: VecDeque<SlowCall>,
}

/// The recorder itself. Concurrency-safe; one lives inside an enabled
/// [`crate::Obs`] handle when flight recording is configured.
pub struct FlightRecorder {
    config: FlightConfig,
    inner: Mutex<FlightInner>,
    seq: AtomicU64,
    /// Per-user fractional sampling credit; deterministic (no RNG): each
    /// decision adds the user's rate and fires when the credit crosses 1.
    sample_credit: Mutex<HashMap<String, f64>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("config", &self.config)
            .field("captured", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with the given tuning.
    pub fn new(config: FlightConfig) -> Self {
        FlightRecorder {
            config,
            inner: Mutex::new(FlightInner {
                pending: VecDeque::new(),
                ring: VecDeque::new(),
            }),
            seq: AtomicU64::new(0),
            sample_credit: Mutex::new(HashMap::new()),
        }
    }

    /// The configured slow threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.config.threshold_ns
    }

    /// Total captures since construction (monotonic, survives ring
    /// eviction).
    pub fn captured_total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    fn is_trigger(&self, name: &str) -> bool {
        self.config
            .trigger_prefixes
            .iter()
            .any(|p| name.starts_with(p.as_str()))
    }

    /// The effective sample rate for `user`.
    fn sample_rate_for(&self, user: &str) -> f64 {
        self.config
            .user_sample_rates
            .iter()
            .find(|(u, _)| u == user)
            .map(|(_, r)| *r)
            .unwrap_or(self.config.sample_rate)
    }

    /// Decide whether `user`'s next call should be explicitly retained.
    /// Deterministic credit sampling: every decision adds the user's rate
    /// to an accumulator and fires when it crosses 1, so a rate of 0.25
    /// retains exactly every 4th call. Credit state is bounded; users past
    /// the bound fall back to the memoryless rate-≥1 decision.
    pub fn should_sample(&self, user: &str) -> bool {
        let rate = self.sample_rate_for(user);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        const MAX_TRACKED_USERS: usize = 1024;
        let mut credit = self.sample_credit.lock().expect("sample lock");
        if !credit.contains_key(user) && credit.len() >= MAX_TRACKED_USERS {
            return false;
        }
        let slot = credit.entry(user.to_owned()).or_insert(0.0);
        *slot += rate;
        if *slot >= 1.0 {
            *slot -= 1.0;
            true
        } else {
            false
        }
    }

    fn retention_reason(&self, span: &SpanRecord) -> Option<CaptureReason> {
        if !self.is_trigger(&span.name) {
            return None;
        }
        if span.duration_ns() >= self.config.threshold_ns {
            Some(CaptureReason::Slow)
        } else if span.error.is_some() {
            Some(CaptureReason::Error)
        } else if span.attr(SAMPLED_ATTR) == Some(&AttrValue::Bool(true)) {
            Some(CaptureReason::Sampled)
        } else {
            None
        }
    }

    /// Offer one finished span; tail-based retention decides capture. The
    /// returned [`OfferOutcome`] reports the capture (with its reason) and
    /// any data lost to the ring/pending bounds.
    pub fn offer(&self, span: SpanRecord) -> OfferOutcome {
        let captured = self.retention_reason(&span);
        let mut outcome = OfferOutcome {
            captured,
            ..OfferOutcome::default()
        };
        let mut inner = self.inner.lock().expect("flight lock");
        if let Some(reason) = captured {
            let mut spans = collect_subtree(&inner.pending, &span);
            spans.push(span.clone());
            spans.sort_by_key(|s| (s.start_ns, s.id));
            let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
            if inner.ring.len() >= self.config.ring_capacity.max(1) {
                inner.ring.pop_front();
                outcome.ring_evicted = true;
            }
            inner.ring.push_back(SlowCall {
                seq,
                reason,
                root: span.clone(),
                spans,
            });
        }
        inner.pending.push_back(span);
        while inner.pending.len() > self.config.pending_capacity.max(1) {
            inner.pending.pop_front();
            outcome.pending_dropped += 1;
        }
        outcome
    }

    /// Captured calls, oldest first.
    pub fn slow_calls(&self) -> Vec<SlowCall> {
        self.inner
            .lock()
            .expect("flight lock")
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// The newest captured call belonging to `trace`, if any is retained.
    pub fn slow_call_by_trace(&self, trace: TraceId) -> Option<SlowCall> {
        self.inner
            .lock()
            .expect("flight lock")
            .ring
            .iter()
            .rev()
            .find(|call| call.trace() == Some(trace))
            .cloned()
    }

    /// Currently retained captures (ring occupancy, for gauges).
    pub fn ring_len(&self) -> usize {
        self.inner.lock().expect("flight lock").ring.len()
    }

    /// Configured ring capacity.
    pub fn ring_capacity(&self) -> usize {
        self.config.ring_capacity
    }
}

/// Every pending span that is a descendant of `root` (by walking parent
/// links within the pending pool — ancestors outside the pool terminate the
/// walk without a match).
fn collect_subtree(pending: &VecDeque<SpanRecord>, root: &SpanRecord) -> Vec<SpanRecord> {
    let parent_of: BTreeMap<u64, Option<u64>> = pending.iter().map(|s| (s.id, s.parent)).collect();
    let mut out = Vec::new();
    for span in pending {
        let mut cursor = span.parent;
        let mut hops = 0usize;
        while let Some(pid) = cursor {
            if pid == root.id {
                out.push(span.clone());
                break;
            }
            hops += 1;
            if hops > pending.len() {
                break; // defensive: malformed parent cycle
            }
            cursor = parent_of.get(&pid).copied().flatten();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            trace: TraceId::from_u128(u128::from(id) + 1000),
            name: name.to_owned(),
            start_ns: start,
            end_ns: end,
            error: None,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn captures_trigger_span_with_subtree() {
        let fr = FlightRecorder::new(FlightConfig::with_threshold_ns(100));
        // Children close first, then the slow tool span.
        assert!(fr
            .offer(rec(3, Some(2), "sql:execute", 20, 80))
            .captured
            .is_none());
        assert!(fr
            .offer(rec(4, Some(3), "sql:scan", 30, 60))
            .captured
            .is_none());
        assert_eq!(
            fr.offer(rec(2, Some(1), "tool:select", 10, 200)).captured,
            Some(CaptureReason::Slow)
        );
        let calls = fr.slow_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].root.name, "tool:select");
        assert_eq!(calls[0].reason, CaptureReason::Slow);
        let names: Vec<&str> = calls[0].spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["tool:select", "sql:execute", "sql:scan"]);
    }

    #[test]
    fn fast_and_untriggered_spans_are_ignored() {
        let fr = FlightRecorder::new(FlightConfig::with_threshold_ns(100));
        assert!(fr
            .offer(rec(1, None, "tool:select", 0, 50))
            .captured
            .is_none()); // fast
        assert!(fr
            .offer(rec(2, None, "sql:execute", 0, 5000))
            .captured
            .is_none()); // not a trigger
        assert!(fr.slow_calls().is_empty());
    }

    #[test]
    fn errored_and_sampled_calls_are_retained_even_when_fast() {
        let fr = FlightRecorder::new(FlightConfig::with_threshold_ns(1_000_000));
        let mut errored = rec(1, None, "wire:call", 0, 10);
        errored.error = Some("boom".into());
        assert_eq!(fr.offer(errored).captured, Some(CaptureReason::Error));
        let mut sampled = rec(2, None, "tool:select", 20, 30);
        sampled
            .attrs
            .push((SAMPLED_ATTR.to_owned(), AttrValue::Bool(true)));
        assert_eq!(fr.offer(sampled).captured, Some(CaptureReason::Sampled));
        // A sampled mark on a non-trigger span does nothing.
        let mut inner = rec(3, None, "sql:execute", 40, 50);
        inner
            .attrs
            .push((SAMPLED_ATTR.to_owned(), AttrValue::Bool(true)));
        assert!(fr.offer(inner).captured.is_none());
        let reasons: Vec<CaptureReason> = fr.slow_calls().iter().map(|c| c.reason).collect();
        assert_eq!(reasons, [CaptureReason::Error, CaptureReason::Sampled]);
    }

    #[test]
    fn lookup_by_trace_finds_newest_capture() {
        let fr = FlightRecorder::new(FlightConfig::with_threshold_ns(10));
        fr.offer(rec(1, None, "tool:a", 0, 100));
        fr.offer(rec(2, None, "tool:b", 200, 300));
        let trace = TraceId::from_u128(1002).unwrap();
        let hit = fr.slow_call_by_trace(trace).unwrap();
        assert_eq!(hit.root.name, "tool:b");
        assert!(fr
            .slow_call_by_trace(TraceId::from_u128(9).unwrap())
            .is_none());
        assert_eq!(fr.ring_len(), 2);
    }

    #[test]
    fn credit_sampling_is_deterministic_per_user() {
        let fr = FlightRecorder::new(
            FlightConfig::default()
                .sampled(0.25)
                .sampled_user("vip", 1.0),
        );
        let fired: Vec<bool> = (0..8).map(|_| fr.should_sample("alice")).collect();
        assert_eq!(fired.iter().filter(|&&b| b).count(), 2); // 8 × 0.25
        assert!(fr.should_sample("vip"));
        let zero = FlightRecorder::new(FlightConfig::default());
        assert!(!zero.should_sample("alice"));
    }

    #[test]
    fn ring_wraps_around_keeping_newest() {
        let config = FlightConfig {
            threshold_ns: 10,
            ring_capacity: 3,
            ..FlightConfig::default()
        };
        let fr = FlightRecorder::new(config);
        let mut evictions = 0u64;
        for i in 0..10u64 {
            let out = fr.offer(rec(i + 1, None, "tool:slow", i * 1000, i * 1000 + 500));
            evictions += u64::from(out.ring_evicted);
        }
        let calls = fr.slow_calls();
        assert_eq!(calls.len(), 3);
        assert_eq!(fr.captured_total(), 10);
        assert_eq!(evictions, 7); // 10 captures into a 3-slot ring
                                  // Oldest evicted: the survivors are captures 8, 9, 10.
        assert_eq!(calls[0].seq, 8);
        assert_eq!(calls[2].seq, 10);
    }

    #[test]
    fn pending_pool_is_bounded() {
        let config = FlightConfig {
            threshold_ns: 1_000_000,
            pending_capacity: 4,
            ..FlightConfig::default()
        };
        let fr = FlightRecorder::new(config);
        let mut dropped = 0u64;
        for i in 0..100u64 {
            dropped += fr
                .offer(rec(i + 1, None, "sql:execute", i, i + 1))
                .pending_dropped;
        }
        assert!(fr.inner.lock().unwrap().pending.len() <= 4);
        assert_eq!(dropped, 96);
    }

    #[test]
    fn slow_call_json_shape() {
        let fr = FlightRecorder::new(FlightConfig::with_threshold_ns(1));
        fr.offer(rec(1, None, "wire:call", 0, 100));
        let json = fr.slow_calls()[0].to_json();
        assert_eq!(json.get("type").and_then(Json::as_str), Some("slow_call"));
        assert_eq!(json.get("name").and_then(Json::as_str), Some("wire:call"));
        assert_eq!(json.get("duration_ns").and_then(Json::as_i64), Some(100));
        assert_eq!(json.get("reason").and_then(Json::as_str), Some("slow"));
        assert_eq!(
            json.get("trace").and_then(Json::as_str),
            Some(TraceId::from_u128(1001).unwrap().to_string().as_str())
        );
    }
}
