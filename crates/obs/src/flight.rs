//! Slow-call flight recorder: a bounded ring buffer of recently completed
//! slow span trees.
//!
//! Post-mortem traces answer "what happened over the whole run"; the flight
//! recorder answers the live-operations question "what were the worst calls
//! *recently*, and what did they spend their time on". Every finished span
//! is offered to the recorder. Spans are buffered in a bounded FIFO pool;
//! when a *trigger* span (name matching one of the configured prefixes,
//! e.g. `tool:` or `wire:call`) closes slower than the threshold, the
//! recorder captures it together with every buffered descendant — children
//! always close before their parents, so the full subtree is already in the
//! pool — into a ring of [`SlowCall`] entries. The ring overwrites its
//! oldest entry when full, so memory stays bounded no matter how long the
//! server runs.

use crate::span::SpanRecord;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use toolproto::Json;

/// Tuning for a [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightConfig {
    /// A trigger span slower than this (in nanoseconds) is captured.
    pub threshold_ns: u64,
    /// Maximum retained [`SlowCall`] entries; the oldest is evicted first.
    pub ring_capacity: usize,
    /// Maximum buffered finished spans awaiting their root's close. Bounds
    /// memory; a subtree larger than this is captured truncated.
    pub pending_capacity: usize,
    /// Span-name prefixes that can trigger a capture. `tool:` matches every
    /// `tool:{name}` span; `wire:call` matches the wire dispatch wrapper.
    pub trigger_prefixes: Vec<String>,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            threshold_ns: 100_000_000, // 100ms
            ring_capacity: 64,
            pending_capacity: 4096,
            trigger_prefixes: vec!["tool:".to_owned(), "wire:call".to_owned()],
        }
    }
}

impl FlightConfig {
    /// Config with a custom slow threshold and the default capacities.
    pub fn with_threshold_ns(threshold_ns: u64) -> Self {
        FlightConfig {
            threshold_ns,
            ..FlightConfig::default()
        }
    }
}

/// One captured slow call: the trigger span plus its recorded subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowCall {
    /// Monotonic capture sequence number (1-based) within one recorder.
    pub seq: u64,
    /// The trigger span that exceeded the threshold.
    pub root: SpanRecord,
    /// The captured tree: the root plus every buffered descendant, sorted
    /// by `(start_ns, id)` so parents precede children.
    pub spans: Vec<SpanRecord>,
}

impl SlowCall {
    /// Duration of the captured root span in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.root.duration_ns()
    }

    /// JSON form served by the admin `/slow` endpoint and appended to
    /// JSONL dumps as a `{"type":"slow_call",…}` event.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("type", Json::str("slow_call")),
            ("seq", Json::num(self.seq as f64)),
            ("name", Json::str(self.root.name.clone())),
            ("duration_ns", Json::num(self.duration_ns() as f64)),
            (
                "spans",
                Json::array(self.spans.iter().map(crate::export::span_to_json)),
            ),
        ])
    }
}

struct FlightInner {
    /// Finished spans awaiting a potential trigger ancestor, FIFO-bounded.
    pending: VecDeque<SpanRecord>,
    /// Captured slow calls, oldest first, ring-bounded.
    ring: VecDeque<SlowCall>,
}

/// The recorder itself. Concurrency-safe; one lives inside an enabled
/// [`crate::Obs`] handle when flight recording is configured.
pub struct FlightRecorder {
    config: FlightConfig,
    inner: Mutex<FlightInner>,
    seq: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("config", &self.config)
            .field("captured", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with the given tuning.
    pub fn new(config: FlightConfig) -> Self {
        FlightRecorder {
            config,
            inner: Mutex::new(FlightInner {
                pending: VecDeque::new(),
                ring: VecDeque::new(),
            }),
            seq: AtomicU64::new(0),
        }
    }

    /// The configured slow threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.config.threshold_ns
    }

    /// Total captures since construction (monotonic, survives ring
    /// eviction).
    pub fn captured_total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    fn is_trigger(&self, name: &str) -> bool {
        self.config
            .trigger_prefixes
            .iter()
            .any(|p| name.starts_with(p.as_str()))
    }

    /// Offer one finished span. Returns `true` when this span triggered a
    /// slow-call capture.
    pub fn offer(&self, span: SpanRecord) -> bool {
        let slow = self.is_trigger(&span.name) && span.duration_ns() >= self.config.threshold_ns;
        let mut inner = self.inner.lock().expect("flight lock");
        if slow {
            let mut spans = collect_subtree(&inner.pending, &span);
            spans.push(span.clone());
            spans.sort_by_key(|s| (s.start_ns, s.id));
            let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
            if inner.ring.len() >= self.config.ring_capacity.max(1) {
                inner.ring.pop_front();
            }
            inner.ring.push_back(SlowCall {
                seq,
                root: span.clone(),
                spans,
            });
        }
        inner.pending.push_back(span);
        while inner.pending.len() > self.config.pending_capacity.max(1) {
            inner.pending.pop_front();
        }
        slow
    }

    /// Captured slow calls, oldest first.
    pub fn slow_calls(&self) -> Vec<SlowCall> {
        self.inner
            .lock()
            .expect("flight lock")
            .ring
            .iter()
            .cloned()
            .collect()
    }
}

/// Every pending span that is a descendant of `root` (by walking parent
/// links within the pending pool — ancestors outside the pool terminate the
/// walk without a match).
fn collect_subtree(pending: &VecDeque<SpanRecord>, root: &SpanRecord) -> Vec<SpanRecord> {
    let parent_of: BTreeMap<u64, Option<u64>> = pending.iter().map(|s| (s.id, s.parent)).collect();
    let mut out = Vec::new();
    for span in pending {
        let mut cursor = span.parent;
        let mut hops = 0usize;
        while let Some(pid) = cursor {
            if pid == root.id {
                out.push(span.clone());
                break;
            }
            hops += 1;
            if hops > pending.len() {
                break; // defensive: malformed parent cycle
            }
            cursor = parent_of.get(&pid).copied().flatten();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_owned(),
            start_ns: start,
            end_ns: end,
            error: None,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn captures_trigger_span_with_subtree() {
        let fr = FlightRecorder::new(FlightConfig::with_threshold_ns(100));
        // Children close first, then the slow tool span.
        assert!(!fr.offer(rec(3, Some(2), "sql:execute", 20, 80)));
        assert!(!fr.offer(rec(4, Some(3), "sql:scan", 30, 60)));
        assert!(fr.offer(rec(2, Some(1), "tool:select", 10, 200)));
        let calls = fr.slow_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].root.name, "tool:select");
        let names: Vec<&str> = calls[0].spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["tool:select", "sql:execute", "sql:scan"]);
    }

    #[test]
    fn fast_and_untriggered_spans_are_ignored() {
        let fr = FlightRecorder::new(FlightConfig::with_threshold_ns(100));
        assert!(!fr.offer(rec(1, None, "tool:select", 0, 50))); // fast
        assert!(!fr.offer(rec(2, None, "sql:execute", 0, 5000))); // not a trigger
        assert!(fr.slow_calls().is_empty());
    }

    #[test]
    fn ring_wraps_around_keeping_newest() {
        let config = FlightConfig {
            threshold_ns: 10,
            ring_capacity: 3,
            ..FlightConfig::default()
        };
        let fr = FlightRecorder::new(config);
        for i in 0..10u64 {
            fr.offer(rec(i + 1, None, "tool:slow", i * 1000, i * 1000 + 500));
        }
        let calls = fr.slow_calls();
        assert_eq!(calls.len(), 3);
        assert_eq!(fr.captured_total(), 10);
        // Oldest evicted: the survivors are captures 8, 9, 10.
        assert_eq!(calls[0].seq, 8);
        assert_eq!(calls[2].seq, 10);
    }

    #[test]
    fn pending_pool_is_bounded() {
        let config = FlightConfig {
            threshold_ns: 1_000_000,
            pending_capacity: 4,
            ..FlightConfig::default()
        };
        let fr = FlightRecorder::new(config);
        for i in 0..100u64 {
            fr.offer(rec(i + 1, None, "sql:execute", i, i + 1));
        }
        assert!(fr.inner.lock().unwrap().pending.len() <= 4);
    }

    #[test]
    fn slow_call_json_shape() {
        let fr = FlightRecorder::new(FlightConfig::with_threshold_ns(1));
        fr.offer(rec(1, None, "wire:call", 0, 100));
        let json = fr.slow_calls()[0].to_json();
        assert_eq!(json.get("type").and_then(Json::as_str), Some("slow_call"));
        assert_eq!(json.get("name").and_then(Json::as_str), Some("wire:call"));
        assert_eq!(json.get("duration_ns").and_then(Json::as_i64), Some(100));
    }
}
