//! Named counters, fixed-bucket latency histograms, labeled series, and
//! sampled gauges.
//!
//! The registry is concurrency-safe: metric handles are `Arc`ed atomics
//! behind an `RwLock`ed name map, so the hot path (bumping an existing
//! metric) takes only a read lock plus an atomic add.
//!
//! Two kinds of series exist side by side:
//!
//! * **Unlabeled** counters/histograms keyed by name only — the original
//!   post-mortem naming scheme (`tool.calls.{tool}` etc.) kept for
//!   backwards compatibility with the summary renderer and JSONL traces.
//! * **Labeled** counters/histograms keyed by `(name, label set)` — the
//!   live-telemetry scheme the Prometheus exposition ([`crate::prom`])
//!   renders. Labels must be *low-cardinality* (tool names, user names,
//!   outcome classes); never put SQL text, row values, or ids in a label.
//!
//! [`Gauge`]s are different from both: a gauge is a registered *sampler
//! callback* evaluated at snapshot time, so point-in-time values (queue
//! depth, retained MVCC versions, WAL backlog) are read live instead of
//! being pushed on every change.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A canonical label set: `(key, value)` pairs sorted by key. Produced by
/// [`canonical_labels`]; two call sites naming the same labels in different
/// orders address the same series.
pub type LabelSet = Vec<(String, String)>;

/// Sort labels by key into the canonical [`LabelSet`] form.
pub fn canonical_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut out: LabelSet = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    out.sort();
    out
}

/// Upper bounds (inclusive, nanoseconds) of the latency histogram buckets.
/// A final open-ended bucket catches everything above the last bound, for
/// [`BUCKET_COUNT`] buckets total: 1µs … 1s, then overflow.
pub const LATENCY_BOUNDS_NS: [u64; 13] = [
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

/// Number of histogram buckets (`LATENCY_BOUNDS_NS` plus the overflow bucket).
pub const BUCKET_COUNT: usize = LATENCY_BOUNDS_NS.len() + 1;

/// A fixed-bucket latency histogram with atomic counters.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Histogram {
    /// Record one observation in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let idx = LATENCY_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_COUNT - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// An immutable copy of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values in nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket counts, aligned with [`LATENCY_BOUNDS_NS`] plus one
    /// overflow bucket at the end.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// containing that rank; the overflow bucket reports the last bound.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return LATENCY_BOUNDS_NS
                    .get(idx)
                    .copied()
                    .unwrap_or(LATENCY_BOUNDS_NS[LATENCY_BOUNDS_NS.len() - 1]);
            }
        }
        LATENCY_BOUNDS_NS[LATENCY_BOUNDS_NS.len() - 1]
    }
}

/// Handle returned by [`MetricsRegistry::register_gauge`]; pass it to
/// [`MetricsRegistry::unregister_gauge`] to remove the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GaugeId(u64);

/// A registered gauge: a sampler callback evaluated at snapshot time.
type Sampler = Arc<dyn Fn() -> f64 + Send + Sync>;

struct Gauge {
    name: String,
    labels: LabelSet,
    sampler: Sampler,
}

/// One sampled gauge value in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Gauge name.
    pub name: String,
    /// Canonical label set.
    pub labels: LabelSet,
    /// Sampled value.
    pub value: f64,
}

/// One labeled counter series in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledCounter {
    /// Counter name.
    pub name: String,
    /// Canonical label set.
    pub labels: LabelSet,
    /// Current value.
    pub value: u64,
}

/// One labeled histogram series in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledHistogram {
    /// Histogram name.
    pub name: String,
    /// Canonical label set.
    pub labels: LabelSet,
    /// Bucket counts and totals.
    pub histogram: HistogramSnapshot,
}

/// A concurrent registry of named counters, latency histograms, labeled
/// series, and sampled gauges.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    labeled_counters: RwLock<BTreeMap<(String, LabelSet), Arc<AtomicU64>>>,
    labeled_histograms: RwLock<BTreeMap<(String, LabelSet), Arc<Histogram>>>,
    gauges: RwLock<BTreeMap<u64, Gauge>>,
    next_gauge: AtomicU64,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field(
                "counters",
                &self.counters.read().expect("metrics lock").len(),
            )
            .field(
                "histograms",
                &self.histograms.read().expect("metrics lock").len(),
            )
            .field(
                "labeled_counters",
                &self.labeled_counters.read().expect("metrics lock").len(),
            )
            .field(
                "labeled_histograms",
                &self.labeled_histograms.read().expect("metrics lock").len(),
            )
            .field("gauges", &self.gauges.read().expect("metrics lock").len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().expect("metrics lock").get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("metrics lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().expect("metrics lock").get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("metrics lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Add `by` to the counter `name`.
    pub fn incr(&self, name: &str, by: u64) {
        self.counter(name).fetch_add(by, Ordering::Relaxed);
    }

    /// Record one latency observation in the histogram `name`.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        self.histogram(name).observe_ns(ns);
    }

    /// Get or create the labeled counter series `(name, labels)`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let key = (name.to_owned(), canonical_labels(labels));
        if let Some(c) = self
            .labeled_counters
            .read()
            .expect("metrics lock")
            .get(&key)
        {
            return Arc::clone(c);
        }
        let mut map = self.labeled_counters.write().expect("metrics lock");
        Arc::clone(map.entry(key).or_default())
    }

    /// Add `by` to the labeled counter series `(name, labels)`.
    pub fn incr_with(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        self.counter_with(name, labels)
            .fetch_add(by, Ordering::Relaxed);
    }

    /// Get or create the labeled histogram series `(name, labels)`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = (name.to_owned(), canonical_labels(labels));
        if let Some(h) = self
            .labeled_histograms
            .read()
            .expect("metrics lock")
            .get(&key)
        {
            return Arc::clone(h);
        }
        let mut map = self.labeled_histograms.write().expect("metrics lock");
        Arc::clone(map.entry(key).or_default())
    }

    /// Record one latency observation in the labeled histogram series.
    pub fn observe_ns_with(&self, name: &str, labels: &[(&str, &str)], ns: u64) {
        self.histogram_with(name, labels).observe_ns(ns);
    }

    /// Current value of the labeled counter series (0 if never bumped).
    pub fn counter_with_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = (name.to_owned(), canonical_labels(labels));
        self.labeled_counters
            .read()
            .expect("metrics lock")
            .get(&key)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Register a gauge sampler. The callback is evaluated on every
    /// [`MetricsRegistry::sample_gauges`] / [`MetricsRegistry::snapshot`];
    /// it must be cheap and must not call back into this registry's gauge
    /// API. Returns an id for [`MetricsRegistry::unregister_gauge`].
    pub fn register_gauge(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        sampler: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> GaugeId {
        let id = self.next_gauge.fetch_add(1, Ordering::Relaxed);
        self.gauges.write().expect("metrics lock").insert(
            id,
            Gauge {
                name: name.to_owned(),
                labels: canonical_labels(labels),
                sampler: Arc::new(sampler),
            },
        );
        GaugeId(id)
    }

    /// Register a gauge sampler keyed on `(name, labels)`: when a gauge
    /// with the same series identity already exists, its sampler is
    /// *replaced* instead of a duplicate being added. Use for samplers
    /// re-registered per session/connection (e.g. per-user cache gauges),
    /// where plain [`MetricsRegistry::register_gauge`] would accumulate one
    /// stale entry per registration. A sampler returning `NaN` marks the
    /// series dead and it is omitted from output (the idiom for samplers
    /// holding `Weak` references).
    pub fn register_gauge_keyed(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        sampler: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> GaugeId {
        let labels = canonical_labels(labels);
        let mut gauges = self.gauges.write().expect("metrics lock");
        if let Some((&id, _)) = gauges
            .iter()
            .find(|(_, g)| g.name == name && g.labels == labels)
        {
            let slot = gauges.get_mut(&id).expect("gauge just found");
            slot.sampler = Arc::new(sampler);
            return GaugeId(id);
        }
        let id = self.next_gauge.fetch_add(1, Ordering::Relaxed);
        gauges.insert(
            id,
            Gauge {
                name: name.to_owned(),
                labels,
                sampler: Arc::new(sampler),
            },
        );
        GaugeId(id)
    }

    /// Remove a gauge sampler. Returns whether it was registered.
    pub fn unregister_gauge(&self, id: GaugeId) -> bool {
        self.gauges
            .write()
            .expect("metrics lock")
            .remove(&id.0)
            .is_some()
    }

    /// Evaluate every registered gauge sampler. Samplers run *outside* the
    /// registry lock (they may read other subsystems that themselves record
    /// metrics), sorted by `(name, labels)` for deterministic output.
    /// Samplers returning `NaN` (dead `Weak`-backed series) are omitted.
    pub fn sample_gauges(&self) -> Vec<GaugeSample> {
        let entries: Vec<(String, LabelSet, Sampler)> = self
            .gauges
            .read()
            .expect("metrics lock")
            .values()
            .map(|g| (g.name.clone(), g.labels.clone(), Arc::clone(&g.sampler)))
            .collect();
        let mut out: Vec<GaugeSample> = entries
            .into_iter()
            .map(|(name, labels, sampler)| GaugeSample {
                name,
                labels,
                value: sampler(),
            })
            .filter(|sample| !sample.value.is_nan())
            .collect();
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }

    /// Current value of the counter `name` (0 if never bumped).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("metrics lock")
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let labeled_counters = self
            .labeled_counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|((name, labels), v)| LabeledCounter {
                name: name.clone(),
                labels: labels.clone(),
                value: v.load(Ordering::Relaxed),
            })
            .collect();
        let labeled_histograms = self
            .labeled_histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|((name, labels), v)| LabeledHistogram {
                name: name.clone(),
                labels: labels.clone(),
                histogram: v.snapshot(),
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
            labeled_counters,
            labeled_histograms,
            gauges: self.sample_gauges(),
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`], gauges sampled at snapshot
/// time. Labeled series are sorted by `(name, labels)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Labeled counter series.
    pub labeled_counters: Vec<LabeledCounter>,
    /// Labeled histogram series.
    pub labeled_histograms: Vec<LabeledHistogram>,
    /// Gauge samples taken when the snapshot was produced.
    pub gauges: Vec<GaugeSample>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of the labeled counter series, 0 when absent.
    pub fn labeled_counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let labels = canonical_labels(labels);
        self.labeled_counters
            .iter()
            .find(|c| c.name == name && c.labels == labels)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// Sampled value of gauge `name` with `labels`, `None` when absent.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let labels = canonical_labels(labels);
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels == labels)
            .map(|g| g.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.incr("a", 1);
        m.incr("a", 2);
        m.incr("b", 5);
        assert_eq!(m.counter_value("a"), 3);
        assert_eq!(m.snapshot().counter("b"), 5);
        assert_eq!(m.snapshot().counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::default();
        h.observe_ns(500); // <= 1µs bucket
        h.observe_ns(1_000); // boundary: still 1µs bucket
        h.observe_ns(7_000_000); // 10ms bucket
        h.observe_ns(10_000_000_000); // overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum_ns, 500 + 1_000 + 7_000_000 + 10_000_000_000);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[BUCKET_COUNT - 1], 1);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4);
        assert_eq!(snap.mean_ns(), snap.sum_ns / 4);
    }

    #[test]
    fn quantiles_use_bucket_upper_bounds() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.observe_ns(2_000); // 5µs bucket
        }
        h.observe_ns(400_000_000); // 500ms bucket
        let snap = h.snapshot();
        assert_eq!(snap.quantile_ns(0.5), 5_000);
        assert_eq!(snap.quantile_ns(1.0), 500_000_000);
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.quantile_ns(0.5), 0);
        assert_eq!(empty.mean_ns(), 0);
    }

    #[test]
    fn labeled_series_are_canonicalized_and_independent() {
        let m = MetricsRegistry::new();
        m.incr_with("tool.calls", &[("tool", "select"), ("outcome", "ok")], 2);
        // Same series, labels given in the other order.
        m.incr_with("tool.calls", &[("outcome", "ok"), ("tool", "select")], 1);
        m.incr_with(
            "tool.calls",
            &[("tool", "select"), ("outcome", "denied")],
            5,
        );
        assert_eq!(
            m.counter_with_value("tool.calls", &[("outcome", "ok"), ("tool", "select")]),
            3
        );
        let snap = m.snapshot();
        assert_eq!(
            snap.labeled_counter("tool.calls", &[("tool", "select"), ("outcome", "ok")]),
            3
        );
        assert_eq!(
            snap.labeled_counter("tool.calls", &[("tool", "select"), ("outcome", "denied")]),
            5
        );
        assert_eq!(snap.labeled_counter("tool.calls", &[("tool", "insert")]), 0);
        m.observe_ns_with("tool.latency", &[("tool", "select")], 2_000);
        let snap = m.snapshot();
        assert_eq!(snap.labeled_histograms.len(), 1);
        assert_eq!(snap.labeled_histograms[0].histogram.count, 1);
    }

    #[test]
    fn gauges_sample_live_and_unregister() {
        let m = MetricsRegistry::new();
        let value = Arc::new(AtomicU64::new(7));
        let v = Arc::clone(&value);
        let id = m.register_gauge("queue.depth", &[("pool", "wire")], move || {
            v.load(Ordering::Relaxed) as f64
        });
        assert_eq!(
            m.snapshot().gauge("queue.depth", &[("pool", "wire")]),
            Some(7.0)
        );
        value.store(11, Ordering::Relaxed);
        assert_eq!(
            m.snapshot().gauge("queue.depth", &[("pool", "wire")]),
            Some(11.0)
        );
        assert!(m.unregister_gauge(id));
        assert!(!m.unregister_gauge(id));
        assert_eq!(m.snapshot().gauge("queue.depth", &[("pool", "wire")]), None);
    }

    #[test]
    fn keyed_gauge_registration_replaces_in_place() {
        let m = MetricsRegistry::new();
        let a = m.register_gauge_keyed("cache.entries", &[("user", "alice")], || 3.0);
        assert_eq!(
            m.snapshot().gauge("cache.entries", &[("user", "alice")]),
            Some(3.0)
        );
        // Same series identity: replaced, not duplicated.
        let b = m.register_gauge_keyed("cache.entries", &[("user", "alice")], || 9.0);
        assert_eq!(a, b);
        let snap = m.snapshot();
        let matches: Vec<&GaugeSample> = snap
            .gauges
            .iter()
            .filter(|g| g.name == "cache.entries")
            .collect();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].value, 9.0);
        // Different labels: a distinct series.
        let c = m.register_gauge_keyed("cache.entries", &[("user", "bob")], || 1.0);
        assert_ne!(b, c);
        // NaN samplers (dead Weak idiom) vanish from output.
        m.register_gauge_keyed("cache.entries", &[("user", "bob")], || f64::NAN);
        assert_eq!(
            m.snapshot().gauge("cache.entries", &[("user", "bob")]),
            None
        );
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.incr("hits", 1);
                        m.observe_ns("lat", 2_000);
                    }
                });
            }
        });
        assert_eq!(m.counter_value("hits"), 8000);
        assert_eq!(m.snapshot().histograms["lat"].count, 8000);
    }
}
