//! Named counters and fixed-bucket latency histograms.
//!
//! The registry is concurrency-safe: metric handles are `Arc`ed atomics
//! behind an `RwLock`ed name map, so the hot path (bumping an existing
//! metric) takes only a read lock plus an atomic add.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Upper bounds (inclusive, nanoseconds) of the latency histogram buckets.
/// A final open-ended bucket catches everything above the last bound, for
/// [`BUCKET_COUNT`] buckets total: 1µs … 1s, then overflow.
pub const LATENCY_BOUNDS_NS: [u64; 13] = [
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

/// Number of histogram buckets (`LATENCY_BOUNDS_NS` plus the overflow bucket).
pub const BUCKET_COUNT: usize = LATENCY_BOUNDS_NS.len() + 1;

/// A fixed-bucket latency histogram with atomic counters.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Histogram {
    /// Record one observation in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let idx = LATENCY_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_COUNT - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// An immutable copy of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values in nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket counts, aligned with [`LATENCY_BOUNDS_NS`] plus one
    /// overflow bucket at the end.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// containing that rank; the overflow bucket reports the last bound.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return LATENCY_BOUNDS_NS
                    .get(idx)
                    .copied()
                    .unwrap_or(LATENCY_BOUNDS_NS[LATENCY_BOUNDS_NS.len() - 1]);
            }
        }
        LATENCY_BOUNDS_NS[LATENCY_BOUNDS_NS.len() - 1]
    }
}

/// A concurrent registry of named counters and latency histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().expect("metrics lock").get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("metrics lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().expect("metrics lock").get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("metrics lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Add `by` to the counter `name`.
    pub fn incr(&self, name: &str, by: u64) {
        self.counter(name).fetch_add(by, Ordering::Relaxed);
    }

    /// Record one latency observation in the histogram `name`.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        self.histogram(name).observe_ns(ns);
    }

    /// Current value of the counter `name` (0 if never bumped).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("metrics lock")
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.incr("a", 1);
        m.incr("a", 2);
        m.incr("b", 5);
        assert_eq!(m.counter_value("a"), 3);
        assert_eq!(m.snapshot().counter("b"), 5);
        assert_eq!(m.snapshot().counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::default();
        h.observe_ns(500); // <= 1µs bucket
        h.observe_ns(1_000); // boundary: still 1µs bucket
        h.observe_ns(7_000_000); // 10ms bucket
        h.observe_ns(10_000_000_000); // overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum_ns, 500 + 1_000 + 7_000_000 + 10_000_000_000);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[BUCKET_COUNT - 1], 1);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4);
        assert_eq!(snap.mean_ns(), snap.sum_ns / 4);
    }

    #[test]
    fn quantiles_use_bucket_upper_bounds() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.observe_ns(2_000); // 5µs bucket
        }
        h.observe_ns(400_000_000); // 500ms bucket
        let snap = h.snapshot();
        assert_eq!(snap.quantile_ns(0.5), 5_000);
        assert_eq!(snap.quantile_ns(1.0), 500_000_000);
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.quantile_ns(0.5), 0);
        assert_eq!(empty.mean_ns(), 0);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.incr("hits", 1);
                        m.observe_ns("lat", 2_000);
                    }
                });
            }
        });
        assert_eq!(m.counter_value("hits"), 8000);
        assert_eq!(m.snapshot().histograms["lat"].count, 8000);
    }
}
