//! Prometheus text exposition format (version 0.0.4) for a
//! [`MetricsSnapshot`].
//!
//! The admin plane's `GET /metrics` endpoint serves this. Mapping rules:
//!
//! * Metric names are sanitized (`.` and any other non-`[a-zA-Z0-9_:]`
//!   byte become `_`); a leading digit gets a `_` prefix.
//! * Counters get a `_total` suffix, per Prometheus naming conventions.
//!   Unlabeled and labeled series of the same name are merged under one
//!   `# TYPE` header.
//! * Gauges expose their sampled value verbatim.
//! * Histograms expose **cumulative** `_bucket{le="…"}` series (our
//!   internal buckets are disjoint counts), bounds converted from
//!   nanoseconds to seconds, plus `_sum` (seconds) and `_count`.
//! * Label values are escaped: `\` → `\\`, `"` → `\"`, newline → `\n`.
//!
//! Output is deterministic: series are emitted in sorted `(name, labels)`
//! order, so two snapshots of the same state render byte-identically — the
//! golden test in `crates/obs/tests/telemetry.rs` relies on this.

use crate::metrics::{LabelSet, MetricsSnapshot, LATENCY_BOUNDS_NS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sanitize a metric name into the Prometheus charset `[a-zA-Z0-9_:]`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render a label set as `{k="v",…}`, empty string for no labels. Extra
/// labels (e.g. `le`) are appended after the set's own, in given order.
fn render_labels(labels: &LabelSet, extra: &[(&str, String)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    for (k, v) in extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Format an `f64` the way Prometheus clients expect: integral values
/// without a fractional part, everything else via the shortest `{}` float.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A bucket bound in seconds, rendered without trailing float noise
/// (1_000ns → `0.000001`).
fn fmt_le(bound_ns: u64) -> String {
    let secs = bound_ns as f64 / 1e9;
    // Up to 9 decimal places covers every nanosecond bound exactly.
    let s = format!("{secs:.9}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_owned()
}

/// Render the whole snapshot in Prometheus text exposition format.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();

    // -- counters: merge unlabeled + labeled under one TYPE header each --
    let mut counters: BTreeMap<String, Vec<(LabelSet, u64)>> = BTreeMap::new();
    for (name, value) in &snapshot.counters {
        counters
            .entry(sanitize_name(name))
            .or_default()
            .push((LabelSet::new(), *value));
    }
    for series in &snapshot.labeled_counters {
        counters
            .entry(sanitize_name(&series.name))
            .or_default()
            .push((series.labels.clone(), series.value));
    }
    for (name, mut series) in counters {
        series.sort();
        let _ = writeln!(out, "# TYPE {name}_total counter");
        for (labels, value) in series {
            let _ = writeln!(out, "{name}_total{} {value}", render_labels(&labels, &[]));
        }
    }

    // -- gauges --
    let mut gauges: BTreeMap<String, Vec<(LabelSet, f64)>> = BTreeMap::new();
    for g in &snapshot.gauges {
        gauges
            .entry(sanitize_name(&g.name))
            .or_default()
            .push((g.labels.clone(), g.value));
    }
    for (name, mut series) in gauges {
        series.sort_by(|a, b| a.0.cmp(&b.0));
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (labels, value) in series {
            let _ = writeln!(
                out,
                "{name}{} {}",
                render_labels(&labels, &[]),
                fmt_value(value)
            );
        }
    }

    // -- histograms: cumulative buckets in seconds --
    let mut histograms: BTreeMap<String, Vec<(LabelSet, &crate::HistogramSnapshot)>> =
        BTreeMap::new();
    for (name, hist) in &snapshot.histograms {
        histograms
            .entry(sanitize_name(name))
            .or_default()
            .push((LabelSet::new(), hist));
    }
    for series in &snapshot.labeled_histograms {
        histograms
            .entry(sanitize_name(&series.name))
            .or_default()
            .push((series.labels.clone(), &series.histogram));
    }
    for (name, mut series) in histograms {
        series.sort_by(|a, b| a.0.cmp(&b.0));
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (labels, hist) in series {
            let mut cumulative = 0u64;
            for (idx, &count) in hist.buckets.iter().enumerate() {
                cumulative += count;
                let le = match LATENCY_BOUNDS_NS.get(idx) {
                    Some(&bound) => fmt_le(bound),
                    None => "+Inf".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    render_labels(&labels, &[("le", le)])
                );
            }
            // Defensive: a snapshot with fewer buckets than bounds (e.g. a
            // hand-built one) still needs the mandatory +Inf bucket.
            if hist.buckets.len() <= LATENCY_BOUNDS_NS.len() {
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {}",
                    render_labels(&labels, &[("le", "+Inf".to_owned())]),
                    hist.count
                );
            }
            let _ = writeln!(
                out,
                "{name}_sum{} {}",
                render_labels(&labels, &[]),
                hist.sum_ns as f64 / 1e9
            );
            let _ = writeln!(
                out,
                "{name}_count{} {}",
                render_labels(&labels, &[]),
                hist.count
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn sanitize_rules() {
        assert_eq!(sanitize_name("tool.calls"), "tool_calls");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn escaping_rules() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn le_bounds_render_in_seconds() {
        assert_eq!(fmt_le(1_000), "0.000001");
        assert_eq!(fmt_le(1_000_000_000), "1");
        assert_eq!(fmt_le(500_000_000), "0.5");
    }

    #[test]
    fn counters_merge_labeled_and_unlabeled() {
        let m = MetricsRegistry::new();
        m.incr("wire.requests", 4);
        m.incr_with("wire.requests", &[("method", "tools/call")], 3);
        let text = render(&m.snapshot());
        let headers = text.matches("# TYPE wire_requests_total counter").count();
        assert_eq!(headers, 1, "{text}");
        assert!(text.contains("wire_requests_total 4"), "{text}");
        assert!(
            text.contains("wire_requests_total{method=\"tools/call\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let m = MetricsRegistry::new();
        m.observe_ns("lat", 500); // first bucket
        m.observe_ns("lat", 2_000); // second bucket
        m.observe_ns("lat", 10_000_000_000); // overflow
        let text = render(&m.snapshot());
        assert!(text.contains("lat_bucket{le=\"0.000001\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"0.000005\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_count 3"), "{text}");
    }
}
