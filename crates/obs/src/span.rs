//! Hierarchical spans: records, attribute values, guards, and the
//! thread-local parent stack that links child spans to their parents.
//!
//! A span is opened with [`crate::Obs::span`], annotated through the returned
//! [`SpanGuard`], and recorded into the sink when the guard drops. Parentage
//! is implicit: while a guard is alive on a thread, spans opened on that same
//! thread become its children. Work that hops threads (the proxy's scoped
//! producer workers) carries parentage across explicitly with [`adopt`].

use crate::trace::TraceId;
use crate::ObsInner;
use std::cell::RefCell;
use std::sync::Arc;

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute (tool names, SQL snippets, outcome labels).
    Str(String),
    /// An integer attribute (byte counts, row counts, depths).
    Int(i64),
    /// A floating-point attribute.
    Float(f64),
    /// A boolean attribute (ok/error flags).
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A finished span as stored in the sink and serialized to JSONL.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within one [`crate::Obs`] handle (starts at 1).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `task`, `llm:call`, `tool:select`, `sql:execute`.
    pub name: String,
    /// Trace this span belongs to. Spans recorded by this crate always
    /// carry one (inherited from the enclosing span, or fresh for roots);
    /// `None` survives only for records parsed from pre-trace JSONL.
    pub trace: Option<TraceId>,
    /// Start time in nanoseconds since the handle's epoch (monotonic clock).
    pub start_ns: u64,
    /// End time in nanoseconds since the handle's epoch; `>= start_ns`.
    pub end_ns: u64,
    /// Error message when the spanned operation failed.
    pub error: Option<String>,
    /// Attributes in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Look up an attribute by key (first match wins).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

thread_local! {
    /// Stack of open span ids on this thread; the top is the current parent.
    static PARENT_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Stack of trace ids mirroring [`PARENT_STACK`] plus adopted trace
    /// scopes; the top is the trace new spans join.
    static TRACE_STACK: RefCell<Vec<TraceId>> = const { RefCell::new(Vec::new()) };
}

/// The id of the innermost open span on this thread, if any.
pub fn current_parent() -> Option<u64> {
    PARENT_STACK
        .try_with(|s| s.borrow().last().copied())
        .ok()
        .flatten()
}

/// The trace id new spans on this thread would join, if any.
pub fn current_trace() -> Option<TraceId> {
    TRACE_STACK
        .try_with(|s| s.borrow().last().copied())
        .ok()
        .flatten()
}

fn push_parent(id: u64) {
    let _ = PARENT_STACK.try_with(|s| s.borrow_mut().push(id));
}

fn pop_parent(id: u64) {
    let _ = PARENT_STACK.try_with(|s| {
        let mut stack = s.borrow_mut();
        // Guards usually drop in LIFO order, but cross-thread storage (the
        // registry observer's open-call stack) can reorder drops; remove the
        // matching entry wherever it sits.
        if let Some(pos) = stack.iter().rposition(|&x| x == id) {
            stack.remove(pos);
        }
    });
}

fn push_trace(trace: TraceId) {
    let _ = TRACE_STACK.try_with(|s| s.borrow_mut().push(trace));
}

fn pop_trace(trace: TraceId) {
    let _ = TRACE_STACK.try_with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&x| x == trace) {
            stack.remove(pos);
        }
    });
}

/// Span linkage that can be captured on one thread and adopted on another:
/// the current trace id plus the innermost open span id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanContext {
    /// Trace id spans opened under this context join (fresh root if `None`).
    pub trace: Option<TraceId>,
    /// Span id spans opened under this context become children of.
    pub parent: Option<u64>,
}

/// Capture the current thread's span linkage for adoption elsewhere.
pub fn current_context() -> SpanContext {
    SpanContext {
        trace: current_trace(),
        parent: current_parent(),
    }
}

/// Carries span parentage onto another thread: while the returned scope is
/// alive, spans opened on the current thread become children of `parent`.
///
/// Used by the proxy executor, whose sibling producers run on scoped worker
/// threads but must still appear under the `proxy:unit` span. Prefer
/// [`adopt_context`], which also carries the trace id across the hop.
#[must_use = "parent adoption lasts only while the scope is alive"]
pub fn adopt(parent: Option<u64>) -> ParentScope {
    adopt_context(SpanContext {
        trace: None,
        parent,
    })
}

/// Adopt a [`SpanContext`] on the current thread: while the returned scope
/// is alive, spans opened here join `ctx.trace` and become children of
/// `ctx.parent`. This is how one trace id survives thread hops (worker
/// pools, proxy producers) and process hops (the wire's `traceparent`).
#[must_use = "context adoption lasts only while the scope is alive"]
pub fn adopt_context(ctx: SpanContext) -> ParentScope {
    if let Some(trace) = ctx.trace {
        push_trace(trace);
    }
    if let Some(id) = ctx.parent {
        push_parent(id);
    }
    ParentScope {
        parent: ctx.parent,
        trace: ctx.trace,
    }
}

/// Guard returned by [`adopt`] / [`adopt_context`]; restores the thread's
/// parent and trace stacks on drop.
#[derive(Debug)]
pub struct ParentScope {
    parent: Option<u64>,
    trace: Option<TraceId>,
}

impl Drop for ParentScope {
    fn drop(&mut self) {
        if let Some(id) = self.parent {
            pop_parent(id);
        }
        if let Some(trace) = self.trace {
            pop_trace(trace);
        }
    }
}

pub(crate) struct OpenSpan {
    pub(crate) inner: Arc<ObsInner>,
    pub(crate) id: u64,
    pub(crate) parent: Option<u64>,
    pub(crate) trace: TraceId,
    pub(crate) name: String,
    pub(crate) start_ns: u64,
    pub(crate) error: Option<String>,
    pub(crate) attrs: Vec<(String, AttrValue)>,
}

/// An open span. Annotate it with [`SpanGuard::attr`] / [`SpanGuard::fail`];
/// dropping the guard closes the span and records it. When the owning
/// [`crate::Obs`] handle is disabled every method is a no-op.
#[must_use = "a span is recorded when its guard drops"]
pub struct SpanGuard(pub(crate) Option<OpenSpan>);

impl SpanGuard {
    /// A guard that records nothing (disabled observability).
    pub(crate) fn disabled() -> Self {
        SpanGuard(None)
    }

    pub(crate) fn open(inner: Arc<ObsInner>, name: &str) -> Self {
        let id = inner.next_span_id();
        let parent = current_parent();
        // Join the ambient trace, or start a new one when this is a root.
        let trace = current_trace().unwrap_or_else(crate::trace::next_trace_id);
        let start_ns = inner.now_ns();
        push_parent(id);
        push_trace(trace);
        SpanGuard(Some(OpenSpan {
            inner,
            id,
            parent,
            trace,
            name: name.to_owned(),
            start_ns,
            error: None,
            attrs: Vec::new(),
        }))
    }

    /// Whether this guard records anything. Use to skip attribute
    /// computations (byte sizes, plan walks) when observability is off.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// This span's id, when enabled. Hand it to [`adopt`] on worker threads.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|s| s.id)
    }

    /// The trace this span belongs to, when enabled.
    pub fn trace(&self) -> Option<TraceId> {
        self.0.as_ref().map(|s| s.trace)
    }

    /// This span's linkage as a [`SpanContext`], for adoption on another
    /// thread (or injection into a wire request).
    pub fn context(&self) -> SpanContext {
        SpanContext {
            trace: self.trace(),
            parent: self.id(),
        }
    }

    /// Attach an attribute (appended; duplicate keys are kept in order).
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        if let Some(open) = self.0.as_mut() {
            open.attrs.push((key.to_owned(), value.into()));
        }
    }

    /// Mark the span as failed with an error message.
    pub fn fail(&mut self, message: impl Into<String>) {
        if let Some(open) = self.0.as_mut() {
            open.error = Some(message.into());
        }
    }

    /// Nanoseconds elapsed since the span opened (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.0
            .as_ref()
            .map(|s| s.inner.now_ns().saturating_sub(s.start_ns))
            .unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.0.take() {
            pop_parent(open.id);
            pop_trace(open.trace);
            let end_ns = open.inner.now_ns().max(open.start_ns);
            let record = SpanRecord {
                id: open.id,
                parent: open.parent,
                trace: Some(open.trace),
                name: open.name,
                start_ns: open.start_ns,
                end_ns,
                error: open.error,
                attrs: open.attrs,
            };
            open.inner.record(record);
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("SpanGuard(disabled)"),
            Some(open) => f
                .debug_struct("SpanGuard")
                .field("id", &open.id)
                .field("name", &open.name)
                .finish(),
        }
    }
}

/// Check structural integrity of a span set: ids unique, parents exist, no
/// parent cycles, durations non-negative, and every child's interval nested
/// inside its parent's (children close before their parents).
///
/// Returns a description of the first violation found.
pub fn validate_tree(spans: &[SpanRecord]) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut by_id: BTreeMap<u64, &SpanRecord> = BTreeMap::new();
    for span in spans {
        if by_id.insert(span.id, span).is_some() {
            return Err(format!("duplicate span id {}", span.id));
        }
    }
    for span in spans {
        if span.end_ns < span.start_ns {
            return Err(format!(
                "span {} ({}) ends before it starts",
                span.id, span.name
            ));
        }
        if let Some(pid) = span.parent {
            let parent = by_id
                .get(&pid)
                .ok_or_else(|| format!("span {} has unknown parent {pid}", span.id))?;
            if let (Some(child_trace), Some(parent_trace)) = (span.trace, parent.trace) {
                if child_trace != parent_trace {
                    return Err(format!(
                        "span {} ({}) trace {child_trace} differs from parent {} trace {parent_trace}",
                        span.id, span.name, parent.id
                    ));
                }
            }
            if span.start_ns < parent.start_ns || span.end_ns > parent.end_ns {
                return Err(format!(
                    "span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
                    span.id,
                    span.name,
                    span.start_ns,
                    span.end_ns,
                    parent.id,
                    parent.name,
                    parent.start_ns,
                    parent.end_ns
                ));
            }
        }
        // Walk the parent chain; more hops than spans means a cycle.
        let mut hops = 0usize;
        let mut cursor = span.parent;
        while let Some(pid) = cursor {
            hops += 1;
            if hops > spans.len() {
                return Err(format!("parent cycle reached from span {}", span.id));
            }
            cursor = by_id.get(&pid).and_then(|p| p.parent);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            trace: TraceId::from_u128(7),
            name: format!("s{id}"),
            start_ns: start,
            end_ns: end,
            error: None,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn validate_accepts_nested_tree() {
        let spans = vec![
            rec(1, None, 0, 100),
            rec(2, Some(1), 10, 50),
            rec(3, Some(2), 20, 30),
        ];
        assert!(validate_tree(&spans).is_ok());
    }

    #[test]
    fn validate_rejects_duplicate_ids() {
        let spans = vec![rec(1, None, 0, 10), rec(1, None, 0, 10)];
        assert!(validate_tree(&spans).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn validate_rejects_missing_parent() {
        let spans = vec![rec(2, Some(9), 0, 10)];
        assert!(validate_tree(&spans)
            .unwrap_err()
            .contains("unknown parent"));
    }

    #[test]
    fn validate_rejects_child_escaping_parent() {
        let spans = vec![rec(1, None, 10, 20), rec(2, Some(1), 5, 30)];
        assert!(validate_tree(&spans).unwrap_err().contains("escapes"));
    }

    #[test]
    fn validate_rejects_negative_duration() {
        let spans = vec![rec(1, None, 20, 10)];
        assert!(validate_tree(&spans).unwrap_err().contains("ends before"));
    }

    #[test]
    fn validate_rejects_trace_mismatch() {
        let mut spans = vec![rec(1, None, 0, 100), rec(2, Some(1), 10, 50)];
        spans[1].trace = TraceId::from_u128(8);
        assert!(validate_tree(&spans)
            .unwrap_err()
            .contains("differs from parent"));
    }

    #[test]
    fn adopt_context_carries_trace_onto_scope() {
        let trace = TraceId::from_u128(42).unwrap();
        assert_eq!(current_trace(), None);
        {
            let _scope = adopt_context(SpanContext {
                trace: Some(trace),
                parent: Some(9),
            });
            assert_eq!(current_trace(), Some(trace));
            assert_eq!(current_parent(), Some(9));
        }
        assert_eq!(current_trace(), None);
        assert_eq!(current_parent(), None);
    }

    #[test]
    fn attr_lookup_finds_first_match() {
        let mut span = rec(1, None, 0, 1);
        span.attrs.push(("k".into(), AttrValue::Int(1)));
        span.attrs.push(("k".into(), AttrValue::Int(2)));
        assert_eq!(span.attr("k"), Some(&AttrValue::Int(1)));
        assert_eq!(span.attr("missing"), None);
    }
}
