//! JSONL trace export and re-import.
//!
//! One event per line, serialized with `toolproto::Json` (deterministic
//! key ordering, no external dependencies): every span becomes a
//! `{"type":"span",...}` line, followed by a single `{"type":"metrics",...}`
//! line carrying the counter/histogram snapshot. Attributes are encoded as
//! an array of `[key, value]` pairs to preserve insertion order and
//! duplicate keys. Lines with an unknown `type` are skipped on import, so
//! the format can grow without breaking old readers.
//!
//! One caveat: JSON numbers erase the `Int`/`Float` distinction, so a float
//! attribute with an integral value (e.g. `2.0`) re-imports as `Int(2)`.
//! The instrumentation in this workspace only emits `Int`, `Str`, and
//! `Bool` attributes, which all round-trip exactly.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::span::{AttrValue, SpanRecord};
use crate::trace::TraceId;
use crate::ObsSnapshot;
use std::collections::BTreeMap;
use toolproto::Json;

fn attr_to_json(value: &AttrValue) -> Json {
    match value {
        AttrValue::Str(s) => Json::str(s.clone()),
        AttrValue::Int(i) => Json::num(*i as f64),
        AttrValue::Float(x) => Json::num(*x),
        AttrValue::Bool(b) => Json::Bool(*b),
    }
}

fn attr_from_json(value: &Json) -> Result<AttrValue, String> {
    match value {
        Json::Str(s) => Ok(AttrValue::Str(s.clone())),
        Json::Bool(b) => Ok(AttrValue::Bool(*b)),
        Json::Number(_) => match value.as_i64() {
            Some(i) => Ok(AttrValue::Int(i)),
            None => Ok(AttrValue::Float(value.as_f64().expect("number"))),
        },
        other => Err(format!(
            "unsupported attribute value: {}",
            other.type_name()
        )),
    }
}

/// Serialize one span to its JSONL object.
pub fn span_to_json(span: &SpanRecord) -> Json {
    let attrs = Json::array(
        span.attrs
            .iter()
            .map(|(k, v)| Json::array([Json::str(k.clone()), attr_to_json(v)])),
    );
    Json::object([
        ("type", Json::str("span")),
        ("id", Json::num(span.id as f64)),
        (
            "parent",
            span.parent
                .map(|p| Json::num(p as f64))
                .unwrap_or(Json::Null),
        ),
        // 128-bit trace ids exceed JSON-number precision; encode as 32-hex.
        (
            "trace",
            span.trace
                .map(|t| Json::str(t.to_string()))
                .unwrap_or(Json::Null),
        ),
        ("name", Json::str(span.name.clone())),
        ("start_ns", Json::num(span.start_ns as f64)),
        ("end_ns", Json::num(span.end_ns as f64)),
        (
            "error",
            span.error.clone().map(Json::str).unwrap_or(Json::Null),
        ),
        ("attrs", attrs),
    ])
}

fn req_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_i64)
        .and_then(|i| u64::try_from(i).ok())
        .ok_or_else(|| format!("span line missing numeric field `{key}`"))
}

/// Parse one span object back into a [`SpanRecord`].
pub fn span_from_json(obj: &Json) -> Result<SpanRecord, String> {
    let name = obj
        .get("name")
        .and_then(Json::as_str)
        .ok_or("span line missing `name`")?
        .to_owned();
    let parent = match obj.get("parent") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_i64()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or("span `parent` is not an id")?,
        ),
    };
    // Absent/null trace is legal: pre-trace JSONL lines parse to `None`.
    let trace = match obj.get("trace") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_str()
                .and_then(TraceId::parse_hex)
                .ok_or("span `trace` is not a 32-hex trace id")?,
        ),
    };
    let error = match obj.get("error") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_str().ok_or("span `error` is not a string")?.to_owned()),
    };
    let mut attrs = Vec::new();
    if let Some(pairs) = obj.get("attrs").and_then(Json::as_array) {
        for pair in pairs {
            let key = pair
                .at(0)
                .and_then(Json::as_str)
                .ok_or("attr pair missing key")?;
            let value = attr_from_json(pair.at(1).ok_or("attr pair missing value")?)?;
            attrs.push((key.to_owned(), value));
        }
    }
    Ok(SpanRecord {
        id: req_u64(obj, "id")?,
        parent,
        trace,
        name,
        start_ns: req_u64(obj, "start_ns")?,
        end_ns: req_u64(obj, "end_ns")?,
        error,
        attrs,
    })
}

/// Serialize a metrics snapshot to its JSONL object.
pub fn metrics_to_json(metrics: &MetricsSnapshot) -> Json {
    let counters = Json::object(
        metrics
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::num(*v as f64))),
    );
    let histograms = Json::object(metrics.histograms.iter().map(|(k, h)| {
        (
            k.clone(),
            Json::object([
                ("count", Json::num(h.count as f64)),
                ("sum_ns", Json::num(h.sum_ns as f64)),
                (
                    "buckets",
                    Json::array(h.buckets.iter().map(|&b| Json::num(b as f64))),
                ),
            ]),
        )
    }));
    Json::object([
        ("type", Json::str("metrics")),
        ("counters", counters),
        ("histograms", histograms),
    ])
}

/// Parse a metrics object back into a [`MetricsSnapshot`].
pub fn metrics_from_json(obj: &Json) -> Result<MetricsSnapshot, String> {
    let mut counters = BTreeMap::new();
    if let Some(map) = obj.get("counters").and_then(Json::as_object) {
        for (k, v) in map {
            let n = v
                .as_i64()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| format!("counter `{k}` is not a count"))?;
            counters.insert(k.clone(), n);
        }
    }
    let mut histograms = BTreeMap::new();
    if let Some(map) = obj.get("histograms").and_then(Json::as_object) {
        for (k, v) in map {
            let buckets = v
                .get("buckets")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("histogram `{k}` missing buckets"))?
                .iter()
                .map(|b| {
                    b.as_i64()
                        .and_then(|i| u64::try_from(i).ok())
                        .ok_or_else(|| format!("histogram `{k}` bucket is not a count"))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            histograms.insert(
                k.clone(),
                HistogramSnapshot {
                    count: req_u64(v, "count")?,
                    sum_ns: req_u64(v, "sum_ns")?,
                    buckets,
                },
            );
        }
    }
    // Labeled series and gauges are not round-tripped through JSONL yet:
    // the trace format predates them and the parser tolerates their
    // absence, so a re-parsed snapshot carries empty vectors here.
    Ok(MetricsSnapshot {
        counters,
        histograms,
        ..MetricsSnapshot::default()
    })
}

/// Serialize a full snapshot as JSONL: one compact JSON object per line,
/// spans first (already sorted), metrics last.
pub fn to_jsonl(snapshot: &ObsSnapshot) -> String {
    let mut out = String::new();
    for span in &snapshot.spans {
        out.push_str(&span_to_json(span).to_compact());
        out.push('\n');
    }
    out.push_str(&metrics_to_json(&snapshot.metrics).to_compact());
    out.push('\n');
    out
}

/// Parse a JSONL trace back into a snapshot. Blank lines and objects with
/// an unrecognized `type` are skipped; a malformed line is an error.
pub fn parse_jsonl(text: &str) -> Result<ObsSnapshot, String> {
    let mut spans = Vec::new();
    let mut metrics = MetricsSnapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match obj.get("type").and_then(Json::as_str) {
            Some("span") => {
                spans.push(span_from_json(&obj).map_err(|e| format!("line {}: {e}", lineno + 1))?)
            }
            Some("metrics") => {
                metrics =
                    metrics_from_json(&obj).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            }
            _ => {} // forward-compatible: ignore unknown event types
        }
    }
    spans.sort_by_key(|s| (s.start_ns, s.id));
    Ok(ObsSnapshot { spans, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span() -> SpanRecord {
        SpanRecord {
            id: 7,
            parent: Some(3),
            trace: TraceId::from_u128(0x4bf9_2f35_77b3_4da6_a3ce_929d_0e0e_4736),
            name: "tool:select".into(),
            start_ns: 1000,
            end_ns: 2500,
            error: Some("denied (privilege): no".into()),
            attrs: vec![
                ("tool".into(), AttrValue::Str("select".into())),
                ("arg_bytes".into(), AttrValue::Int(42)),
                ("ok".into(), AttrValue::Bool(false)),
                ("ratio".into(), AttrValue::Float(0.5)),
                ("tool".into(), AttrValue::Str("dup-key".into())),
            ],
        }
    }

    #[test]
    fn span_round_trips_exactly() {
        let span = sample_span();
        let json = span_to_json(&span);
        assert_eq!(
            json.get("trace").and_then(Json::as_str),
            Some("4bf92f3577b34da6a3ce929d0e0e4736")
        );
        let back = span_from_json(&json).unwrap();
        assert_eq!(back, span);
    }

    #[test]
    fn pre_trace_span_lines_still_parse() {
        let line = "{\"type\":\"span\",\"id\":1,\"name\":\"x\",\"start_ns\":0,\"end_ns\":5}";
        let span = span_from_json(&Json::parse(line).unwrap()).unwrap();
        assert_eq!(span.trace, None);
        let bad = "{\"type\":\"span\",\"id\":1,\"trace\":\"zz\",\"name\":\"x\",\"start_ns\":0,\"end_ns\":5}";
        assert!(span_from_json(&Json::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn metrics_round_trip_exactly() {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("tool.calls".into(), 9);
        metrics.histograms.insert(
            "tool.latency.select".into(),
            HistogramSnapshot {
                count: 2,
                sum_ns: 3000,
                buckets: vec![2, 0, 0],
            },
        );
        let back = metrics_from_json(&metrics_to_json(&metrics)).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn jsonl_skips_unknown_types_and_blank_lines() {
        let span = sample_span();
        let mut text = to_jsonl(&ObsSnapshot {
            spans: vec![SpanRecord {
                parent: None,
                ..span.clone()
            }],
            metrics: MetricsSnapshot::default(),
        });
        text.push_str("\n{\"type\":\"future-event\",\"x\":1}\n");
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.spans.len(), 1);
        assert_eq!(parsed.spans[0].name, "tool:select");
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let err = parse_jsonl("{\"type\":\"span\"").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = parse_jsonl("{\"type\":\"span\",\"name\":\"x\"}").unwrap_err();
        assert!(err.contains("id"), "{err}");
    }
}
