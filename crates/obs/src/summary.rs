//! Human-readable per-run summary tables.
//!
//! Renders an [`crate::ObsSnapshot`] as aligned plain-text tables: counters,
//! latency histograms (count/mean/p50/p99), and spans aggregated by name.
//! Used by examples and benchkit reports; the JSONL export is the machine
//! format, this is the terminal format.

use crate::ObsSnapshot;

/// Format nanoseconds with an adaptive unit (ns / µs / ms / s).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Render the full snapshot as aligned text tables. Sections with no data
/// are omitted; an entirely empty snapshot renders a single note line.
pub fn render(snapshot: &ObsSnapshot) -> String {
    let mut out = String::new();

    if !snapshot.metrics.counters.is_empty() {
        out.push_str("== counters ==\n");
        let width = snapshot
            .metrics
            .counters
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(0);
        for (name, value) in &snapshot.metrics.counters {
            out.push_str(&format!("  {name:<width$}  {value:>10}\n"));
        }
    }

    if !snapshot.metrics.histograms.is_empty() {
        out.push_str("== latency ==\n");
        let width = snapshot
            .metrics
            .histograms
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(4);
        out.push_str(&format!(
            "  {:<width$}  {:>8}  {:>10}  {:>10}  {:>10}\n",
            "name", "count", "mean", "p50", "p99"
        ));
        for (name, h) in &snapshot.metrics.histograms {
            out.push_str(&format!(
                "  {:<width$}  {:>8}  {:>10}  {:>10}  {:>10}\n",
                name,
                h.count,
                fmt_ns(h.mean_ns()),
                fmt_ns(h.quantile_ns(0.5)),
                fmt_ns(h.quantile_ns(0.99)),
            ));
        }
    }

    if !snapshot.spans.is_empty() {
        use std::collections::BTreeMap;
        let mut by_name: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for span in &snapshot.spans {
            let entry = by_name.entry(span.name.as_str()).or_insert((0, 0, 0));
            entry.0 += 1;
            entry.1 += span.duration_ns();
            if span.error.is_some() {
                entry.2 += 1;
            }
        }
        out.push_str("== spans ==\n");
        let width = by_name.keys().map(|n| n.len()).max().unwrap_or(0).max(4);
        out.push_str(&format!(
            "  {:<width$}  {:>8}  {:>10}  {:>10}  {:>7}\n",
            "name", "count", "total", "mean", "errors"
        ));
        for (name, (count, total_ns, errors)) in &by_name {
            out.push_str(&format!(
                "  {:<width$}  {:>8}  {:>10}  {:>10}  {:>7}\n",
                name,
                count,
                fmt_ns(*total_ns),
                fmt_ns(total_ns / count.max(&1)),
                errors,
            ));
        }
    }

    if out.is_empty() {
        out.push_str("(no observability data recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn render_includes_all_sections() {
        let obs = Obs::in_memory();
        {
            let mut span = obs.span("tool:select");
            span.fail("boom");
        }
        obs.incr("tool.calls", 3);
        obs.observe_ns("tool.latency.select", 2_000_000);
        let text = render(&obs.snapshot());
        assert!(text.contains("== counters =="));
        assert!(text.contains("tool.calls"));
        assert!(text.contains("== latency =="));
        assert!(text.contains("tool.latency.select"));
        assert!(text.contains("== spans =="));
        assert!(text.contains("tool:select"));
    }

    #[test]
    fn render_empty_snapshot_notes_absence() {
        let text = render(&Obs::in_memory().snapshot());
        assert!(text.contains("no observability data"));
    }
}
