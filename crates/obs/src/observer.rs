//! Bridge between `toolproto`'s dispatch hook and the span/metrics kernel.
//!
//! [`RegistryObserver`] implements `toolproto::CallObserver`: every tool
//! call dispatched through an observed `Registry` becomes a `tool:{name}`
//! span (argument bytes, output bytes, rows, ok/error) nested under
//! whatever span is open on the calling thread, and bumps per-tool call,
//! error, denial, and latency metrics.

use crate::span::SpanGuard;
use crate::Obs;
use std::cell::RefCell;
use toolproto::{CallObserver, ToolError, ToolResult};

thread_local! {
    /// Spans for calls that have begun but not yet ended on this thread.
    /// A stack suffices because dispatch is synchronous and re-entrant
    /// (a proxy call runs nested producer calls on worker threads or
    /// inline on the same thread).
    static OPEN_CALLS: RefCell<Vec<SpanGuard>> = const { RefCell::new(Vec::new()) };
}

/// Observer that records each registry dispatch as a span plus metrics.
///
/// Metric names: `tool.calls`, `tool.calls.{tool}`, `tool.errors`,
/// `tool.errors.{tool}`, `tool.denied`, `tool.denied.{code}`, and latency
/// histogram `tool.latency.{tool}`. Labeled series (served via the admin
/// `/metrics` endpoint): counter `tool.calls{tool,outcome}` and histogram
/// `tool.latency{tool}`. The unlabeled dotted names are kept for
/// backwards compatibility with existing JSONL traces and summaries.
#[derive(Debug)]
pub struct RegistryObserver {
    obs: Obs,
}

impl RegistryObserver {
    /// Observer recording into `obs`.
    pub fn new(obs: Obs) -> Self {
        RegistryObserver { obs }
    }
}

/// Classify a tool result into the low-cardinality `outcome` label:
/// `ok`, `denied`, `conflict` (MVCC serialization conflict — the retry
/// storm signal), or `tool-error` for everything else.
pub fn outcome_of(result: &ToolResult) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(ToolError::Denied { .. }) => "denied",
        // minidb's SerializationConflict keeps this stable message prefix
        // through `db_error_to_tool`, so string matching here is reliable.
        Err(ToolError::Execution(msg)) if msg.contains("serialization conflict") => "conflict",
        Err(_) => "tool-error",
    }
}

impl CallObserver for RegistryObserver {
    fn begin(&self, tool: &str, arg_bytes: usize) -> u64 {
        let mut span = self.obs.span(&format!("tool:{tool}"));
        span.attr("tool", tool);
        span.attr("arg_bytes", arg_bytes);
        let token = span.id().unwrap_or(0);
        let _ = OPEN_CALLS.try_with(|calls| calls.borrow_mut().push(span));
        token
    }

    fn end(&self, token: u64, tool: &str, result: &ToolResult, out_bytes: usize) {
        let span = OPEN_CALLS
            .try_with(|calls| {
                let mut calls = calls.borrow_mut();
                calls
                    .iter()
                    .rposition(|s| s.id() == Some(token))
                    .map(|pos| calls.remove(pos))
            })
            .ok()
            .flatten();
        let Some(mut span) = span else {
            return;
        };

        self.obs.incr("tool.calls", 1);
        self.obs.incr(&format!("tool.calls.{tool}"), 1);
        let outcome = outcome_of(result);
        self.obs
            .incr_with("tool.calls", &[("tool", tool), ("outcome", outcome)], 1);
        span.attr("out_bytes", out_bytes);
        span.attr("outcome", outcome);
        match result {
            Ok(out) => {
                span.attr("ok", true);
                if let Some(rows) = out.rows {
                    span.attr("rows", rows);
                }
            }
            Err(err) => {
                span.attr("ok", false);
                span.fail(err.to_string());
                self.obs.incr("tool.errors", 1);
                self.obs.incr(&format!("tool.errors.{tool}"), 1);
                if let ToolError::Denied { code, context, .. } = err {
                    self.obs.incr("tool.denied", 1);
                    self.obs.incr(&format!("tool.denied.{code}"), 1);
                    for (key, value) in context.fields() {
                        span.attr(&format!("denial.{key}"), value);
                    }
                }
            }
        }
        let elapsed = span.elapsed_ns();
        self.obs
            .observe_ns(&format!("tool.latency.{tool}"), elapsed);
        self.obs
            .observe_ns_with("tool.latency", &[("tool", tool)], elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_tree;
    use std::sync::Arc;
    use toolproto::{ArgSpec, ArgType, Args, FnTool, Json, Registry, Signature, ToolOutput};

    fn observed_registry(obs: &Obs) -> Registry {
        let mut reg = Registry::new();
        reg.register_tool(FnTool::new(
            "echo",
            "echo",
            Signature::new(vec![ArgSpec::required("x", ArgType::Integer, "v")]),
            |args: &Args| Ok(ToolOutput::with_rows(args["x"].clone(), 3)),
        ));
        reg.register_tool(FnTool::new(
            "deny",
            "always denied",
            Signature::new(vec![]),
            |_: &Args| {
                Err(ToolError::denied_with(
                    "policy",
                    "object off-limits",
                    toolproto::DenialContext::default().with_object("secrets"),
                ))
            },
        ));
        reg.set_observer(obs.registry_observer().expect("enabled"));
        reg
    }

    #[test]
    fn calls_become_spans_and_metrics() {
        let obs = Obs::in_memory();
        let reg = observed_registry(&obs);
        reg.call("echo", &Json::object([("x", Json::num(1.0))]))
            .unwrap();
        reg.call("deny", &Json::object([] as [(&str, Json); 0]))
            .unwrap_err();
        reg.call("missing", &Json::Null).unwrap_err();

        let snap = obs.snapshot();
        validate_tree(&snap.spans).unwrap();
        assert_eq!(snap.spans.len(), 3);

        let echo = snap.spans.iter().find(|s| s.name == "tool:echo").unwrap();
        assert_eq!(echo.attr("rows"), Some(&crate::AttrValue::Int(3)));
        assert!(echo.error.is_none());

        let deny = snap.spans.iter().find(|s| s.name == "tool:deny").unwrap();
        assert_eq!(
            deny.attr("denial.object"),
            Some(&crate::AttrValue::Str("secrets".into()))
        );
        assert!(deny.error.as_deref().unwrap().contains("policy"));

        assert_eq!(snap.metrics.counter("tool.calls"), 3);
        assert_eq!(snap.metrics.counter("tool.calls.echo"), 1);
        assert_eq!(snap.metrics.counter("tool.errors"), 2);
        assert_eq!(snap.metrics.counter("tool.denied"), 1);
        assert_eq!(snap.metrics.counter("tool.denied.policy"), 1);
        assert_eq!(snap.metrics.histograms["tool.latency.echo"].count, 1);
    }

    #[test]
    fn outcome_labels_classify_results() {
        let obs = Obs::in_memory();
        let mut reg = Registry::new();
        reg.register_tool(FnTool::new(
            "ok",
            "succeeds",
            Signature::new(vec![]),
            |_: &Args| Ok(ToolOutput::value(Json::Null)),
        ));
        reg.register_tool(FnTool::new(
            "conflict",
            "mvcc conflict",
            Signature::new(vec![]),
            |_: &Args| {
                Err(ToolError::Execution(
                    "serialization conflict: concurrent write to users".into(),
                ))
            },
        ));
        reg.register_tool(FnTool::new(
            "boom",
            "plain failure",
            Signature::new(vec![]),
            |_: &Args| Err(ToolError::Execution("table missing".into())),
        ));
        reg.register_tool(FnTool::new(
            "deny",
            "denied",
            Signature::new(vec![]),
            |_: &Args| Err(ToolError::denied("policy", "no")),
        ));
        reg.set_observer(obs.registry_observer().expect("enabled"));
        let empty = Json::object([] as [(&str, Json); 0]);
        reg.call("ok", &empty).unwrap();
        reg.call("ok", &empty).unwrap();
        reg.call("conflict", &empty).unwrap_err();
        reg.call("boom", &empty).unwrap_err();
        reg.call("deny", &empty).unwrap_err();

        let snap = obs.snapshot();
        let m = &snap.metrics;
        assert_eq!(
            m.labeled_counter("tool.calls", &[("tool", "ok"), ("outcome", "ok")]),
            2
        );
        assert_eq!(
            m.labeled_counter(
                "tool.calls",
                &[("tool", "conflict"), ("outcome", "conflict")]
            ),
            1
        );
        assert_eq!(
            m.labeled_counter("tool.calls", &[("tool", "boom"), ("outcome", "tool-error")]),
            1
        );
        assert_eq!(
            m.labeled_counter("tool.calls", &[("tool", "deny"), ("outcome", "denied")]),
            1
        );
        let lat = m
            .labeled_histograms
            .iter()
            .find(|h| h.name == "tool.latency" && h.labels == [("tool".into(), "ok".into())])
            .expect("labeled latency series");
        assert_eq!(lat.histogram.count, 2);

        let conflict_span = snap
            .spans
            .iter()
            .find(|s| s.name == "tool:conflict")
            .unwrap();
        assert_eq!(
            conflict_span.attr("outcome"),
            Some(&crate::AttrValue::Str("conflict".into()))
        );
    }

    #[test]
    fn call_spans_nest_under_open_span() {
        let obs = Obs::in_memory();
        let reg = observed_registry(&obs);
        let root_id = {
            let root = obs.span("llm:call");
            reg.call("echo", &Json::object([("x", Json::num(1.0))]))
                .unwrap();
            root.id().unwrap()
        };
        let snap = obs.snapshot();
        let call = snap.spans.iter().find(|s| s.name == "tool:echo").unwrap();
        assert_eq!(call.parent, Some(root_id));
    }

    #[test]
    fn observer_works_across_threads() {
        let obs = Obs::in_memory();
        let reg = Arc::new(observed_registry(&obs));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for _ in 0..25 {
                        reg.call("echo", &Json::object([("x", Json::num(1.0))]))
                            .unwrap();
                    }
                });
            }
        });
        let snap = obs.snapshot();
        assert_eq!(snap.metrics.counter("tool.calls.echo"), 100);
        assert_eq!(snap.spans.len(), 100);
        validate_tree(&snap.spans).unwrap();
    }
}
