//! Trace identity: 128-bit trace ids, 64-bit span ids, and the
//! W3C-traceparent-style context that carries them across the wire.
//!
//! A **trace** names one logical request end to end — from the client's
//! `tools/call` frame through the wire dispatch, the gate, the tool, and
//! every SQL span it executes — across process and thread boundaries. A
//! **span id** names one node inside that trace. Ids come from a seedable
//! per-process generator ([`seed_ids`]): deterministic under a fixed seed
//! (tests), collision-resistant by default (seeded from wall clock and
//! process id at first use).
//!
//! The wire form is the W3C `traceparent` header layout,
//! `00-{trace:032x}-{parent:016x}-01`, chosen so the field is immediately
//! recognizable to anyone who has operated an OpenTelemetry system.
//! Parsing is strict ([`TraceContext::parse`]): anything malformed —
//! wrong field widths, non-hex bytes, the forbidden all-zero ids — yields
//! `None`, and callers fall back to a fresh root rather than trusting
//! attacker-controlled input.

use std::sync::atomic::{AtomicU64, Ordering};

/// A 128-bit trace identifier. All-zero is invalid (per W3C trace-context)
/// and never produced by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u128);

impl TraceId {
    /// Wrap a raw value. Returns `None` for the invalid all-zero id.
    pub fn from_u128(v: u128) -> Option<TraceId> {
        if v == 0 {
            None
        } else {
            Some(TraceId(v))
        }
    }

    /// The raw 128-bit value.
    pub fn as_u128(&self) -> u128 {
        self.0
    }

    /// Parse exactly 32 lowercase-or-uppercase hex chars; rejects the
    /// all-zero id.
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16)
            .ok()
            .and_then(TraceId::from_u128)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A 64-bit span identifier as carried in a [`TraceContext`]. All-zero is
/// invalid. (Locally recorded spans keep their plain `u64` ids; this
/// newtype types the *wire* form, where validation matters.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// Wrap a raw value. Returns `None` for the invalid all-zero id.
    pub fn from_u64(v: u64) -> Option<SpanId> {
        if v == 0 {
            None
        } else {
            Some(SpanId(v))
        }
    }

    /// The raw 64-bit value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Parse exactly 16 hex chars; rejects the all-zero id.
    pub fn parse_hex(s: &str) -> Option<SpanId> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().and_then(SpanId::from_u64)
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A trace context as carried on the wire: the trace id plus the sender's
/// span id (the remote parent of whatever the receiver opens next).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace this request belongs to.
    pub trace: TraceId,
    /// The sender-side span that caused this request.
    pub parent: SpanId,
}

impl TraceContext {
    /// A context with the given ids.
    pub fn new(trace: TraceId, parent: SpanId) -> TraceContext {
        TraceContext { trace, parent }
    }

    /// A fresh root context: new trace id, new synthetic root span id.
    pub fn new_root() -> TraceContext {
        TraceContext {
            trace: next_trace_id(),
            parent: next_span_id(),
        }
    }

    /// Render as a W3C-style traceparent: `00-{trace}-{parent}-01`.
    pub fn to_traceparent(&self) -> String {
        format!("00-{}-{}-01", self.trace, self.parent)
    }

    /// Strictly parse a traceparent. Accepts only version `00`, a 32-hex
    /// non-zero trace id, a 16-hex non-zero parent id, and 2-hex flags.
    /// Anything else — wrong widths, separators, non-hex, all-zero ids —
    /// returns `None`; the input is untrusted, so the caller falls back to
    /// a fresh root instead of guessing.
    pub fn parse(s: &str) -> Option<TraceContext> {
        let mut parts = s.split('-');
        let version = parts.next()?;
        let trace = parts.next()?;
        let parent = parts.next()?;
        let flags = parts.next()?;
        if parts.next().is_some() || version != "00" {
            return None;
        }
        if flags.len() != 2 || !flags.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(TraceContext {
            trace: TraceId::parse_hex(trace)?,
            parent: SpanId::parse_hex(parent)?,
        })
    }
}

impl std::fmt::Display for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_traceparent())
    }
}

/// Per-process id generator state: a counter advanced by a large odd
/// constant and scrambled through splitmix64, so ids are unique within a
/// process, well-distributed, and fully determined by the seed.
static ID_STATE: AtomicU64 = AtomicU64::new(0);
/// Set once the state holds a real seed (0 doubles as "unseeded", but a
/// caller may legitimately seed with 0, hence a separate flag).
static ID_SEEDED: AtomicU64 = AtomicU64::new(0);

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed the per-process id generator. Call at most once, before any ids
/// are drawn, to make the id sequence deterministic (tests, replay). When
/// never called, the generator self-seeds from the wall clock and process
/// id at first use.
pub fn seed_ids(seed: u64) {
    ID_STATE.store(seed, Ordering::SeqCst);
    ID_SEEDED.store(1, Ordering::SeqCst);
}

fn next_raw() -> u64 {
    if ID_SEEDED.load(Ordering::Relaxed) == 0 {
        // Lazy default seed: wall clock nanos mixed with the pid. A benign
        // race (two threads seeding concurrently) just picks one of two
        // valid seeds; the subsequent fetch_add keeps draws unique.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seed = splitmix64(nanos ^ u64::from(std::process::id()).rotate_left(32));
        if ID_SEEDED
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            ID_STATE.store(seed, Ordering::SeqCst);
        }
    }
    ID_STATE.fetch_add(GOLDEN_GAMMA, Ordering::Relaxed)
}

/// Draw the next trace id from the per-process generator (never all-zero).
pub fn next_trace_id() -> TraceId {
    let n = next_raw();
    let hi = splitmix64(n);
    let lo = splitmix64(n ^ 0x5851_f42d_4c95_7f2d);
    let v = (u128::from(hi) << 64) | u128::from(lo);
    TraceId(if v == 0 { 1 } else { v })
}

/// Draw the next synthetic span id (for wire clients that have no local
/// span tree but must name a remote parent; never all-zero).
pub fn next_span_id() -> SpanId {
    let v = splitmix64(next_raw() ^ 0x2545_f491_4f6c_dd1d);
    SpanId(if v == 0 { 1 } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext::new_root();
        let text = ctx.to_traceparent();
        assert_eq!(text.len(), 2 + 1 + 32 + 1 + 16 + 1 + 2);
        let back = TraceContext::parse(&text).unwrap();
        assert_eq!(back, ctx);
    }

    #[test]
    fn parse_rejects_malformed_inputs() {
        for bad in [
            "",
            "00",
            "00-abc-def-01",
            // all-zero trace id
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
            // all-zero parent id
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
            // non-hex trace id
            "00-4bf92f3577b34da6a3ce929d0e0e473z-00f067aa0ba902b7-01",
            // wrong version
            "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
            // truncated / extended
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
            // bad flags
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-013",
        ] {
            assert!(TraceContext::parse(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn parse_accepts_w3c_example() {
        let ctx =
            TraceContext::parse("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01").unwrap();
        assert_eq!(ctx.trace.to_string(), "4bf92f3577b34da6a3ce929d0e0e4736");
        assert_eq!(ctx.parent.to_string(), "00f067aa0ba902b7");
    }

    #[test]
    fn generated_ids_are_distinct() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_ne!(next_span_id(), next_span_id());
    }

    #[test]
    fn zero_ids_are_rejected() {
        assert!(TraceId::from_u128(0).is_none());
        assert!(SpanId::from_u64(0).is_none());
        assert!(TraceId::parse_hex("0".repeat(32).as_str()).is_none());
    }
}
