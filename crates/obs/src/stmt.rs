//! pg_stat_statements-style statement statistics store.
//!
//! Aggregates every executed SQL statement per `(user, normalized
//! statement)` key: call count, total/mean/max latency, rows returned,
//! plan-cache hits, and conflict/denial counts. The *caller* supplies the
//! normalized statement text (the gate's token normalizer, so identical
//! statements with different literals collapse to one key) — this crate
//! stays dependency-free and the normalization policy stays in one place.
//!
//! Cardinality is bounded: the store is an LRU over keys with a fixed
//! capacity; inserting past it evicts the least-recently-touched entry and
//! counts the eviction, so a hostile or exploratory workload cannot grow
//! memory without the loss being visible.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use toolproto::Json;

/// How an executed statement ended, for conflict/denial accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementOutcome {
    /// Executed successfully.
    Ok,
    /// Lost a first-writer-wins serialization conflict.
    Conflict,
    /// Denied by a gate (privilege, policy, budget).
    Denied,
    /// Failed for any other reason.
    Error,
}

/// Aggregated statistics for one `(user, statement)` key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatementStats {
    /// Executions recorded.
    pub calls: u64,
    /// Sum of execution latencies in nanoseconds.
    pub total_ns: u64,
    /// Worst single execution latency in nanoseconds.
    pub max_ns: u64,
    /// Total rows returned.
    pub rows: u64,
    /// Executions that hit the prepared-plan cache.
    pub cache_hits: u64,
    /// Executions lost to serialization conflicts.
    pub conflicts: u64,
    /// Executions denied by a gate.
    pub denials: u64,
    /// Executions failing for other reasons.
    pub errors: u64,
}

impl StatementStats {
    /// Mean latency in nanoseconds (0 when no calls).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// One row of a [`StatementStore`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementEntry {
    /// The user the statement executed as.
    pub user: String,
    /// The token-normalized statement text.
    pub statement: String,
    /// The aggregated statistics.
    pub stats: StatementStats,
}

struct StoreEntry {
    stats: StatementStats,
    /// Logical clock of the last touch, for LRU eviction.
    touched: u64,
}

struct StoreInner {
    entries: HashMap<(String, String), StoreEntry>,
    clock: u64,
}

/// The statistics registry. Concurrency-safe; one lives inside every
/// enabled [`crate::Obs`] handle.
pub struct StatementStore {
    capacity: usize,
    inner: Mutex<StoreInner>,
    evicted: AtomicU64,
}

impl std::fmt::Debug for StatementStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatementStore")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("evicted", &self.evicted_total())
            .finish()
    }
}

impl StatementStore {
    /// A store retaining at most `capacity` distinct `(user, statement)`
    /// keys (minimum 1).
    pub fn new(capacity: usize) -> Self {
        StatementStore {
            capacity: capacity.max(1),
            inner: Mutex::new(StoreInner {
                entries: HashMap::new(),
                clock: 0,
            }),
            evicted: AtomicU64::new(0),
        }
    }

    /// Record one execution of `statement` (already normalized) by `user`.
    pub fn record(
        &self,
        user: &str,
        statement: &str,
        latency_ns: u64,
        rows: u64,
        cache_hit: bool,
        outcome: StatementOutcome,
    ) {
        let mut inner = self.inner.lock().expect("stmt lock");
        inner.clock += 1;
        let clock = inner.clock;
        let key = (user.to_owned(), statement.to_owned());
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            // Evict the least-recently-touched key to admit the new one.
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        let entry = inner.entries.entry(key).or_insert(StoreEntry {
            stats: StatementStats::default(),
            touched: clock,
        });
        entry.touched = clock;
        entry.stats.calls += 1;
        entry.stats.total_ns += latency_ns;
        entry.stats.max_ns = entry.stats.max_ns.max(latency_ns);
        entry.stats.rows += rows;
        entry.stats.cache_hits += u64::from(cache_hit);
        match outcome {
            StatementOutcome::Ok => {}
            StatementOutcome::Conflict => entry.stats.conflicts += 1,
            StatementOutcome::Denied => entry.stats.denials += 1,
            StatementOutcome::Error => entry.stats.errors += 1,
        }
    }

    /// Distinct keys currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("stmt lock").entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured key capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Keys evicted since construction.
    pub fn evicted_total(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// All entries, sorted by total time descending (the pg_stat_statements
    /// reading order: the statements costing the most come first).
    pub fn snapshot(&self) -> Vec<StatementEntry> {
        let inner = self.inner.lock().expect("stmt lock");
        let mut out: Vec<StatementEntry> = inner
            .entries
            .iter()
            .map(|((user, statement), e)| StatementEntry {
                user: user.clone(),
                statement: statement.clone(),
                stats: e.stats.clone(),
            })
            .collect();
        drop(inner);
        out.sort_by(|a, b| {
            b.stats
                .total_ns
                .cmp(&a.stats.total_ns)
                .then_with(|| a.user.cmp(&b.user))
                .then_with(|| a.statement.cmp(&b.statement))
        });
        out
    }

    /// JSON form served by the admin `/statements` endpoint.
    pub fn to_json(&self) -> Json {
        let statements = Json::array(self.snapshot().into_iter().map(|e| {
            Json::object([
                ("user", Json::str(e.user)),
                ("statement", Json::str(e.statement)),
                ("calls", Json::num(e.stats.calls as f64)),
                ("total_ns", Json::num(e.stats.total_ns as f64)),
                ("mean_ns", Json::num(e.stats.mean_ns() as f64)),
                ("max_ns", Json::num(e.stats.max_ns as f64)),
                ("rows", Json::num(e.stats.rows as f64)),
                ("cache_hits", Json::num(e.stats.cache_hits as f64)),
                ("conflicts", Json::num(e.stats.conflicts as f64)),
                ("denials", Json::num(e.stats.denials as f64)),
                ("errors", Json::num(e.stats.errors as f64)),
            ])
        }));
        Json::object([
            ("statements", statements),
            ("entries", Json::num(self.len() as f64)),
            ("capacity", Json::num(self.capacity as f64)),
            ("evicted_total", Json::num(self.evicted_total() as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_per_user_and_statement() {
        let store = StatementStore::new(16);
        store.record("alice", "select $n", 100, 5, false, StatementOutcome::Ok);
        store.record("alice", "select $n", 300, 7, true, StatementOutcome::Ok);
        store.record("bob", "select $n", 50, 1, false, StatementOutcome::Denied);
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        // Sorted by total time: alice (400ns) first.
        assert_eq!(snap[0].user, "alice");
        assert_eq!(snap[0].stats.calls, 2);
        assert_eq!(snap[0].stats.total_ns, 400);
        assert_eq!(snap[0].stats.mean_ns(), 200);
        assert_eq!(snap[0].stats.max_ns, 300);
        assert_eq!(snap[0].stats.rows, 12);
        assert_eq!(snap[0].stats.cache_hits, 1);
        assert_eq!(snap[1].user, "bob");
        assert_eq!(snap[1].stats.denials, 1);
    }

    #[test]
    fn lru_eviction_is_counted_and_bounded() {
        let store = StatementStore::new(2);
        store.record("u", "s1", 1, 0, false, StatementOutcome::Ok);
        store.record("u", "s2", 1, 0, false, StatementOutcome::Ok);
        store.record("u", "s1", 1, 0, false, StatementOutcome::Ok); // touch s1
        store.record("u", "s3", 1, 0, false, StatementOutcome::Ok); // evicts s2
        assert_eq!(store.len(), 2);
        assert_eq!(store.evicted_total(), 1);
        let keys: Vec<String> = store.snapshot().into_iter().map(|e| e.statement).collect();
        assert!(
            keys.contains(&"s1".to_owned()) && keys.contains(&"s3".to_owned()),
            "{keys:?}"
        );
    }

    #[test]
    fn conflict_and_error_outcomes_are_tracked() {
        let store = StatementStore::new(4);
        store.record("u", "update", 10, 0, false, StatementOutcome::Conflict);
        store.record("u", "update", 10, 0, false, StatementOutcome::Error);
        let snap = store.snapshot();
        assert_eq!(snap[0].stats.conflicts, 1);
        assert_eq!(snap[0].stats.errors, 1);
    }

    #[test]
    fn json_shape_includes_store_counters() {
        let store = StatementStore::new(4);
        store.record("u", "select $n", 100, 2, true, StatementOutcome::Ok);
        let json = store.to_json();
        assert_eq!(json.get("entries").and_then(Json::as_i64), Some(1));
        assert_eq!(json.get("evicted_total").and_then(Json::as_i64), Some(0));
        let rows = json.get("statements").and_then(Json::as_array).unwrap();
        assert_eq!(rows[0].get("user").and_then(Json::as_str), Some("u"));
        assert_eq!(rows[0].get("cache_hits").and_then(Json::as_i64), Some(1));
    }
}
