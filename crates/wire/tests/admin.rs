//! Admin-plane integration tests: the telemetry endpoints against a live
//! wire server, over real sockets.

use minidb::Database;
use obs::{FlightConfig, Obs, ObsConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use toolproto::{Args, FnTool, Json, Registry, Signature, ToolOutput};
use wire::{AdminServer, Client, Tenancy, WireConfig, WireServer};

fn demo_db() -> Database {
    let db = Database::new();
    let mut s = db.session("admin").unwrap();
    s.execute_sql("CREATE TABLE sales (id INTEGER PRIMARY KEY, amount REAL)")
        .unwrap();
    s.execute_sql("INSERT INTO sales VALUES (1, 10.0)").unwrap();
    db
}

/// Minimal HTTP GET over a plain socket: returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn metrics_health_and_slow_endpoints() {
    let obs = Obs::with_flight(
        &ObsConfig::InMemory,
        FlightConfig::with_threshold_ns(1_000_000),
    );
    // An external tool slow enough to trip the 1ms flight threshold.
    let mut external = Registry::new();
    external.register_tool(FnTool::new(
        "sleepy",
        "sleeps past the slow threshold",
        Signature::new(vec![]),
        |_: &Args| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(ToolOutput::value(Json::str("done")))
        },
    ));
    let server = WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(demo_db()).with_external(external),
        WireConfig::default(),
        obs.clone(),
    )
    .unwrap();
    let admin = AdminServer::bind("127.0.0.1:0", obs.clone(), server.ready_handle()).unwrap();
    let admin_addr = admin.local_addr();

    let (status, body) = http_get(admin_addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    let (status, body) = http_get(admin_addr, "/readyz");
    assert_eq!(status, 200);
    assert_eq!(body, "ready\n");

    // Drive traffic: one fast SQL call, one slow external call.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.initialize("admin").unwrap();
    client
        .call(
            "select",
            &Json::object([("sql", Json::str("SELECT * FROM sales"))]),
        )
        .unwrap()
        .unwrap();
    client
        .call("sleepy", &Json::object([] as [(&str, Json); 0]))
        .unwrap()
        .unwrap();

    // /metrics: tool-labeled counter, mvcc gauge, latency histogram.
    let (status, text) = http_get(admin_addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        text.contains("tool_calls_total{outcome=\"ok\",tool=\"select\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("# TYPE minidb_mvcc_retained_versions gauge"),
        "{text}"
    );
    assert!(text.contains("wire_active_sessions 1"), "{text}");
    assert!(text.contains("# TYPE tool_latency histogram"), "{text}");
    assert!(
        text.contains("tool_latency_bucket{tool=\"sleepy\",le=\"+Inf\"} 1"),
        "{text}"
    );
    assert!(text.contains("process_uptime_seconds"), "{text}");

    // /slow: the sleepy call was captured with its span tree.
    let (status, body) = http_get(admin_addr, "/slow");
    assert_eq!(status, 200);
    let json = Json::parse(&body).unwrap();
    let calls = json.get("slow_calls").and_then(Json::as_array).unwrap();
    assert!(!calls.is_empty(), "{body}");
    let slow = &calls[calls.len() - 1];
    let spans = slow.get("spans").and_then(Json::as_array).unwrap();
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        names
            .iter()
            .any(|n| n.starts_with("wire:call") || n.starts_with("tool:")),
        "{names:?}"
    );
    // The wire:call wrapper captures its nested tool:sleepy child.
    assert!(names.contains(&"tool:sleepy"), "{names:?}");

    let (status, _) = http_get(admin_addr, "/nope");
    assert_eq!(status, 404);

    // Shutdown drains: readiness flips before the server object is gone.
    drop(client);
    server.shutdown();
    let (status, body) = http_get(admin_addr, "/readyz");
    assert_eq!(status, 503);
    assert_eq!(body, "draining\n");
    // Liveness is still green — the process is healthy, just not serving.
    let (status, _) = http_get(admin_addr, "/healthz");
    assert_eq!(status, 200);
    admin.shutdown();
}

#[test]
fn queue_depth_and_session_gauges_settle_to_zero() {
    let obs = Obs::in_memory();
    let server = WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(demo_db()),
        WireConfig::default(),
        obs.clone(),
    )
    .unwrap();
    let admin = AdminServer::bind("127.0.0.1:0", obs.clone(), server.ready_handle()).unwrap();
    {
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.initialize("admin").unwrap();
        client
            .call("select", &Json::object([("sql", Json::str("SELECT 1"))]))
            .unwrap()
            .unwrap();
        let m = obs.snapshot().metrics;
        assert_eq!(m.gauge("wire.active_sessions", &[]), Some(1.0));
        assert_eq!(
            m.labeled_counter("wire.calls", &[("tool", "select"), ("user", "admin")]),
            1
        );
    }
    // The connection thread notices the closed socket and drops the
    // session; poll briefly rather than racing it.
    let mut active = 1.0;
    for _ in 0..100 {
        active = obs
            .snapshot()
            .metrics
            .gauge("wire.active_sessions", &[])
            .unwrap();
        if active == 0.0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(active, 0.0);
    assert_eq!(
        obs.snapshot().metrics.gauge("wire.queue_depth", &[]),
        Some(0.0)
    );
    admin.shutdown();
    server.shutdown();
}
