//! Cross-layer trace integrity: one client-supplied trace id must name the
//! wire span, the gate span, the tool span, and the SQL span of the same
//! call — and two concurrent sessions must never share a trace.

use minidb::Database;
use obs::{AttrValue, Obs, SpanRecord, TraceContext, TraceId};
use toolproto::Json;
use wire::{Client, Tenancy, WireConfig, WireServer};

fn demo_db() -> Database {
    let db = Database::new();
    let mut s = db.session("admin").unwrap();
    s.execute_sql("CREATE TABLE sales (id INTEGER PRIMARY KEY, amount REAL)")
        .unwrap();
    s.execute_sql("INSERT INTO sales VALUES (1, 10.0)").unwrap();
    db
}

/// Bind a gated server (plan cache on, so the gate layer contributes a
/// `gate:plan` span to every SQL call) over a shared in-memory obs plane.
fn serve_gated(obs: &Obs) -> WireServer {
    WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(demo_db()).with_gate(gate::GateConfig::default().with_cache()),
        WireConfig::default(),
        obs.clone(),
    )
    .unwrap()
}

fn spans_named<'a>(spans: &'a [SpanRecord], name: &str) -> Vec<&'a SpanRecord> {
    spans.iter().filter(|s| s.name == name).collect()
}

#[test]
fn client_supplied_trace_id_names_every_layer() {
    let obs = Obs::in_memory();
    let server = serve_gated(&obs);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.initialize("admin").unwrap();

    // A fixed, recognizable trace context supplied by the client.
    let ctx = TraceContext::parse("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
        .expect("w3c example parses");
    let out = client
        .call_traced(
            "select",
            &Json::object([("sql", Json::str("SELECT * FROM sales"))]),
            &ctx,
        )
        .unwrap()
        .unwrap();
    assert_eq!(out.rows, Some(1));
    // The response echoes the effective traceparent back to the caller.
    assert_eq!(
        client.last_traceparent(),
        Some(ctx.to_traceparent().as_str())
    );
    client.shutdown().unwrap();
    server.shutdown();

    let spans = obs.snapshot().spans;
    obs::validate_tree(&spans).expect("span tree is coherent");
    // Every layer of the call carries the client's trace id.
    for name in ["wire:call", "gate:plan", "tool:select", "sql:execute"] {
        let layer = spans_named(&spans, name);
        assert!(!layer.is_empty(), "no {name} span recorded");
        for span in layer {
            assert_eq!(
                span.trace,
                Some(ctx.trace),
                "{name} span is outside the client's trace"
            );
        }
    }
    // The adopted wire:call is a local root: the client's span id is not a
    // local span, so it rides along as an attribute instead of a parent
    // edge that validate_tree could never check.
    let call = spans_named(&spans, "wire:call")[0];
    assert_eq!(call.parent, None, "adopted call is a local trace root");
    assert_eq!(
        call.attr("trace.remote_parent"),
        Some(&AttrValue::from(ctx.parent.to_string()))
    );
    // The session span stays in its own trace: the client named only the
    // call, not the connection.
    for session in spans_named(&spans, "wire:session") {
        assert_ne!(session.trace, Some(ctx.trace));
    }
}

#[test]
fn concurrent_sessions_never_share_a_trace() {
    let obs = Obs::in_memory();
    let server = serve_gated(&obs);
    let addr = server.local_addr();

    // Two sessions, each issuing calls under its own explicit trace ids,
    // interleaved by the server's worker pool.
    const CALLS: u32 = 8;
    let traces: [u128; 2] = [0x1111_2222_3333_4444, 0xaaaa_bbbb_cccc_dddd];
    std::thread::scope(|scope| {
        for base in traces {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.initialize("admin").unwrap();
                for i in 0..CALLS {
                    let ctx = TraceContext::new(
                        TraceId::from_u128(base + u128::from(i)).unwrap(),
                        obs::next_span_id(),
                    );
                    client
                        .call_traced(
                            "select",
                            &Json::object([("sql", Json::str("SELECT * FROM sales"))]),
                            &ctx,
                        )
                        .unwrap()
                        .unwrap();
                }
                client.shutdown().unwrap();
            });
        }
    });
    server.shutdown();

    let spans = obs.snapshot().spans;
    obs::validate_tree(&spans).expect("span tree is coherent");
    let calls = spans_named(&spans, "wire:call");
    assert_eq!(calls.len(), (CALLS as usize) * 2);
    // Every call sits in exactly the trace its client supplied, and no two
    // calls — within a session or across the two — ever share one.
    let mut seen = std::collections::BTreeSet::new();
    for call in &calls {
        let trace = call.trace.expect("wire:call carries a trace");
        assert!(
            traces
                .iter()
                .any(|base| trace.as_u128().wrapping_sub(*base) < u128::from(CALLS)),
            "wire:call trace {trace} was never supplied by a client"
        );
        assert!(seen.insert(trace), "two calls share trace {trace}");
    }
    // Descendant layers never leak across traces: each sql:execute span's
    // trace belongs to exactly one of the supplied ranges.
    for sql in spans_named(&spans, "sql:execute") {
        let trace = sql.trace.expect("sql:execute carries a trace");
        assert!(
            traces
                .iter()
                .any(|base| trace.as_u128().wrapping_sub(*base) < u128::from(CALLS)),
            "sql:execute trace {trace} was never supplied by a client"
        );
    }
}
