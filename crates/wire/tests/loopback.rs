//! Loopback integration tests: every failure mode in the threat model gets
//! a typed JSON-RPC error (never a panic, never a hang past the deadline),
//! and privilege gating holds across the wire.

use minidb::Database;
use obs::Obs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use toolproto::{Args, FnTool, Json, Registry, Signature, ToolError, ToolOutput};
use wire::{
    mirror_registry, Client, ErrorCode, FrameError, Tenancy, WireConfig, WireError, WireServer,
};

fn demo_db() -> Database {
    let db = Database::new();
    let mut s = db.session("admin").unwrap();
    s.execute_sql("CREATE TABLE sales (id INTEGER PRIMARY KEY, amount REAL)")
        .unwrap();
    s.execute_sql("INSERT INTO sales VALUES (1, 10.0)").unwrap();
    db.create_user("reader", false).unwrap();
    db.grant("reader", sqlkit::Action::Select, "sales").unwrap();
    db
}

fn serve(config: WireConfig) -> WireServer {
    WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(demo_db()),
        config,
        Obs::in_memory(),
    )
    .unwrap()
}

/// Raw-socket helper: send one line, read one line back.
fn roundtrip_line(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    read_line(stream)
}

fn read_line(stream: &mut TcpStream) -> String {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => out.push(byte[0]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
    String::from_utf8(out).unwrap()
}

fn error_code(frame: &str) -> i64 {
    Json::parse(frame)
        .unwrap()
        .pointer("/error/code")
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("no error code in: {frame}"))
}

#[test]
fn full_session_lifecycle_over_tcp() {
    let server = serve(WireConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    let init = client.initialize("admin").unwrap();
    assert_eq!(
        init.get("protocol").and_then(Json::as_str),
        Some(wire::PROTOCOL)
    );
    let tools = client.tools_list().unwrap();
    assert!(tools.iter().any(|t| t.name == "select"));
    let out = client
        .call(
            "select",
            &Json::object([("sql", Json::str("SELECT * FROM sales"))]),
        )
        .unwrap()
        .unwrap();
    assert_eq!(out.rows, Some(1));
    client.shutdown().unwrap();
    server.shutdown();
}

#[test]
fn privilege_gating_holds_across_the_wire() {
    let server = serve(WireConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.initialize("reader").unwrap();
    let tools = client.tools_list().unwrap();
    assert!(
        !tools.iter().any(|t| t.name == "insert"),
        "read-only session must not list 'insert'"
    );
    // Calling it anyway is UnknownTool — the tool does not exist in this
    // session's surface, exactly like in-process.
    let err = client
        .call(
            "insert",
            &Json::object([("sql", Json::str("INSERT INTO sales VALUES (9, 9.0)"))]),
        )
        .unwrap()
        .unwrap_err();
    assert_eq!(err, ToolError::UnknownTool("insert".into()));
    server.shutdown();
}

#[test]
fn requested_policy_only_tightens() {
    let server = serve(WireConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .initialize_with("admin", &Json::object([("max_risk", Json::str("safe"))]))
        .unwrap();
    let tools = client.tools_list().unwrap();
    assert!(tools.iter().any(|t| t.name == "select"));
    assert!(
        !tools.iter().any(|t| t.name == "insert"),
        "risk-capped session lists no mutating tools"
    );
    server.shutdown();
}

#[test]
fn denials_round_trip_with_context() {
    let server = serve(WireConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .initialize_with(
            "admin",
            &Json::object([("object_blacklist", Json::array([Json::str("sales")]))]),
        )
        .unwrap();
    let err = client
        .call(
            "select",
            &Json::object([("sql", Json::str("SELECT * FROM sales"))]),
        )
        .unwrap()
        .unwrap_err();
    match &err {
        ToolError::Denied { code, context, .. } => {
            assert_eq!(code, "policy");
            assert_eq!(context.object.as_deref(), Some("sales"));
        }
        other => panic!("expected a policy denial, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unknown_user_fails_auth() {
    let server = serve(WireConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client.initialize("mallory").unwrap_err();
    match err {
        WireError::Rpc(rpc) => assert_eq!(rpc.code, ErrorCode::AuthFailed),
        other => panic!("expected AuthFailed, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn calls_before_initialize_are_rejected() {
    let server = serve(WireConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client.tools_list().unwrap_err();
    match err {
        WireError::Rpc(rpc) => assert_eq!(rpc.code, ErrorCode::NotInitialized),
        other => panic!("expected NotInitialized, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unknown_method_and_malformed_json_get_typed_errors() {
    let server = serve(WireConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let reply = roundtrip_line(&mut stream, "this is not json");
    assert_eq!(error_code(&reply), -32700, "parse error");
    let reply = roundtrip_line(&mut stream, r#"{"jsonrpc":"2.0","id":1}"#);
    assert_eq!(error_code(&reply), -32600, "invalid request");
    let reply = roundtrip_line(
        &mut stream,
        r#"{"jsonrpc":"2.0","id":2,"method":"tools/destroy"}"#,
    );
    assert_eq!(error_code(&reply), -32601, "method not found");
    server.shutdown();
}

#[test]
fn oversized_frame_rejected_then_closed() {
    let server = serve(WireConfig {
        max_frame_bytes: 256,
        ..WireConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let huge = format!(
        r#"{{"jsonrpc":"2.0","id":1,"method":"ping","params":{{"pad":"{}"}}}}"#,
        "x".repeat(1024)
    );
    let reply = roundtrip_line(&mut stream, &huge);
    assert_eq!(error_code(&reply), -32001, "frame too large");
    // The connection is closed afterwards: the next read sees EOF.
    assert_eq!(read_line(&mut stream), "");
    server.shutdown();
}

#[test]
fn slow_partial_frame_hits_the_deadline() {
    let server = serve(WireConfig {
        read_timeout: Duration::from_millis(200),
        ..WireConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Dribble a partial frame and stall.
    stream.write_all(b"{\"jsonrpc\":").unwrap();
    let started = Instant::now();
    let reply = read_line(&mut stream);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "server must answer within the deadline window, took {:?}",
        started.elapsed()
    );
    assert_eq!(error_code(&reply), -32002, "deadline exceeded");
    server.shutdown();
}

#[test]
fn busy_queue_answers_server_busy() {
    // One worker, queue depth 1, and a tool that holds the worker until
    // the test releases it: the first call occupies the worker, and of the
    // two contenders that follow, exactly one sits in the queue slot and
    // exactly one is rejected with server_busy. Gate atomics (not sleeps)
    // sequence the race so the outcome is deterministic.
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    let db = demo_db();
    let started = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let mut external = Registry::new();
    {
        let started = Arc::clone(&started);
        let release = Arc::clone(&release);
        external.register_tool(FnTool::new(
            "stall",
            "holds a worker until released",
            Signature::open(vec![]),
            move |_args: &Args| {
                started.fetch_add(1, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Ok(ToolOutput::value(Json::str("done")))
            },
        ));
    }
    let obs = Obs::in_memory();
    let server = WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(db).with_external(external),
        WireConfig {
            workers: 1,
            queue_depth: 1,
            ..WireConfig::default()
        },
        obs.clone(),
    )
    .unwrap();
    let addr = server.local_addr();

    let spawn_stall = || {
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.initialize("admin").unwrap();
            c.call("stall", &Json::object::<_, String>([]))
        })
    };
    let first = spawn_stall();
    // Wait until the worker is actually executing the first call — only
    // then is the queue guaranteed to have exactly one free slot.
    let deadline = Instant::now() + Duration::from_secs(10);
    while started.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "first stall never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Two contenders race for the single queue slot; the loser is rejected.
    // The worker is pinned, so the rejection is observable via the metric.
    let second = spawn_stall();
    let third = spawn_stall();
    while obs.snapshot().metrics.counter("wire.rejected.busy") == 0 {
        assert!(Instant::now() < deadline, "no server_busy rejection");
        std::thread::sleep(Duration::from_millis(5));
    }
    release.store(true, Ordering::SeqCst);

    // The first call and the queued contender complete; the other contender
    // got server_busy (backpressure sheds load without corrupting in-flight
    // work).
    first.join().unwrap().unwrap().unwrap();
    let outcomes = [second.join().unwrap(), third.join().unwrap()];
    let busy = outcomes
        .iter()
        .filter(|r| matches!(r, Err(WireError::Rpc(rpc)) if rpc.code == ErrorCode::ServerBusy))
        .count();
    let done = outcomes
        .iter()
        .filter(|r| matches!(r, Ok(Ok(out)) if out.value.as_str() == Some("done")))
        .count();
    assert_eq!((busy, done), (1, 1), "outcomes: {outcomes:?}");
    server.shutdown();
}

#[test]
fn call_deadline_exceeded_for_stuck_tools() {
    let db = demo_db();
    let mut external = Registry::new();
    external.register_tool(FnTool::new(
        "hang",
        "sleeps past the call deadline",
        Signature::open(vec![]),
        |_args: &Args| {
            std::thread::sleep(Duration::from_millis(600));
            Ok(ToolOutput::value(Json::str("late")))
        },
    ));
    let server = WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(db).with_external(external),
        WireConfig {
            call_timeout: Duration::from_millis(100),
            ..WireConfig::default()
        },
        Obs::in_memory(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.initialize("admin").unwrap();
    let err = client
        .call("hang", &Json::object::<_, String>([]))
        .unwrap_err();
    match err {
        WireError::Rpc(rpc) => assert_eq!(rpc.code, ErrorCode::DeadlineExceeded),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn session_request_cap_enforced() {
    let server = serve(WireConfig {
        max_requests_per_session: Some(2),
        ..WireConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.initialize("admin").unwrap();
    client.tools_list().unwrap();
    client
        .call("select", &Json::object([("sql", Json::str("SELECT 1"))]))
        .unwrap()
        .unwrap();
    let err = client.tools_list().unwrap_err();
    match err {
        WireError::Rpc(rpc) => assert_eq!(rpc.code, ErrorCode::SessionLimit),
        other => panic!("expected SessionLimit, got {other:?}"),
    }
    // ping is exempt from the budget — the session is throttled, not dead.
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn double_initialize_rejected() {
    let server = serve(WireConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.initialize("admin").unwrap();
    let err = client.initialize("reader").unwrap_err();
    match err {
        WireError::Rpc(rpc) => assert_eq!(rpc.code, ErrorCode::InvalidRequest),
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn mirror_registry_matches_remote_surface_and_forwards_calls() {
    let server = serve(WireConfig::default());

    // Ground truth: the in-process surface for the same user and policy.
    let local = bridgescope_core::BridgeScopeServer::build(
        demo_db(),
        "reader",
        bridgescope_core::SecurityPolicy::default(),
        &Registry::new(),
    )
    .unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.initialize("reader").unwrap();
    let mirror = mirror_registry(Arc::new(Mutex::new(client))).unwrap();

    assert_eq!(mirror.names(), local.registry.names());
    assert_eq!(
        mirror.render_prompt(),
        local.registry.render_prompt(),
        "mirror prompt must be byte-identical to the in-process prompt"
    );

    let remote_out = mirror
        .call(
            "select",
            &Json::object([("sql", Json::str("SELECT * FROM sales"))]),
        )
        .unwrap();
    let local_out = local
        .registry
        .call(
            "select",
            &Json::object([("sql", Json::str("SELECT * FROM sales"))]),
        )
        .unwrap();
    assert_eq!(remote_out, local_out);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_calls() {
    let db = demo_db();
    let mut external = Registry::new();
    external.register_tool(FnTool::new(
        "slowish",
        "sleeps briefly",
        Signature::open(vec![]),
        |_args: &Args| {
            std::thread::sleep(Duration::from_millis(300));
            Ok(ToolOutput::value(Json::str("finished")))
        },
    ));
    let server = WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(db).with_external(external),
        WireConfig::default(),
        Obs::in_memory(),
    )
    .unwrap();
    let addr = server.local_addr();
    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.initialize("admin").unwrap();
        c.call("slowish", &Json::object::<_, String>([])).unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown(); // must not abandon the in-flight call
    let result = worker.join().unwrap().unwrap();
    assert_eq!(result.value.as_str(), Some("finished"));
}

#[test]
fn wire_spans_nest_under_sessions_and_metrics_count() {
    let obs = Obs::in_memory();
    let server = WireServer::bind(
        "127.0.0.1:0",
        Tenancy::new(demo_db()),
        WireConfig::default(),
        obs.clone(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.initialize("admin").unwrap();
    client
        .call(
            "select",
            &Json::object([("sql", Json::str("SELECT * FROM sales"))]),
        )
        .unwrap()
        .unwrap();
    client.shutdown().unwrap();
    server.shutdown();

    let snap = obs.snapshot();
    obs::validate_tree(&snap.spans).unwrap();
    let session = snap
        .spans
        .iter()
        .find(|s| s.name == "wire:session")
        .expect("wire:session span");
    let call = snap
        .spans
        .iter()
        .find(|s| s.name == "wire:call")
        .expect("wire:call span");
    // Plain calls carry no traceparent, so the server nests them under
    // the session span: a whole session reads as one trace.
    assert_eq!(
        call.parent,
        Some(session.id),
        "untraced call nests under wire:session"
    );
    assert!(
        call.attr("trace.remote_parent").is_none(),
        "no remote parent without a client traceparent"
    );
    assert_eq!(call.trace, session.trace, "call joins the session trace");
    let tool = snap
        .spans
        .iter()
        .find(|s| s.name == "tool:select")
        .expect("tool:select span");
    assert_eq!(
        tool.parent,
        Some(call.id),
        "tool span nests under wire:call"
    );
    assert_eq!(tool.trace, call.trace, "tool span joins the call's trace");
    assert_eq!(snap.metrics.counter("wire.sessions"), 1);
    assert!(snap.metrics.counter("wire.requests") >= 3);
    assert_eq!(snap.metrics.counter("wire.requests.tools_call"), 1);
}

#[test]
fn stream_transport_serves_a_scripted_session() {
    use std::io::Cursor;
    let tenancy = Tenancy::new(demo_db());
    let config = WireConfig::default();
    let obs = Obs::disabled();
    let script = concat!(
        r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{"user":"admin"}}"#,
        "\n",
        r#"{"jsonrpc":"2.0","id":2,"method":"tools/call","params":{"name":"select","arguments":{"sql":"SELECT * FROM sales"}}}"#,
        "\n",
        r#"{"jsonrpc":"2.0","id":3,"method":"shutdown"}"#,
        "\n",
    );
    let mut output = Vec::new();
    wire::serve_stream(
        &tenancy,
        &config,
        &obs,
        Cursor::new(script.as_bytes().to_vec()),
        &mut output,
    )
    .unwrap();
    let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
    assert_eq!(lines.len(), 3);
    for line in &lines {
        let doc = Json::parse(line).unwrap();
        assert!(doc.get("result").is_some(), "unexpected error: {line}");
    }
    assert_eq!(
        Json::parse(lines[1])
            .unwrap()
            .pointer("/result/rows")
            .and_then(Json::as_i64),
        Some(1)
    );
}

#[test]
fn client_surfaces_frame_errors() {
    // Connect to a server, then have the server close mid-session: the
    // client reports Closed instead of hanging.
    let server = serve(WireConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.initialize("admin").unwrap();
    server.shutdown();
    let err = client.ping().unwrap_err();
    match err {
        WireError::Frame(FrameError::Closed) | WireError::Io(_) | WireError::Rpc(_) => {}
        other => panic!("expected a transport-level failure, got {other:?}"),
    }
}
