//! Property-based hardening of the admin HTTP listener, mirroring the
//! JSON-parser hardening in `toolproto/tests/json_props.rs`: the listener
//! faces whatever a port scanner, a confused load balancer, or a buggy
//! scrape client throws at it, and must never panic, hang, or wedge the
//! accept loop. After every malformed exchange `/healthz` must still
//! answer 200 — the strongest liveness statement a black-box test can make.

use obs::Obs;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;
use wire::AdminServer;

fn bind_admin() -> AdminServer {
    AdminServer::bind(
        "127.0.0.1:0",
        Obs::in_memory(),
        Arc::new(AtomicBool::new(true)),
    )
    .expect("bind admin listener")
}

/// Write raw bytes, half-close the write side so the server sees EOF
/// instead of waiting out its read timeout, and collect whatever comes
/// back. The connection-level contract under fuzzing is only "respond or
/// close, promptly" — the *content* is checked by the liveness probe.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect to admin listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The peer may have already responded and closed; a write error then is
    // the server rejecting input, not a test failure.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

/// The liveness probe: a well-formed `/healthz` must return 200 no matter
/// what garbage the previous connection carried.
fn assert_alive(addr: SocketAddr) {
    let response = send_raw(addr, b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 200 OK\r\n"),
        "listener unhealthy after malformed input: {text:?}"
    );
}

proptest! {
    /// Arbitrary printable request lines — mangled methods, paths with
    /// spaces, missing HTTP versions, queries, unicode — never kill the
    /// listener.
    #[test]
    fn fuzzed_request_lines_never_wedge_the_listener(line in "\\PC{0,80}") {
        let server = bind_admin();
        let addr = server.local_addr();
        let request = format!("{line}\r\nhost: t\r\n\r\n");
        let response = send_raw(addr, request.as_bytes());
        // Whatever came back is complete HTTP or nothing; either way the
        // next request must succeed.
        prop_assert!(response.is_empty() || response.starts_with(b"HTTP/1.1 "));
        assert_alive(addr);
        server.shutdown();
    }

    /// Entirely arbitrary bytes — not even text — are rejected or answered
    /// without disturbing the accept loop.
    #[test]
    fn raw_byte_streams_never_wedge_the_listener(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let server = bind_admin();
        let addr = server.local_addr();
        let _ = send_raw(addr, &bytes);
        assert_alive(addr);
        server.shutdown();
    }
}

/// A valid request truncated at *every* byte offset: each prefix is either
/// answered or dropped, and the listener survives all of them on one
/// server instance (exercising back-to-back malformed connections).
#[test]
fn truncation_at_every_offset_is_harmless() {
    let server = bind_admin();
    let addr = server.local_addr();
    let request = b"GET /metrics HTTP/1.1\r\nhost: example\r\naccept: text/plain\r\n\r\n";
    for cut in 0..=request.len() {
        let response = send_raw(addr, &request[..cut]);
        assert!(
            response.is_empty() || response.starts_with(b"HTTP/1.1 "),
            "offset {cut}: partial HTTP response {response:?}"
        );
    }
    assert_alive(addr);
    server.shutdown();
}

/// Header blocks past the 8 KiB request cap are dropped without a
/// response — the listener refuses to buffer unbounded input.
#[test]
fn oversized_requests_are_dropped() {
    let server = bind_admin();
    let addr = server.local_addr();
    let mut request = b"GET /healthz HTTP/1.1\r\n".to_vec();
    // Padding headers with no terminating blank line until well past the
    // cap; the server must bail on size, not wait for the terminator.
    while request.len() <= 32 * 1024 {
        request.extend_from_slice(b"x-pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    let response = send_raw(addr, &request);
    assert!(
        response.is_empty(),
        "oversized request was answered: {:?}",
        String::from_utf8_lossy(&response)
    );
    assert_alive(addr);
    server.shutdown();
}

/// Non-GET methods get a clean 405 and the routes they targeted still work.
#[test]
fn non_get_methods_are_rejected_cleanly() {
    let server = bind_admin();
    let addr = server.local_addr();
    for method in ["POST", "PUT", "DELETE", "HEAD", "PATCH", "OPTIONS"] {
        let request = format!("{method} /metrics HTTP/1.1\r\nhost: t\r\n\r\n");
        let response = send_raw(addr, request.as_bytes());
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("HTTP/1.1 405 "),
            "{method}: expected 405, got {text:?}"
        );
    }
    assert_alive(addr);
    server.shutdown();
}
