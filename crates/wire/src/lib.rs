//! `wire` — a concurrent, MCP-style JSON-RPC serving layer for the
//! BridgeScope tool surface.
//!
//! BridgeScope's contribution (paper §2) is a *per-user, privilege-gated*
//! tool surface over a database. In-process that surface is a
//! [`toolproto::Registry`]; this crate puts it on the network without
//! weakening any of its guarantees:
//!
//! * **Protocol** — JSON-RPC 2.0 with MCP-flavored methods
//!   (`initialize`, `tools/list`, `tools/call`, `shutdown`, `ping`) over
//!   newline-delimited frames, on TCP or stdio. See [`rpc`].
//! * **Sessions** — each connection authenticates as a database user
//!   during `initialize` and gets its own
//!   [`bridgescope_core::BridgeScopeServer`] surface over the shared
//!   [`minidb::Database`]. Privilege gating and policy denials are
//!   enforced server-side per session; a client-requested policy can only
//!   tighten the operator's base policy
//!   ([`bridgescope_core::SecurityPolicy::restricted_by`]).
//! * **Concurrency & backpressure** — a fixed worker pool behind a bounded
//!   queue executes tool calls; a full queue answers `server_busy`
//!   instead of accepting unbounded work. See [`server::WireConfig`].
//! * **Limits** — max frame size, per-frame read deadlines, call
//!   deadlines, and per-session request budgets, each with a typed error
//!   code. Malformed input never panics the server. See [`frame`].
//! * **Observability** — every session is a `wire:session` span, every
//!   dispatch a `wire:call` span parenting the usual `tool:{name}` spans,
//!   plus `wire.*` counters and a call-latency histogram, all through the
//!   shared [`obs`] handle.
//! * **Client** — a blocking [`Client`] and [`mirror_registry`], which
//!   rebuilds the remote surface as local [`toolproto::Tool`]s so an agent
//!   can drive a remote database with a byte-identical tool prompt and
//!   structurally identical errors (denial contexts included).
//!
//! ```no_run
//! use std::sync::{Arc, Mutex};
//!
//! let db = minidb::Database::new();
//! let server = wire::WireServer::bind(
//!     "127.0.0.1:0",
//!     wire::Tenancy::new(db),
//!     wire::WireConfig::default(),
//!     obs::Obs::in_memory(),
//! )
//! .unwrap();
//!
//! let mut client = wire::Client::connect(server.local_addr()).unwrap();
//! client.initialize("admin").unwrap();
//! let registry = wire::mirror_registry(Arc::new(Mutex::new(client))).unwrap();
//! let out = registry
//!     .call("select", &toolproto::Json::object([
//!         ("sql", toolproto::Json::str("SELECT 1")),
//!     ]))
//!     .unwrap();
//! println!("{}", out.value);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod client;
pub mod frame;
pub mod rpc;
pub mod server;

pub use admin::AdminServer;
pub use client::{mirror_registry, Client, ToolEntry, WireError};
pub use frame::{FrameError, FrameReader, DEFAULT_MAX_FRAME_BYTES};
pub use rpc::{ErrorCode, RpcError, PROTOCOL};
pub use server::{serve_stdio, serve_stream, Tenancy, WireConfig, WireServer};
