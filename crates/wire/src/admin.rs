//! The admin plane: a tiny std-only HTTP/1.1 listener serving live
//! telemetry next to (not on) the wire protocol port.
//!
//! Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4) of every
//!   counter, gauge, and histogram in the server's [`Obs`] handle.
//! * `GET /healthz` — liveness: 200 as long as the listener thread runs.
//! * `GET /readyz` — readiness: 200 while serving, 503 the moment graceful
//!   shutdown begins (the flag flips *before* the worker pool drains, so a
//!   load balancer stops routing while in-flight calls finish).
//! * `GET /slow` — the flight recorder's captured slow calls as JSON, full
//!   span trees included.
//! * `GET /slow/<trace-id>` — one captured call looked up by its 32-hex
//!   trace id: the whole cross-layer trace, or 404 if not retained.
//! * `GET /statements` — the statement statistics store (pg_stat_statements
//!   style): per-(user, normalized statement) aggregates, sorted by total
//!   time descending.
//! * `GET /queries` — calls in flight right now: trace id, user, tool,
//!   elapsed time, and the SQL statement currently executing (if any).
//!
//! The implementation is deliberately minimal: one accept thread, one
//! short-lived handler per connection, `Connection: close` on every
//! response. Admin traffic is a scrape every few seconds, not a workload —
//! a full HTTP stack would be all liability here. Requests are parsed just
//! enough to route: method + path of the request line; headers and body
//! are read and discarded.

use obs::Obs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use toolproto::Json;

/// Accept-loop poll interval while no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(5);
/// Per-request socket deadline; admin requests are single small reads.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);
/// Cap on accepted request bytes (request line + headers).
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running admin listener. Join it with [`AdminServer::shutdown`];
/// dropping without shutdown detaches the accept thread (it exits at the
/// next tick after the stop flag flips, which `shutdown` does).
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Bind `addr` and start serving. `ready` is shared with the wire
    /// server: `/readyz` mirrors it live, so flipping it to `false` at the
    /// start of a drain is immediately visible to load balancers.
    pub fn bind(
        addr: impl ToSocketAddrs,
        obs: Obs,
        ready: Arc<AtomicBool>,
    ) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("wire-admin".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                obs.incr("admin.requests", 1);
                                handle_conn(stream, &obs, &ready);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                thread::sleep(ACCEPT_TICK);
                            }
                            Err(_) => thread::sleep(ACCEPT_TICK),
                        }
                    }
                })
                .expect("spawn admin accept loop")
        };
        Ok(AdminServer {
            addr: local,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the listener thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// Read one request, route it, write one response, close.
fn handle_conn(mut stream: TcpStream, obs: &Obs, ready: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
    let _ = stream.set_write_timeout(Some(REQUEST_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Some((method, path)) = read_request(&mut stream) else {
        return;
    };
    let response = route(&method, &path, obs, ready);
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Read up to the end of the header block and parse the request line into
/// `(method, path)`. `None` on malformed, oversized, or timed-out input.
fn read_request(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        // A well-formed request line is all we need; stop at the blank
        // line that ends the headers.
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_owned();
    let target = parts.next()?;
    // Ignore any query string: `/metrics?format=x` still routes to /metrics.
    let path = target.split('?').next().unwrap_or(target).to_owned();
    Some((method, path))
}

/// Build the full HTTP/1.1 response for one request.
fn route(method: &str, path: &str, obs: &Obs, ready: &AtomicBool) -> String {
    if method != "GET" {
        return respond(
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    match path {
        "/metrics" => {
            let body = obs::prom::render(&obs.snapshot().metrics);
            respond(200, "OK", "text/plain; version=0.0.4; charset=utf-8", &body)
        }
        "/healthz" => respond(200, "OK", "text/plain; charset=utf-8", "ok\n"),
        "/readyz" => {
            if ready.load(Ordering::Relaxed) {
                respond(200, "OK", "text/plain; charset=utf-8", "ready\n")
            } else {
                respond(
                    503,
                    "Service Unavailable",
                    "text/plain; charset=utf-8",
                    "draining\n",
                )
            }
        }
        "/slow" => {
            let calls = obs.slow_calls();
            let body = Json::object([
                (
                    "threshold_ns",
                    match obs.flight_threshold_ns() {
                        Some(ns) => Json::num(ns as f64),
                        None => Json::Null,
                    },
                ),
                (
                    "slow_calls",
                    Json::array(calls.iter().map(obs::SlowCall::to_json)),
                ),
            ])
            .to_string();
            respond(200, "OK", "application/json", &body)
        }
        "/statements" => {
            let body = obs
                .statements_json()
                .unwrap_or_else(|| Json::object([("statements", Json::array([]))]))
                .to_string();
            respond(200, "OK", "application/json", &body)
        }
        "/queries" => {
            let body = obs
                .inflight_json()
                .unwrap_or_else(|| Json::object([("queries", Json::array([]))]))
                .to_string();
            respond(200, "OK", "application/json", &body)
        }
        _ => {
            if let Some(hex) = path.strip_prefix("/slow/") {
                return route_slow_by_trace(hex, obs);
            }
            respond(
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics /healthz /readyz /slow /statements /queries\n",
            )
        }
    }
}

/// `/slow/<trace-id>`: serve one retained call by trace id. The id comes
/// off the wire, so it is parsed with the same strict 32-hex validator the
/// traceparent uses; garbage is a 404, never a panic.
fn route_slow_by_trace(hex: &str, obs: &Obs) -> String {
    let Some(trace) = obs::TraceId::parse_hex(hex) else {
        return respond(
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "trace id must be 32 hex chars\n",
        );
    };
    match obs.slow_call_by_trace(trace) {
        Some(call) => respond(200, "OK", "application/json", &call.to_json().to_string()),
        None => respond(
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "no retained call with that trace id\n",
        ),
    }
}

fn respond(status: u16, reason: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_are_well_formed() {
        let r = respond(200, "OK", "text/plain", "hi");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("content-length: 2\r\n"));
        assert!(r.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn routing_matrix() {
        let obs = Obs::in_memory();
        obs.incr("x", 1);
        let ready = AtomicBool::new(true);
        assert!(route("GET", "/healthz", &obs, &ready).starts_with("HTTP/1.1 200"));
        assert!(route("GET", "/readyz", &obs, &ready).starts_with("HTTP/1.1 200"));
        ready.store(false, Ordering::Relaxed);
        assert!(route("GET", "/readyz", &obs, &ready).starts_with("HTTP/1.1 503"));
        assert!(route("GET", "/metrics", &obs, &ready).contains("x_total 1"));
        assert!(route("GET", "/slow", &obs, &ready).contains("\"slow_calls\""));
        assert!(route("GET", "/statements", &obs, &ready).contains("\"statements\""));
        assert!(route("GET", "/queries", &obs, &ready).contains("\"in_flight\""));
        assert!(route("GET", "/nope", &obs, &ready).starts_with("HTTP/1.1 404"));
        assert!(route("POST", "/metrics", &obs, &ready).starts_with("HTTP/1.1 405"));
    }

    #[test]
    fn slow_by_trace_validates_and_misses_cleanly() {
        let obs = Obs::in_memory();
        let ready = AtomicBool::new(true);
        // Garbage trace ids are 404s, never panics.
        for bad in ["/slow/", "/slow/xyz", "/slow/123", "/slow/../etc"] {
            assert!(
                route("GET", bad, &obs, &ready).starts_with("HTTP/1.1 404"),
                "{bad}"
            );
        }
        // A well-formed id that was never retained is also a 404.
        let miss = format!("/slow/{:032x}", 0xdeadbeefu64);
        assert!(route("GET", &miss, &obs, &ready).starts_with("HTTP/1.1 404"));
    }
}
