//! The concurrent wire server: sessions, the bounded worker pool, and
//! graceful shutdown.
//!
//! Every accepted connection gets a dedicated reader thread and — after a
//! successful `initialize` — its own session: a per-user
//! [`BridgeScopeServer`] surface built over the shared [`minidb::Database`].
//! Privilege-gated tool visibility is therefore enforced *server-side per
//! session*: a read-only user's session never lists `insert`, no matter
//! what the client sends.
//!
//! Tool execution is decoupled from socket I/O by a fixed pool of worker
//! threads fed through a bounded queue. When the queue is full the server
//! answers `server_busy` immediately instead of accepting unbounded work —
//! backpressure is a protocol feature, not an accident of TCP buffers.

use crate::frame::{write_frame, FrameError, FrameReader};
use crate::rpc::{
    parse_request, response_err, response_err_traced, response_ok_traced, risk_from_str,
    risk_to_str, tool_error_to_rpc, tool_output_to_json, ErrorCode, Request, RpcError, PROTOCOL,
};
use bridgescope_core::{BridgeScopeServer, SecurityPolicy};
use gate::{GateConfig, SubmitError, WeightedQueues};
use minidb::Database;
use obs::Obs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;
use toolproto::{Json, Registry, ToolResult};

/// Tunable limits for a [`WireServer`]. Defaults are production-shaped but
/// small; tests shrink them to provoke each failure mode deterministically.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Worker threads executing tool calls.
    pub workers: usize,
    /// Bounded job-queue depth *per tenant*; a tenant whose queue is full
    /// is shed with `server_busy` while other tenants keep queuing.
    pub queue_depth: usize,
    /// Weighted round-robin shares for named tenants; everyone else gets
    /// weight 1. A tenant with weight *w* is served up to *w* consecutive
    /// jobs each time the dequeue rotation reaches it.
    pub tenant_weights: Vec<(String, u32)>,
    /// Maximum accepted frame size in bytes.
    pub max_frame_bytes: usize,
    /// Per-frame read deadline (also the idle timeout between requests).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// How long a connection waits for a queued tool call to finish.
    pub call_timeout: Duration,
    /// Requests a session may issue after `initialize` (`tools/list` and
    /// `tools/call` count; `ping`/`shutdown` do not). `None` = unlimited.
    pub max_requests_per_session: Option<u64>,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            workers: 4,
            queue_depth: 64,
            tenant_weights: Vec::new(),
            max_frame_bytes: crate::frame::DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            call_timeout: Duration::from_secs(30),
            max_requests_per_session: None,
        }
    }
}

/// What the server serves: one shared database, a shared external-tool
/// registry, and the operator's base security policy. `initialize` builds a
/// per-user surface from these; a client-requested policy can only tighten
/// the base one (see [`SecurityPolicy::restricted_by`]).
pub struct Tenancy {
    db: Database,
    external: Registry,
    base_policy: SecurityPolicy,
    gate: GateConfig,
}

impl Tenancy {
    /// Serve `db` with a permissive base policy, no external tools, and a
    /// transparent gate (no caches or budgets).
    pub fn new(db: Database) -> Self {
        Tenancy {
            db,
            external: Registry::new(),
            base_policy: SecurityPolicy::permissive(),
            gate: GateConfig::default(),
        }
    }

    /// The shared database behind this tenancy (e.g. for flushing or
    /// checkpointing a durable engine around server lifecycle events).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Builder: external (ML/MCP) tools exposed to every session.
    pub fn with_external(mut self, external: Registry) -> Self {
        self.external = external;
        self
    }

    /// Builder: the operator-side base policy every session inherits.
    pub fn with_base_policy(mut self, policy: SecurityPolicy) -> Self {
        self.base_policy = policy;
        self
    }

    /// Builder: the gate policy (caches, budgets) every session is built
    /// behind. Attach a shared [`gate::BudgetLedger`] here to meter each
    /// user across all of their sessions.
    pub fn with_gate(mut self, gate: GateConfig) -> Self {
        self.gate = gate;
        self
    }

    /// Build the tool surface for one authenticated session.
    fn surface(
        &self,
        user: &str,
        requested: &SecurityPolicy,
        obs: Obs,
    ) -> Result<BridgeScopeServer, RpcError> {
        let effective = self.base_policy.restricted_by(requested);
        BridgeScopeServer::build_gated(
            self.db.clone(),
            user,
            effective,
            &self.external,
            obs,
            &self.gate,
        )
        .map_err(|e| RpcError::new(ErrorCode::AuthFailed, format!("cannot open session: {e}")))
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Live wire-layer occupancy counters, read by registered admin gauges
/// (`wire.active_sessions`, `wire.queue_depth`).
#[derive(Debug, Default)]
struct WireStats {
    /// Sessions that have initialized and not yet disconnected.
    active_sessions: AtomicU64,
    /// Jobs submitted to the worker pool and not yet started.
    queue_depth: AtomicU64,
}

/// Decrements the active-session count when a session ends, however the
/// connection terminates (clean shutdown, timeout, or dropped socket).
struct ActiveSessionGuard(Arc<WireStats>);

impl Drop for ActiveSessionGuard {
    fn drop(&mut self) {
        self.0.active_sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Fixed worker pool over per-tenant bounded queues with weighted
/// round-robin dequeue ([`gate::WeightedQueues`]). `submit` never blocks: a
/// tenant whose queue is full is shed, which the caller turns into
/// `server_busy` — without touching any other tenant's backlog.
struct Pool {
    queues: Arc<WeightedQueues<Job>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    stats: Arc<WireStats>,
    obs: Obs,
}

impl Pool {
    fn new(
        workers: usize,
        queue_depth: usize,
        tenant_weights: &[(String, u32)],
        stats: Arc<WireStats>,
        obs: Obs,
    ) -> Pool {
        let queues = Arc::new(WeightedQueues::<Job>::new(
            queue_depth.max(1),
            1,
            tenant_weights.iter().cloned(),
        ));
        let handles = (0..workers.max(1))
            .map(|i| {
                let queues = Arc::clone(&queues);
                thread::Builder::new()
                    .name(format!("wire-worker-{i}"))
                    .spawn(move || {
                        // `pop` blocks while open and returns `None` only
                        // once closed and drained.
                        while let Some(job) = queues.pop() {
                            job();
                        }
                    })
                    .expect("spawn wire worker")
            })
            .collect();
        Pool {
            queues,
            workers: Mutex::new(handles),
            stats,
            obs,
        }
    }

    fn submit(&self, user: &str, job: Job) -> Result<(), ErrorCode> {
        // Count the job as queued from acceptance until a worker picks it
        // up, so the gauge reflects real backlog.
        let stats = Arc::clone(&self.stats);
        stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        let counted: Job = Box::new({
            let stats = Arc::clone(&stats);
            move || {
                stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                job();
            }
        });
        match self.queues.submit(user, counted) {
            Ok(()) => {
                self.obs.incr_with("gate.admitted", &[("user", user)], 1);
                Ok(())
            }
            Err(SubmitError::Shed) => {
                stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.obs.incr_with("gate.shed", &[("user", user)], 1);
                Err(ErrorCode::ServerBusy)
            }
            Err(SubmitError::Closed) => {
                stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                Err(ErrorCode::ShuttingDown)
            }
        }
    }

    /// Close the queues and join workers; queued jobs drain first.
    fn shutdown(&self) {
        self.queues.close();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker list poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// One authenticated session: the per-user tool surface plus the
/// `wire:session` span that parents everything the session does.
struct Session {
    registry: Arc<Registry>,
    span: obs::SpanGuard,
    used: u64,
    user: String,
    /// Keeps `wire.active_sessions` honest; `None` on the stdio transport.
    _active: Option<ActiveSessionGuard>,
}

/// The effective trace placement of one request, computed *before* the
/// executor runs so ok responses, typed errors, and the span tree all file
/// under the same trace.
///
/// A valid client `traceparent` is adopted: the `wire:call` span becomes a
/// local root of the *client's* trace, with the remote parent span id kept
/// as an attribute (a foreign span id must not become a local `parent`
/// edge — `validate_tree` requires parents to exist in the local tree).
/// Absent or malformed input falls back to the server's own context: the
/// call nests under the `wire:session` span and joins its trace.
#[derive(Debug, Clone, Copy)]
struct CallTrace {
    ctx: obs::SpanContext,
    remote_parent: Option<obs::SpanId>,
}

impl CallTrace {
    /// No trace at all (pre-initialize requests with no client context).
    fn none() -> CallTrace {
        CallTrace {
            ctx: obs::SpanContext::default(),
            remote_parent: None,
        }
    }

    /// The `traceparent` to echo on the response, naming the effective
    /// trace and its wire-level parent span.
    fn echo(&self) -> Option<String> {
        let trace = self.ctx.trace?;
        let parent = self
            .remote_parent
            .or_else(|| self.ctx.parent.and_then(obs::SpanId::from_u64))?;
        Some(obs::TraceContext::new(trace, parent).to_traceparent())
    }
}

/// Runs tool calls for a session: TCP connections enqueue onto the shared
/// pool (keyed by the session's user for tenant-fair admission); the stdio
/// transport executes inline.
trait CallExecutor {
    fn execute(
        &self,
        registry: Arc<Registry>,
        user: &str,
        tool: String,
        payload: Json,
        trace: CallTrace,
        obs: &Obs,
    ) -> Result<ToolResult, RpcError>;
}

/// Wrap one registry call in a `wire:call` span placed per [`CallTrace`].
/// Everything the call does downstream — gate checks, tool dispatch, SQL
/// execution — runs on this thread under the span's trace, so one trace id
/// names the full path. The call is also registered in the in-flight
/// registry for the admin `/queries` endpoint, and tagged for tail
/// sampling when the user's sample rate fires.
fn traced_call(
    registry: &Registry,
    user: &str,
    tool: &str,
    payload: &Json,
    trace: CallTrace,
    obs: &Obs,
) -> ToolResult {
    let _scope = obs::adopt_context(trace.ctx);
    let mut span = obs.span("wire:call");
    span.attr("tool", tool);
    span.attr("user", user);
    if let Some(remote) = trace.remote_parent {
        span.attr("trace.remote_parent", remote.to_string());
    }
    if obs.should_sample(user) {
        span.attr(obs::SAMPLED_ATTR, true);
    }
    let _inflight = obs.begin_call(user, tool);
    let started = obs.now_ns();
    let result = registry.call(tool, payload);
    obs.observe_ns("wire.call.latency", obs.now_ns().saturating_sub(started));
    if let Err(e) = &result {
        span.fail(e.to_string());
    }
    result
}

struct PooledExecutor {
    pool: Arc<Pool>,
    call_timeout: Duration,
}

impl CallExecutor for PooledExecutor {
    fn execute(
        &self,
        registry: Arc<Registry>,
        user: &str,
        tool: String,
        payload: Json,
        trace: CallTrace,
        obs: &Obs,
    ) -> Result<ToolResult, RpcError> {
        let (done_tx, done_rx) = mpsc::sync_channel::<ToolResult>(1);
        let obs_job = obs.clone();
        let job_user = user.to_owned();
        let job: Job = Box::new(move || {
            let result = traced_call(&registry, &job_user, &tool, &payload, trace, &obs_job);
            let _ = done_tx.send(result);
        });
        self.pool.submit(user, job).map_err(|code| {
            obs.incr("wire.rejected.busy", 1);
            RpcError::new(code, "worker queue is full; retry later")
        })?;
        match done_rx.recv_timeout(self.call_timeout) {
            Ok(result) => Ok(result),
            Err(RecvTimeoutError::Timeout) => {
                obs.incr("wire.rejected.timeout", 1);
                Err(RpcError::new(
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "tool call exceeded the {}ms deadline",
                        self.call_timeout.as_millis()
                    ),
                ))
            }
            Err(RecvTimeoutError::Disconnected) => Err(RpcError::new(
                ErrorCode::ShuttingDown,
                "server stopped before the call finished",
            )),
        }
    }
}

struct InlineExecutor;

impl CallExecutor for InlineExecutor {
    fn execute(
        &self,
        registry: Arc<Registry>,
        user: &str,
        tool: String,
        payload: Json,
        trace: CallTrace,
        obs: &Obs,
    ) -> Result<ToolResult, RpcError> {
        Ok(traced_call(&registry, user, &tool, &payload, trace, obs))
    }
}

/// Per-connection protocol state machine, shared by TCP and stdio.
struct SessionCtx<'a> {
    tenancy: &'a Tenancy,
    config: &'a WireConfig,
    obs: &'a Obs,
    session: Option<Session>,
    /// Occupancy counters of the owning TCP server; `None` on stdio.
    stats: Option<Arc<WireStats>>,
}

/// Outcome of dispatching one request: the response frame, and whether the
/// connection should close afterwards.
struct Dispatch {
    frame: String,
    close: bool,
}

impl<'a> SessionCtx<'a> {
    fn new(tenancy: &'a Tenancy, config: &'a WireConfig, obs: &'a Obs) -> Self {
        SessionCtx {
            tenancy,
            config,
            obs,
            session: None,
            stats: None,
        }
    }

    fn with_stats(mut self, stats: Arc<WireStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    fn dispatch(&mut self, req: &Request, exec: &dyn CallExecutor) -> Dispatch {
        self.obs.incr("wire.requests", 1);
        self.obs.incr(
            &format!("wire.requests.{}", req.method.replace('/', "_")),
            1,
        );
        let close = req.method == "shutdown";
        // Resolve the trace before executing anything so success, typed
        // errors, and the span tree all carry the same effective context.
        let trace = self.effective_trace(req.traceparent.as_deref());
        let echo = trace.echo();
        let outcome = match req.method.as_str() {
            "ping" => Ok(Json::str("pong")),
            "initialize" => self.initialize(&req.params),
            "shutdown" => Ok(Json::object([("status", Json::str("bye"))])),
            "tools/list" => self.charged(|ctx| ctx.tools_list()),
            "tools/call" => self.charged(|ctx| ctx.tools_call(&req.params, trace, exec)),
            other => Err(RpcError::new(
                ErrorCode::MethodNotFound,
                format!("unknown method '{other}'"),
            )),
        };
        let frame = match outcome {
            Ok(result) => response_ok_traced(&req.id, result, echo.as_deref()),
            Err(err) => {
                self.obs
                    .incr(&format!("wire.errors.{}", err.code.name()), 1);
                response_err_traced(&req.id, &err, echo.as_deref())
            }
        };
        Dispatch { frame, close }
    }

    /// Compute the effective [`CallTrace`] for a request: a valid client
    /// `traceparent` wins; otherwise the session's own span context (so
    /// unattributed calls still trace under their session); otherwise
    /// nothing (pre-initialize traffic with no client context).
    fn effective_trace(&self, traceparent: Option<&str>) -> CallTrace {
        if let Some(ctx) = traceparent.and_then(obs::TraceContext::parse) {
            return CallTrace {
                ctx: obs::SpanContext {
                    trace: Some(ctx.trace),
                    parent: None,
                },
                remote_parent: Some(ctx.parent),
            };
        }
        match &self.session {
            Some(session) => CallTrace {
                ctx: session.span.context(),
                remote_parent: None,
            },
            None => CallTrace::none(),
        }
    }

    /// Run a session-scoped method, enforcing initialization and the
    /// per-session request budget.
    fn charged(
        &mut self,
        body: impl FnOnce(&mut Self) -> Result<Json, RpcError>,
    ) -> Result<Json, RpcError> {
        let Some(session) = self.session.as_mut() else {
            return Err(RpcError::new(
                ErrorCode::NotInitialized,
                "call 'initialize' first",
            ));
        };
        if let Some(cap) = self.config.max_requests_per_session {
            if session.used >= cap {
                return Err(RpcError::new(
                    ErrorCode::SessionLimit,
                    format!("session exhausted its budget of {cap} requests"),
                ));
            }
        }
        session.used += 1;
        body(self)
    }

    fn initialize(&mut self, params: &Json) -> Result<Json, RpcError> {
        if self.session.is_some() {
            return Err(RpcError::new(
                ErrorCode::InvalidRequest,
                "session already initialized",
            ));
        }
        let user = params
            .get("user")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                RpcError::new(ErrorCode::InvalidParams, "initialize needs a string 'user'")
            })?
            .to_owned();
        if let Some(proto) = params.get("protocol").and_then(Json::as_str) {
            if proto != PROTOCOL {
                return Err(RpcError::new(
                    ErrorCode::InvalidParams,
                    format!("unsupported protocol '{proto}' (server speaks {PROTOCOL})"),
                ));
            }
        }
        let requested = decode_requested_policy(params)?;
        let server = self.tenancy.surface(&user, &requested, self.obs.clone())?;
        let mut span = self.obs.span("wire:session");
        span.attr("user", user.as_str());
        self.obs.incr("wire.sessions", 1);
        let tools = Json::array(server.registry.names().into_iter().map(Json::str));
        let prompt = server.prompt;
        let active = self.stats.as_ref().map(|stats| {
            stats.active_sessions.fetch_add(1, Ordering::Relaxed);
            ActiveSessionGuard(Arc::clone(stats))
        });
        self.session = Some(Session {
            registry: Arc::new(server.registry),
            span,
            used: 0,
            user: user.clone(),
            _active: active,
        });
        Ok(Json::object([
            ("protocol", Json::str(PROTOCOL)),
            ("user", Json::str(user)),
            ("tools", tools),
            ("prompt", Json::str(prompt)),
        ]))
    }

    fn tools_list(&mut self) -> Result<Json, RpcError> {
        let session = self.session.as_ref().expect("charged() checked");
        let tools = session
            .registry
            .iter()
            .map(|tool| {
                let sig = tool.signature();
                let args = Json::array(sig.args.iter().map(|a| {
                    let mut pairs = vec![
                        ("name", Json::str(a.name.clone())),
                        ("type", Json::str(a.ty.to_string())),
                        ("description", Json::str(a.description.clone())),
                        ("required", Json::Bool(a.required)),
                    ];
                    if let Some(default) = &a.default {
                        pairs.push(("default", default.clone()));
                    }
                    Json::object(pairs)
                }));
                Json::object([
                    ("name", Json::str(tool.name())),
                    ("description", Json::str(tool.description())),
                    (
                        "signature",
                        Json::object([
                            ("args", args),
                            ("allow_extra", Json::Bool(sig.allow_extra)),
                        ]),
                    ),
                    ("risk", Json::str(risk_to_str(tool.risk()))),
                ])
            })
            .collect::<Vec<_>>();
        Ok(Json::object([("tools", Json::array(tools))]))
    }

    fn tools_call(
        &mut self,
        params: &Json,
        trace: CallTrace,
        exec: &dyn CallExecutor,
    ) -> Result<Json, RpcError> {
        let session = self.session.as_ref().expect("charged() checked");
        let name = params
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                RpcError::new(ErrorCode::InvalidParams, "tools/call needs a string 'name'")
            })?
            .to_owned();
        let payload = params.get("arguments").cloned().unwrap_or(Json::Null);
        // Per-tenant traffic series. `user` is operator-controlled (session
        // auth), so cardinality stays bounded by the user catalog.
        self.obs.incr_with(
            "wire.calls",
            &[("user", session.user.as_str()), ("tool", name.as_str())],
            1,
        );
        let result = exec.execute(
            Arc::clone(&session.registry),
            &session.user,
            name,
            payload,
            trace,
            self.obs,
        )?;
        match result {
            Ok(output) => Ok(tool_output_to_json(&output)),
            Err(tool_err) => Err(tool_error_to_rpc(&tool_err)),
        }
    }
}

/// Decode the optional `policy` member of `initialize` params into a
/// requested [`SecurityPolicy`]. Unspecified dials are left maximally
/// permissive so [`SecurityPolicy::restricted_by`] treats them as "no
/// request" rather than an accidental tightening.
fn decode_requested_policy(params: &Json) -> Result<SecurityPolicy, RpcError> {
    let mut policy = SecurityPolicy {
        schema_threshold: usize::MAX,
        exemplar_k: usize::MAX,
        ..SecurityPolicy::permissive()
    };
    let Some(spec) = params.get("policy") else {
        return Ok(policy);
    };
    let spec = spec
        .as_object()
        .ok_or_else(|| RpcError::new(ErrorCode::InvalidParams, "'policy' must be an object"))?;
    let strings = |value: &Json, what: &str| -> Result<Vec<String>, RpcError> {
        value
            .as_array()
            .and_then(|items| {
                items
                    .iter()
                    .map(|v| v.as_str().map(str::to_owned))
                    .collect::<Option<Vec<_>>>()
            })
            .ok_or_else(|| {
                RpcError::new(
                    ErrorCode::InvalidParams,
                    format!("'policy.{what}' must be an array of strings"),
                )
            })
    };
    for (key, value) in spec {
        match key.as_str() {
            "blocked_tools" => {
                policy = policy.with_blocked_tools(strings(value, "blocked_tools")?);
            }
            "object_blacklist" => {
                policy = policy.with_blacklist(strings(value, "object_blacklist")?);
            }
            "object_whitelist" => {
                policy = policy.with_whitelist(strings(value, "object_whitelist")?);
            }
            "max_risk" => {
                let risk = value.as_str().and_then(risk_from_str).ok_or_else(|| {
                    RpcError::new(
                        ErrorCode::InvalidParams,
                        "'policy.max_risk' must be one of safe|mutating|destructive",
                    )
                })?;
                policy = policy.with_max_risk(risk);
            }
            other => {
                return Err(RpcError::new(
                    ErrorCode::InvalidParams,
                    format!("unknown policy field '{other}'"),
                ));
            }
        }
    }
    Ok(policy)
}

/// Socket read-timeout tick: how often a blocked read re-checks the stop
/// flag and the frame deadline.
const SOCKET_TICK: Duration = Duration::from_millis(50);
/// Accept-loop poll interval while no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// A running TCP wire server. Dropping it without calling
/// [`WireServer::shutdown`] aborts ungracefully (threads are detached).
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Readiness for the admin `/readyz` endpoint: `true` while serving,
    /// flipped `false` at the very start of [`WireServer::shutdown`] —
    /// before the worker pool drains — so load balancers stop routing
    /// while in-flight calls finish.
    ready: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pool: Arc<Pool>,
    obs: Obs,
    /// Handle to the tenancy's database so graceful shutdown can flush and
    /// checkpoint a durable engine.
    db: Database,
}

impl WireServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting connections.
    pub fn bind(
        addr: impl ToSocketAddrs,
        tenancy: Tenancy,
        config: WireConfig,
        obs: Obs,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let db = tenancy.database().clone();
        let stop = Arc::new(AtomicBool::new(false));
        let ready = Arc::new(AtomicBool::new(true));
        let stats = Arc::new(WireStats::default());
        let pool = Arc::new(Pool::new(
            config.workers,
            config.queue_depth,
            &config.tenant_weights,
            Arc::clone(&stats),
            obs.clone(),
        ));
        // Live gauges: database internals plus wire-layer occupancy. One
        // registration per served database — sessions share these.
        db.register_gauges(&obs);
        {
            let stats = Arc::clone(&stats);
            obs.register_gauge("wire.active_sessions", &[], move || {
                stats.active_sessions.load(Ordering::Relaxed) as f64
            });
        }
        {
            let stats = Arc::clone(&stats);
            obs.register_gauge("wire.queue_depth", &[], move || {
                stats.queue_depth.load(Ordering::Relaxed) as f64
            });
        }
        let accept = {
            let stop = Arc::clone(&stop);
            let pool = Arc::clone(&pool);
            let obs = obs.clone();
            let tenancy = Arc::new(tenancy);
            let config = Arc::new(config);
            thread::Builder::new()
                .name("wire-accept".into())
                .spawn(move || {
                    let mut conns: Vec<JoinHandle<()>> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                obs.incr("wire.connections", 1);
                                let stop = Arc::clone(&stop);
                                let pool = Arc::clone(&pool);
                                let obs = obs.clone();
                                let tenancy = Arc::clone(&tenancy);
                                let config = Arc::clone(&config);
                                let stats = Arc::clone(&stats);
                                let handle = thread::Builder::new()
                                    .name("wire-conn".into())
                                    .spawn(move || {
                                        handle_conn(
                                            stream, &tenancy, &config, &pool, &obs, &stop, stats,
                                        );
                                    })
                                    .expect("spawn wire connection");
                                conns.push(handle);
                                conns.retain(|h| !h.is_finished());
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                thread::sleep(ACCEPT_TICK);
                            }
                            Err(_) => thread::sleep(ACCEPT_TICK),
                        }
                    }
                    // Drain: connection threads observe the stop flag at
                    // their next socket tick and run down.
                    for h in conns {
                        let _ = h.join();
                    }
                })
                .expect("spawn wire accept loop")
        };
        Ok(WireServer {
            addr: local,
            stop,
            ready,
            accept: Some(accept),
            pool,
            obs,
            db,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The observability handle every session records into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The readiness flag mirrored by an [`crate::AdminServer`]'s `/readyz`
    /// endpoint: `true` while serving, `false` once a drain begins.
    pub fn ready_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.ready)
    }

    /// Stop accepting, let live connections notice the stop flag, finish
    /// in-flight tool calls, and join every thread. With a durable engine,
    /// the drain point then flushes the WAL and compacts a snapshot, so the
    /// next open recovers instantly without replaying the whole log.
    /// Finally the telemetry handle is flushed, writing the JSONL trace
    /// (including captured slow calls) if one is configured.
    pub fn shutdown(mut self) {
        // Readiness drops first: `/readyz` must report 503 for the whole
        // drain window, not just after it.
        self.ready.store(false, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.pool.shutdown();
        if self.db.is_durable() {
            if let Err(e) = self.db.flush_wal().and_then(|()| self.db.checkpoint()) {
                // Committed data is already on disk via commit-time writes;
                // a failed compaction only costs replay time on reopen.
                self.obs.incr("wire.shutdown.checkpoint_errors", 1);
                let mut span = self.obs.span("wire:shutdown-checkpoint-failed");
                span.attr("error", e.to_string());
            }
        }
        let _ = self.obs.flush();
    }
}

fn handle_conn(
    stream: TcpStream,
    tenancy: &Tenancy,
    config: &WireConfig,
    pool: &Arc<Pool>,
    obs: &Obs,
    stop: &AtomicBool,
    stats: Arc<WireStats>,
) {
    let _ = stream.set_read_timeout(Some(SOCKET_TICK));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    // Responses are single small frames on a request/response protocol;
    // Nagle buys nothing here and costs a delayed-ACK round trip.
    let _ = stream.set_nodelay(true);
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(read_half, config.max_frame_bytes);
    let mut writer = stream;
    let mut ctx = SessionCtx::new(tenancy, config, obs).with_stats(stats);
    let exec = PooledExecutor {
        pool: Arc::clone(pool),
        call_timeout: config.call_timeout,
    };
    loop {
        let frame = match reader.read_frame(Some(config.read_timeout), Some(stop)) {
            Ok(frame) => frame,
            Err(FrameError::Closed) | Err(FrameError::TruncatedEof) | Err(FrameError::Io(_)) => {
                break;
            }
            Err(FrameError::TooLarge { limit }) => {
                obs.incr("wire.rejected.oversize", 1);
                let err = RpcError::new(
                    ErrorCode::FrameTooLarge,
                    format!("frame exceeds the {limit}-byte limit"),
                );
                let _ = write_frame(&mut writer, &response_err(&Json::Null, &err));
                break;
            }
            Err(FrameError::Timeout { deadline }) => {
                // An idle peer just gets disconnected; a peer that dribbled
                // a partial frame gets told why.
                if reader.pending_bytes() > 0 {
                    obs.incr("wire.rejected.timeout", 1);
                    let err = RpcError::new(
                        ErrorCode::DeadlineExceeded,
                        format!("no complete frame within {}ms", deadline.as_millis()),
                    );
                    let _ = write_frame(&mut writer, &response_err(&Json::Null, &err));
                }
                break;
            }
            Err(FrameError::InvalidUtf8) => {
                let err = RpcError::new(ErrorCode::ParseError, "frame is not valid UTF-8");
                let _ = write_frame(&mut writer, &response_err(&Json::Null, &err));
                break;
            }
        };
        if stop.load(Ordering::Relaxed) {
            let err = RpcError::new(ErrorCode::ShuttingDown, "server is draining");
            let _ = write_frame(&mut writer, &response_err(&Json::Null, &err));
            break;
        }
        let dispatch = match parse_request(&frame) {
            Ok(req) => ctx.dispatch(&req, &exec),
            Err(err) => Dispatch {
                frame: response_err(&Json::Null, &err),
                close: false,
            },
        };
        if write_frame(&mut writer, &dispatch.frame).is_err() || dispatch.close {
            break;
        }
    }
    // Dropping `ctx` closes the session's `wire:session` span, if any.
}

/// Serve exactly one session over arbitrary byte streams — the stdio
/// transport. Calls execute inline (no pool): stdio has a single client,
/// so concurrency buys nothing. Returns when the peer sends `shutdown` or
/// closes its end.
pub fn serve_stream<R: Read, W: Write>(
    tenancy: &Tenancy,
    config: &WireConfig,
    obs: &Obs,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    let mut reader = FrameReader::new(input, config.max_frame_bytes);
    let mut ctx = SessionCtx::new(tenancy, config, obs);
    loop {
        let frame = match reader.read_frame(None, None) {
            Ok(frame) => frame,
            Err(FrameError::Closed) | Err(FrameError::TruncatedEof) => break,
            Err(FrameError::TooLarge { limit }) => {
                let err = RpcError::new(
                    ErrorCode::FrameTooLarge,
                    format!("frame exceeds the {limit}-byte limit"),
                );
                write_frame(&mut output, &response_err(&Json::Null, &err))?;
                break;
            }
            Err(FrameError::InvalidUtf8) => {
                let err = RpcError::new(ErrorCode::ParseError, "frame is not valid UTF-8");
                write_frame(&mut output, &response_err(&Json::Null, &err))?;
                break;
            }
            Err(FrameError::Timeout { .. }) => break,
            Err(FrameError::Io(e)) => {
                return Err(std::io::Error::other(e));
            }
        };
        let dispatch = match parse_request(&frame) {
            Ok(req) => ctx.dispatch(&req, &InlineExecutor),
            Err(err) => Dispatch {
                frame: response_err(&Json::Null, &err),
                close: false,
            },
        };
        write_frame(&mut output, &dispatch.frame)?;
        if dispatch.close {
            break;
        }
    }
    Ok(())
}

/// Serve one session on this process's stdin/stdout (the MCP-style stdio
/// transport: the parent process owns the pipes).
pub fn serve_stdio(tenancy: &Tenancy, config: &WireConfig, obs: &Obs) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_stream(tenancy, config, obs, stdin.lock(), stdout.lock())
}
