//! Blocking wire client, plus a *mirror registry* that re-materializes the
//! remote tool surface as local [`Tool`] implementations.
//!
//! The mirror is what makes the wire layer transparent to agents: a
//! `tools/list` response carries enough structure (name, description,
//! typed signature, risk) to rebuild each tool locally, so
//! [`Registry::render_prompt`] over the mirror is byte-identical to the
//! prompt an in-process [`bridgescope_core::BridgeScopeServer`] would
//! produce — and every invocation forwards over the socket, with tool
//! errors (including denial codes and [`toolproto::DenialContext`])
//! reconstructed exactly.

use crate::frame::{write_frame, FrameError, FrameReader};
use crate::rpc::{
    request_frame_traced, risk_from_str, rpc_to_tool_error, tool_output_from_json, RpcError,
    PROTOCOL,
};
use obs::TraceContext;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use toolproto::{
    ArgSpec, ArgType, Args, Json, Registry, Risk, Signature, Tool, ToolError, ToolResult,
};

/// Why a client operation failed at the transport or protocol level.
/// Tool-level failures are *not* errors here — they come back as
/// `Ok(Err(ToolError))` from [`Client::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Socket-level failure.
    Io(String),
    /// Framing failure (oversize, timeout, close).
    Frame(FrameError),
    /// The peer violated the protocol (bad JSON-RPC envelope, id mismatch).
    Protocol(String),
    /// The server answered with a non-tool-band JSON-RPC error.
    Rpc(RpcError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "I/O: {e}"),
            WireError::Frame(e) => write!(f, "framing: {e}"),
            WireError::Protocol(e) => write!(f, "protocol: {e}"),
            WireError::Rpc(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e)
    }
}

/// One tool as advertised by `tools/list`.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolEntry {
    /// Tool name.
    pub name: String,
    /// LLM-facing description.
    pub description: String,
    /// Rebuilt argument signature.
    pub signature: Signature,
    /// Risk class.
    pub risk: Risk,
}

/// A blocking JSON-RPC client for one wire session.
pub struct Client {
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    response_timeout: Duration,
    last_traceparent: Option<String>,
}

impl Client {
    /// Connect to a [`crate::WireServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr)?;
        Client::over(stream)
    }

    /// Build a client over an already-connected stream.
    pub fn over(stream: TcpStream) -> Result<Client, WireError> {
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        stream.set_nodelay(true)?;
        let reader = FrameReader::new(stream.try_clone()?, crate::frame::DEFAULT_MAX_FRAME_BYTES);
        Ok(Client {
            reader,
            writer: stream,
            next_id: 1,
            response_timeout: Duration::from_secs(60),
            last_traceparent: None,
        })
    }

    /// Override how long to wait for each response (default 60 s; must
    /// exceed the server's call timeout or slow calls will look lost).
    pub fn with_response_timeout(mut self, timeout: Duration) -> Self {
        self.response_timeout = timeout;
        self
    }

    /// Issue one request and wait for the matching response. Returns the
    /// `result` value, or the server's error object.
    pub fn request(&mut self, method: &str, params: &Json) -> Result<Json, WireError> {
        self.request_traced(method, params, None)
    }

    /// Like [`Client::request`], carrying an optional `traceparent`. The
    /// traceparent the server echoes (the *effective* one — the server may
    /// substitute its own context for a malformed value) is retained and
    /// readable via [`Client::last_traceparent`].
    pub fn request_traced(
        &mut self,
        method: &str,
        params: &Json,
        traceparent: Option<&str>,
    ) -> Result<Json, WireError> {
        let id = Json::num(self.next_id as f64);
        self.next_id += 1;
        let frame = request_frame_traced(&id, method, params, traceparent);
        write_frame(&mut self.writer, &frame)?;
        let reply = self.reader.read_frame(Some(self.response_timeout), None)?;
        let doc = Json::parse(&reply)
            .map_err(|e| WireError::Protocol(format!("unparseable response: {e}")))?;
        self.last_traceparent = doc
            .get("traceparent")
            .and_then(Json::as_str)
            .map(str::to_owned);
        if doc.get("id") != Some(&id) && !doc.get("id").is_none_or(Json::is_null) {
            return Err(WireError::Protocol(format!(
                "response id mismatch (sent {}, got {})",
                id.to_compact(),
                doc.get("id").map(Json::to_compact).unwrap_or_default()
            )));
        }
        if let Some(error) = doc.get("error") {
            let rpc = RpcError::from_json(error).map_err(WireError::Protocol)?;
            return Err(WireError::Rpc(rpc));
        }
        doc.get("result")
            .cloned()
            .ok_or_else(|| WireError::Protocol("response has neither result nor error".into()))
    }

    /// Open a session as `user` with no requested policy restrictions.
    pub fn initialize(&mut self, user: &str) -> Result<Json, WireError> {
        self.initialize_with(user, &Json::Null)
    }

    /// Open a session as `user`, optionally requesting additional policy
    /// restrictions (an object with `blocked_tools`, `object_blacklist`,
    /// `object_whitelist`, and/or `max_risk`; the server merges it with its
    /// base policy, tightening only).
    pub fn initialize_with(&mut self, user: &str, policy: &Json) -> Result<Json, WireError> {
        let mut pairs = vec![("protocol", Json::str(PROTOCOL)), ("user", Json::str(user))];
        if !policy.is_null() {
            pairs.push(("policy", policy.clone()));
        }
        self.request("initialize", &Json::object(pairs))
    }

    /// Fetch the session's tool surface, signatures rebuilt.
    pub fn tools_list(&mut self) -> Result<Vec<ToolEntry>, WireError> {
        let result = self.request("tools/list", &Json::Null)?;
        let tools = result
            .get("tools")
            .and_then(Json::as_array)
            .ok_or_else(|| WireError::Protocol("tools/list result missing 'tools'".into()))?;
        tools.iter().map(decode_tool_entry).collect()
    }

    /// Invoke a remote tool. Transport/protocol failures are the outer
    /// error; tool-level outcomes (success *or* denial/validation/execution
    /// failure) land in the inner [`ToolResult`], structurally identical to
    /// an in-process invocation.
    pub fn call(&mut self, name: &str, arguments: &Json) -> Result<ToolResult, WireError> {
        // No traceparent: the server nests the call under its own
        // wire:session span, so a whole session reads as one trace.
        self.call_inner(name, arguments, None)
    }

    /// Invoke a remote tool under an explicit trace context — the caller's
    /// own span context serialized as a traceparent, so the remote spans
    /// join a trace that started on this side of the wire.
    pub fn call_traced(
        &mut self,
        name: &str,
        arguments: &Json,
        ctx: &TraceContext,
    ) -> Result<ToolResult, WireError> {
        self.call_inner(name, arguments, Some(&ctx.to_traceparent()))
    }

    fn call_inner(
        &mut self,
        name: &str,
        arguments: &Json,
        traceparent: Option<&str>,
    ) -> Result<ToolResult, WireError> {
        let params = Json::object([("name", Json::str(name)), ("arguments", arguments.clone())]);
        match self.request_traced("tools/call", &params, traceparent) {
            Ok(result) => {
                let output = tool_output_from_json(&result).map_err(WireError::Protocol)?;
                Ok(Ok(output))
            }
            Err(WireError::Rpc(rpc)) => match rpc_to_tool_error(&rpc) {
                Some(tool_err) => Ok(Err(tool_err)),
                None => Err(WireError::Rpc(rpc)),
            },
            Err(other) => Err(other),
        }
    }

    /// The `traceparent` echoed on the most recent response, if any — the
    /// effective trace the server filed that request under.
    pub fn last_traceparent(&self) -> Option<&str> {
        self.last_traceparent.as_deref()
    }

    /// End the session; the server closes the connection afterwards.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        self.request("shutdown", &Json::Null).map(|_| ())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), WireError> {
        let result = self.request("ping", &Json::Null)?;
        if result.as_str() == Some("pong") {
            Ok(())
        } else {
            Err(WireError::Protocol("ping did not pong".into()))
        }
    }
}

fn decode_tool_entry(value: &Json) -> Result<ToolEntry, WireError> {
    let get_str = |key: &str| -> Result<String, WireError> {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| WireError::Protocol(format!("tool entry missing string '{key}'")))
    };
    let name = get_str("name")?;
    let description = get_str("description")?;
    let risk = risk_from_str(&get_str("risk")?)
        .ok_or_else(|| WireError::Protocol(format!("tool '{name}' has an unknown risk class")))?;
    let sig = value
        .get("signature")
        .ok_or_else(|| WireError::Protocol(format!("tool '{name}' missing signature")))?;
    let allow_extra = sig
        .get("allow_extra")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let args = sig
        .get("args")
        .and_then(Json::as_array)
        .ok_or_else(|| WireError::Protocol(format!("tool '{name}' signature missing args")))?
        .iter()
        .map(|arg| {
            let field = |key: &str| arg.get(key).and_then(Json::as_str);
            let arg_name = field("name")
                .ok_or_else(|| WireError::Protocol(format!("arg of '{name}' missing name")))?;
            let ty_text = field("type").ok_or_else(|| {
                WireError::Protocol(format!("arg '{arg_name}' of '{name}' missing type"))
            })?;
            let ty = ArgType::parse(ty_text).ok_or_else(|| {
                WireError::Protocol(format!(
                    "arg '{arg_name}' of '{name}' has unknown type '{ty_text}'"
                ))
            })?;
            Ok(ArgSpec {
                name: arg_name.to_owned(),
                ty,
                description: field("description").unwrap_or_default().to_owned(),
                required: arg.get("required").and_then(Json::as_bool).unwrap_or(true),
                default: arg.get("default").cloned(),
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(ToolEntry {
        name,
        description,
        signature: Signature { args, allow_extra },
        risk,
    })
}

/// A local [`Tool`] that forwards invocations to a remote session. The
/// shared client is mutex-guarded: the underlying protocol is
/// request/response, so calls serialize per session (matching the agent
/// loop, which issues one tool call at a time).
struct MirrorTool {
    entry: ToolEntry,
    client: Arc<Mutex<Client>>,
}

impl Tool for MirrorTool {
    fn name(&self) -> &str {
        &self.entry.name
    }

    fn description(&self) -> &str {
        &self.entry.description
    }

    fn signature(&self) -> &Signature {
        &self.entry.signature
    }

    fn risk(&self) -> Risk {
        self.entry.risk
    }

    fn invoke(&self, args: &Args) -> ToolResult {
        let payload = Json::Object(args.clone());
        let mut client = self
            .client
            .lock()
            .map_err(|_| ToolError::Execution("wire client poisoned".into()))?;
        match client.call(&self.entry.name, &payload) {
            Ok(result) => result,
            // Transport failures surface as execution errors: retryable
            // from the agent's point of view, like any runtime fault.
            Err(e) => Err(ToolError::Execution(format!("wire transport: {e}"))),
        }
    }
}

/// Build a local [`Registry`] mirroring the remote session's surface.
/// `registry.render_prompt()` on the result equals the server-side prompt
/// byte for byte, and every call round-trips over the wire.
pub fn mirror_registry(client: Arc<Mutex<Client>>) -> Result<Registry, WireError> {
    let entries = client
        .lock()
        .map_err(|_| WireError::Protocol("wire client poisoned".into()))?
        .tools_list()?;
    let mut registry = Registry::new();
    for entry in entries {
        registry.register(Arc::new(MirrorTool {
            entry,
            client: Arc::clone(&client),
        }));
    }
    Ok(registry)
}
