//! Newline-delimited framing over arbitrary byte streams.
//!
//! One frame is one JSON document followed by `\n` (an optional `\r` before
//! the newline is tolerated, so `telnet`-style clients work). Compact JSON
//! never contains a raw newline — control characters are escaped — so the
//! framing needs no length prefix and stays trivially debuggable.
//!
//! [`FrameReader`] enforces the two limits the threat model for untrusted
//! peers requires: a maximum frame size (memory bound) and a per-frame
//! deadline (liveness bound). Deadlines work by setting a short read timeout
//! on the underlying stream and counting ticks here, which also lets a
//! server poll its shutdown flag between ticks.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Default maximum frame size (1 MiB): far above any legitimate tool
/// payload, far below anything that could exhaust server memory per peer.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Why reading a frame failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the stream between frames (clean EOF).
    Closed,
    /// The stream ended in the middle of a frame.
    TruncatedEof,
    /// More than the configured limit arrived without a newline.
    TooLarge {
        /// The configured frame-size limit in bytes.
        limit: usize,
    },
    /// The per-frame deadline elapsed before a full frame arrived.
    Timeout {
        /// The deadline that was exceeded.
        deadline: Duration,
    },
    /// The frame was not valid UTF-8.
    InvalidUtf8,
    /// Any other I/O failure, stringified.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TruncatedEof => write!(f, "stream ended mid-frame"),
            FrameError::TooLarge { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            FrameError::Timeout { deadline } => {
                write!(f, "no complete frame within {}ms", deadline.as_millis())
            }
            FrameError::InvalidUtf8 => write!(f, "frame is not valid UTF-8"),
            FrameError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Buffered reader that yields newline-delimited frames with size and
/// deadline limits. Bytes past a frame boundary are kept for the next call,
/// so pipelined frames are handled correctly.
pub struct FrameReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    max_frame: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a stream; frames longer than `max_frame` bytes are rejected.
    pub fn new(inner: R, max_frame: usize) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Bytes buffered toward an incomplete frame. Lets callers distinguish
    /// an idle peer (nothing buffered at timeout) from a slow-loris one.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Read one frame.
    ///
    /// `deadline` bounds the wall-clock wait for a complete frame; it only
    /// has effect when the underlying stream returns `WouldBlock`/`TimedOut`
    /// periodically (i.e. a socket with a short read timeout) — a fully
    /// blocking stream (stdio) simply blocks until data or EOF. When `stop`
    /// is set the reader returns [`FrameError::Closed`] at the next tick,
    /// which is how server connections notice graceful shutdown.
    pub fn read_frame(
        &mut self,
        deadline: Option<Duration>,
        stop: Option<&AtomicBool>,
    ) -> Result<String, FrameError> {
        let start = Instant::now();
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                if pos > self.max_frame {
                    self.buf.drain(..=pos);
                    return Err(FrameError::TooLarge {
                        limit: self.max_frame,
                    });
                }
                let mut frame: Vec<u8> = self.buf.drain(..=pos).collect();
                frame.pop();
                if frame.last() == Some(&b'\r') {
                    frame.pop();
                }
                return String::from_utf8(frame).map_err(|_| FrameError::InvalidUtf8);
            }
            if self.buf.len() > self.max_frame {
                return Err(FrameError::TooLarge {
                    limit: self.max_frame,
                });
            }
            if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                return Err(FrameError::Closed);
            }
            if let Some(deadline) = deadline {
                if start.elapsed() >= deadline {
                    return Err(FrameError::Timeout { deadline });
                }
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        FrameError::Closed
                    } else {
                        FrameError::TruncatedEof
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    // A tick: loop back to re-check stop flag and deadline.
                }
                Err(e) => return Err(FrameError::Io(e.to_string())),
            }
        }
    }
}

/// Write one frame: the text, a newline, and a flush. `text` must not
/// contain a raw newline (compact JSON never does). The payload and the
/// delimiter go out in a single write — two small writes on a TCP stream
/// interact with Nagle + delayed ACK and cost tens of milliseconds per
/// frame.
pub fn write_frame<W: Write>(writer: &mut W, text: &str) -> io::Result<()> {
    debug_assert!(!text.contains('\n'), "frames are single-line");
    let mut buf = Vec::with_capacity(text.len() + 1);
    buf.extend_from_slice(text.as_bytes());
    buf.push(b'\n');
    writer.write_all(&buf)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(data: &str, max: usize) -> FrameReader<Cursor<Vec<u8>>> {
        FrameReader::new(Cursor::new(data.as_bytes().to_vec()), max)
    }

    #[test]
    fn splits_pipelined_frames() {
        let mut r = reader("{\"a\":1}\n{\"b\":2}\r\n", 64);
        assert_eq!(r.read_frame(None, None).unwrap(), "{\"a\":1}");
        assert_eq!(r.read_frame(None, None).unwrap(), "{\"b\":2}");
        assert_eq!(r.read_frame(None, None), Err(FrameError::Closed));
    }

    #[test]
    fn oversize_frame_rejected_with_bounded_memory() {
        let long = "x".repeat(100);
        let mut r = reader(&format!("{long}\n"), 10);
        assert_eq!(
            r.read_frame(None, None),
            Err(FrameError::TooLarge { limit: 10 })
        );
    }

    #[test]
    fn eof_mid_frame_is_truncation() {
        let mut r = reader("{\"unterminated\"", 64);
        assert_eq!(r.read_frame(None, None), Err(FrameError::TruncatedEof));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut r = FrameReader::new(Cursor::new(vec![0xff, 0xfe, b'\n']), 64);
        assert_eq!(r.read_frame(None, None), Err(FrameError::InvalidUtf8));
    }

    #[test]
    fn stop_flag_reads_as_closed() {
        struct Pending;
        impl Read for Pending {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::from(io::ErrorKind::WouldBlock))
            }
        }
        let stop = AtomicBool::new(true);
        let mut r = FrameReader::new(Pending, 64);
        assert_eq!(r.read_frame(None, Some(&stop)), Err(FrameError::Closed));
    }

    #[test]
    fn deadline_fires_on_slow_stream() {
        struct Slow;
        impl Read for Slow {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                std::thread::sleep(Duration::from_millis(5));
                Err(io::Error::from(io::ErrorKind::TimedOut))
            }
        }
        let mut r = FrameReader::new(Slow, 64);
        let err = r
            .read_frame(Some(Duration::from_millis(20)), None)
            .unwrap_err();
        assert!(matches!(err, FrameError::Timeout { .. }));
    }

    #[test]
    fn write_frame_appends_newline() {
        let mut out = Vec::new();
        write_frame(&mut out, "{\"x\":1}").unwrap();
        assert_eq!(out, b"{\"x\":1}\n");
    }
}
