//! JSON-RPC 2.0 message model with MCP-flavored methods and a lossless
//! encoding of [`ToolError`] so denial semantics survive the wire.
//!
//! The protocol is deliberately tiny: four methods (`initialize`,
//! `tools/list`, `tools/call`, `shutdown`) plus `ping`, request/response
//! only (no server-initiated notifications), and typed error codes in the
//! JSON-RPC server-error range. Everything round-trips through
//! [`toolproto::Json`], so the same hardened parser that guards tool
//! arguments guards the protocol envelope.

use toolproto::{ArgError, DenialContext, Json, Risk, ToolError, ToolOutput};

/// Protocol identifier negotiated during `initialize`.
pub const PROTOCOL: &str = "bridgescope-wire/1";

/// Typed wire error codes. Standard JSON-RPC codes where they exist;
/// everything BridgeScope-specific lives in the reserved server range
/// (-32000..-32099). Tool-level failures get their own band so clients can
/// reconstruct the exact [`ToolError`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not parseable JSON (-32700).
    ParseError,
    /// The frame parsed but is not a valid JSON-RPC request (-32600).
    InvalidRequest,
    /// Unknown method (-32601).
    MethodNotFound,
    /// Malformed `params` for a known method (-32602).
    InvalidParams,
    /// The worker pool's bounded queue is full — back off and retry (-32000).
    ServerBusy,
    /// The frame exceeded the server's size limit (-32001).
    FrameTooLarge,
    /// A read/write/call deadline elapsed (-32002).
    DeadlineExceeded,
    /// The session exhausted its per-session request budget (-32003).
    SessionLimit,
    /// A method other than `initialize`/`ping` arrived first (-32004).
    NotInitialized,
    /// `initialize` named a user the database does not know (-32005).
    AuthFailed,
    /// The server is draining and accepts no new work (-32006).
    ShuttingDown,
    /// Tool invocation denied by a security gate (-32010).
    ToolDenied,
    /// Tool not registered / not exposed to this session (-32011).
    ToolUnknown,
    /// Tool arguments failed signature validation (-32012).
    ToolInvalidArgs,
    /// The tool ran and failed (-32013).
    ToolExecution,
}

impl ErrorCode {
    /// Numeric JSON-RPC code.
    pub fn code(self) -> i64 {
        match self {
            ErrorCode::ParseError => -32700,
            ErrorCode::InvalidRequest => -32600,
            ErrorCode::MethodNotFound => -32601,
            ErrorCode::InvalidParams => -32602,
            ErrorCode::ServerBusy => -32000,
            ErrorCode::FrameTooLarge => -32001,
            ErrorCode::DeadlineExceeded => -32002,
            ErrorCode::SessionLimit => -32003,
            ErrorCode::NotInitialized => -32004,
            ErrorCode::AuthFailed => -32005,
            ErrorCode::ShuttingDown => -32006,
            ErrorCode::ToolDenied => -32010,
            ErrorCode::ToolUnknown => -32011,
            ErrorCode::ToolInvalidArgs => -32012,
            ErrorCode::ToolExecution => -32013,
        }
    }

    /// Stable machine-readable name, also used as metric label.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse_error",
            ErrorCode::InvalidRequest => "invalid_request",
            ErrorCode::MethodNotFound => "method_not_found",
            ErrorCode::InvalidParams => "invalid_params",
            ErrorCode::ServerBusy => "server_busy",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::SessionLimit => "session_limit",
            ErrorCode::NotInitialized => "not_initialized",
            ErrorCode::AuthFailed => "auth_failed",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::ToolDenied => "tool_denied",
            ErrorCode::ToolUnknown => "tool_unknown",
            ErrorCode::ToolInvalidArgs => "tool_invalid_args",
            ErrorCode::ToolExecution => "tool_execution",
        }
    }

    /// Reverse lookup from the numeric code.
    pub fn from_code(code: i64) -> Option<ErrorCode> {
        const ALL: [ErrorCode; 15] = [
            ErrorCode::ParseError,
            ErrorCode::InvalidRequest,
            ErrorCode::MethodNotFound,
            ErrorCode::InvalidParams,
            ErrorCode::ServerBusy,
            ErrorCode::FrameTooLarge,
            ErrorCode::DeadlineExceeded,
            ErrorCode::SessionLimit,
            ErrorCode::NotInitialized,
            ErrorCode::AuthFailed,
            ErrorCode::ShuttingDown,
            ErrorCode::ToolDenied,
            ErrorCode::ToolUnknown,
            ErrorCode::ToolInvalidArgs,
            ErrorCode::ToolExecution,
        ];
        ALL.into_iter().find(|c| c.code() == code)
    }
}

/// A JSON-RPC error object.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcError {
    /// Typed code.
    pub code: ErrorCode,
    /// Human/LLM-facing message.
    pub message: String,
    /// Structured payload (denial context, arg-error details, …).
    pub data: Json,
}

impl RpcError {
    /// An error with no structured data.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        RpcError {
            code,
            message: message.into(),
            data: Json::Null,
        }
    }

    /// Attach structured data.
    pub fn with_data(mut self, data: Json) -> Self {
        self.data = data;
        self
    }

    /// Encode as the JSON-RPC `error` member.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("code", Json::num(self.code.code() as f64)),
            ("message", Json::str(self.message.clone())),
        ];
        if !self.data.is_null() {
            pairs.push(("data", self.data.clone()));
        }
        Json::object(pairs)
    }

    /// Decode the JSON-RPC `error` member. Unknown codes are reported as
    /// protocol violations rather than silently coerced.
    pub fn from_json(value: &Json) -> Result<RpcError, String> {
        let raw = value
            .get("code")
            .and_then(Json::as_i64)
            .ok_or("error object missing integer 'code'")?;
        let code = ErrorCode::from_code(raw).ok_or_else(|| format!("unknown error code {raw}"))?;
        let message = value
            .get("message")
            .and_then(Json::as_str)
            .ok_or("error object missing 'message'")?
            .to_owned();
        let data = value.get("data").cloned().unwrap_or(Json::Null);
        Ok(RpcError {
            code,
            message,
            data,
        })
    }
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}): {}",
            self.code.name(),
            self.code.code(),
            self.message
        )
    }
}

/// A parsed JSON-RPC request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request id (echoed in the response). `Json::Null` for notifications.
    pub id: Json,
    /// Method name.
    pub method: String,
    /// Parameters (object, or `Json::Null` when absent).
    pub params: Json,
    /// Raw `traceparent` member, when the client supplied a string one.
    /// Carried verbatim: the server validates it (`obs::TraceContext::parse`)
    /// and falls back to a fresh root when malformed, so a hostile value
    /// can never fail a request — only lose its own trace continuity.
    pub traceparent: Option<String>,
}

/// Parse a frame into a [`Request`]. The `jsonrpc: "2.0"` member is
/// required; `id` may be a string or number (null is tolerated and treated
/// as a request, not a notification — this server always answers).
pub fn parse_request(frame: &str) -> Result<Request, RpcError> {
    let doc = Json::parse(frame)
        .map_err(|e| RpcError::new(ErrorCode::ParseError, format!("invalid JSON: {e}")))?;
    let obj = doc
        .as_object()
        .ok_or_else(|| RpcError::new(ErrorCode::InvalidRequest, "request must be an object"))?;
    if obj.get("jsonrpc").and_then(Json::as_str) != Some("2.0") {
        return Err(RpcError::new(
            ErrorCode::InvalidRequest,
            "missing or unsupported 'jsonrpc' version (want \"2.0\")",
        ));
    }
    let method = obj
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| RpcError::new(ErrorCode::InvalidRequest, "missing string 'method'"))?
        .to_owned();
    let id = obj.get("id").cloned().unwrap_or(Json::Null);
    match id {
        Json::Null | Json::Str(_) | Json::Number(_) => {}
        _ => {
            return Err(RpcError::new(
                ErrorCode::InvalidRequest,
                "'id' must be a string, number, or null",
            ))
        }
    }
    let params = obj.get("params").cloned().unwrap_or(Json::Null);
    // A non-string traceparent is treated as absent, not an error: trace
    // continuity is best-effort metadata, never a reason to refuse work.
    let traceparent = obj
        .get("traceparent")
        .and_then(Json::as_str)
        .map(str::to_owned);
    Ok(Request {
        id,
        method,
        params,
        traceparent,
    })
}

/// Encode a request frame.
pub fn request_frame(id: &Json, method: &str, params: &Json) -> String {
    request_frame_traced(id, method, params, None)
}

/// Encode a request frame carrying an optional `traceparent`.
pub fn request_frame_traced(
    id: &Json,
    method: &str,
    params: &Json,
    traceparent: Option<&str>,
) -> String {
    let mut pairs = vec![
        ("jsonrpc", Json::str("2.0")),
        ("id", id.clone()),
        ("method", Json::str(method)),
    ];
    if let Some(tp) = traceparent {
        pairs.push(("traceparent", Json::str(tp)));
    }
    if !params.is_null() {
        pairs.push(("params", params.clone()));
    }
    Json::object(pairs).to_compact()
}

/// Encode a success response frame.
pub fn response_ok(id: &Json, result: Json) -> String {
    response_ok_traced(id, result, None)
}

/// Encode a success response frame echoing the effective `traceparent`.
pub fn response_ok_traced(id: &Json, result: Json, traceparent: Option<&str>) -> String {
    let mut pairs = vec![("jsonrpc", Json::str("2.0")), ("id", id.clone())];
    if let Some(tp) = traceparent {
        pairs.push(("traceparent", Json::str(tp)));
    }
    pairs.push(("result", result));
    Json::object(pairs).to_compact()
}

/// Encode an error response frame.
pub fn response_err(id: &Json, error: &RpcError) -> String {
    response_err_traced(id, error, None)
}

/// Encode an error response frame echoing the effective `traceparent`, so
/// failed and denied calls stay attributable to their trace too.
pub fn response_err_traced(id: &Json, error: &RpcError, traceparent: Option<&str>) -> String {
    let mut pairs = vec![("jsonrpc", Json::str("2.0")), ("id", id.clone())];
    if let Some(tp) = traceparent {
        pairs.push(("traceparent", Json::str(tp)));
    }
    pairs.push(("error", error.to_json()));
    Json::object(pairs).to_compact()
}

/// Render a [`Risk`] for the wire.
pub fn risk_to_str(risk: Risk) -> &'static str {
    match risk {
        Risk::Safe => "safe",
        Risk::Mutating => "mutating",
        Risk::Destructive => "destructive",
    }
}

/// Parse a wire risk string.
pub fn risk_from_str(text: &str) -> Option<Risk> {
    match text {
        "safe" => Some(Risk::Safe),
        "mutating" => Some(Risk::Mutating),
        "destructive" => Some(Risk::Destructive),
        _ => None,
    }
}

fn denial_context_to_json(ctx: &DenialContext) -> Json {
    let mut pairs: Vec<(&str, Json)> = Vec::new();
    if let Some(v) = &ctx.object {
        pairs.push(("object", Json::str(v.clone())));
    }
    if let Some(v) = &ctx.action {
        pairs.push(("action", Json::str(v.clone())));
    }
    if let Some(v) = &ctx.sql {
        pairs.push(("sql", Json::str(v.clone())));
    }
    if let Some(v) = &ctx.tool {
        pairs.push(("tool", Json::str(v.clone())));
    }
    Json::object(pairs)
}

fn denial_context_from_json(value: &Json) -> DenialContext {
    let field = |k: &str| value.get(k).and_then(Json::as_str).map(str::to_owned);
    DenialContext {
        object: field("object"),
        action: field("action"),
        sql: field("sql"),
        tool: field("tool"),
    }
}

/// Map a JSON type name (from `Json::type_name`) back to the identical
/// `&'static str`. `ArgError::WrongType.found` holds a static name, so the
/// decode side must intern onto the same set for structural equality.
fn static_type_name(name: &str) -> &'static str {
    match name {
        "null" => "null",
        "boolean" => "boolean",
        "number" => "number",
        "string" => "string",
        "array" => "array",
        "object" => "object",
        _ => "unknown",
    }
}

fn arg_error_to_json(err: &ArgError) -> Json {
    match err {
        ArgError::Missing(name) => Json::object([
            ("kind", Json::str("missing")),
            ("name", Json::str(name.clone())),
        ]),
        ArgError::WrongType {
            name,
            expected,
            found,
        } => Json::object([
            ("kind", Json::str("wrong_type")),
            ("name", Json::str(name.clone())),
            ("expected", Json::str(expected.clone())),
            ("found", Json::str(*found)),
        ]),
        ArgError::Unknown(name) => Json::object([
            ("kind", Json::str("unknown")),
            ("name", Json::str(name.clone())),
        ]),
        ArgError::NotAnObject => Json::object([("kind", Json::str("not_an_object"))]),
    }
}

fn arg_error_from_json(value: &Json) -> Option<ArgError> {
    let name = || value.get("name").and_then(Json::as_str).map(str::to_owned);
    match value.get("kind").and_then(Json::as_str)? {
        "missing" => Some(ArgError::Missing(name()?)),
        "wrong_type" => Some(ArgError::WrongType {
            name: name()?,
            expected: value.get("expected").and_then(Json::as_str)?.to_owned(),
            found: static_type_name(value.get("found").and_then(Json::as_str)?),
        }),
        "unknown" => Some(ArgError::Unknown(name()?)),
        "not_an_object" => Some(ArgError::NotAnObject),
        _ => None,
    }
}

/// Encode a [`ToolError`] as a typed [`RpcError`] so the client can rebuild
/// the exact variant. Denials carry their code and full [`DenialContext`]
/// in `data`; this is what makes wire denial outcomes indistinguishable
/// from in-process ones.
pub fn tool_error_to_rpc(err: &ToolError) -> RpcError {
    match err {
        ToolError::InvalidArgs(arg) => RpcError::new(ErrorCode::ToolInvalidArgs, arg.to_string())
            .with_data(arg_error_to_json(arg)),
        ToolError::UnknownTool(name) => {
            RpcError::new(ErrorCode::ToolUnknown, format!("unknown tool '{name}'"))
                .with_data(Json::object([("tool", Json::str(name.clone()))]))
        }
        ToolError::Denied {
            code,
            message,
            context,
        } => RpcError::new(ErrorCode::ToolDenied, message.clone()).with_data(Json::object([
            ("denial_code", Json::str(code.clone())),
            ("context", denial_context_to_json(context)),
        ])),
        ToolError::Execution(message) => RpcError::new(ErrorCode::ToolExecution, message.clone()),
    }
}

/// Decode a tool-band [`RpcError`] back into the exact [`ToolError`].
/// Returns `None` for codes outside the tool band (those are transport or
/// protocol failures the caller must surface differently).
pub fn rpc_to_tool_error(err: &RpcError) -> Option<ToolError> {
    match err.code {
        ErrorCode::ToolInvalidArgs => arg_error_from_json(&err.data).map(ToolError::InvalidArgs),
        ErrorCode::ToolUnknown => Some(ToolError::UnknownTool(
            err.data
                .get("tool")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
        )),
        ErrorCode::ToolDenied => Some(ToolError::Denied {
            code: err
                .data
                .get("denial_code")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_owned(),
            message: err.message.clone(),
            context: Box::new(
                err.data
                    .get("context")
                    .map(denial_context_from_json)
                    .unwrap_or_default(),
            ),
        }),
        ErrorCode::ToolExecution => Some(ToolError::Execution(err.message.clone())),
        _ => None,
    }
}

/// Encode a [`ToolOutput`] as a `tools/call` result.
pub fn tool_output_to_json(out: &ToolOutput) -> Json {
    let mut pairs = vec![("value", out.value.clone())];
    if let Some(rows) = out.rows {
        pairs.push(("rows", Json::num(rows as f64)));
    }
    Json::object(pairs)
}

/// Decode a `tools/call` result back into a [`ToolOutput`].
pub fn tool_output_from_json(value: &Json) -> Result<ToolOutput, String> {
    let payload = value
        .get("value")
        .cloned()
        .ok_or("tools/call result missing 'value'")?;
    let rows = value
        .get("rows")
        .and_then(Json::as_i64)
        .map(|n| n.max(0) as usize);
    Ok(ToolOutput {
        value: payload,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::ParseError,
            ErrorCode::InvalidRequest,
            ErrorCode::MethodNotFound,
            ErrorCode::InvalidParams,
            ErrorCode::ServerBusy,
            ErrorCode::FrameTooLarge,
            ErrorCode::DeadlineExceeded,
            ErrorCode::SessionLimit,
            ErrorCode::NotInitialized,
            ErrorCode::AuthFailed,
            ErrorCode::ShuttingDown,
            ErrorCode::ToolDenied,
            ErrorCode::ToolUnknown,
            ErrorCode::ToolInvalidArgs,
            ErrorCode::ToolExecution,
        ] {
            assert_eq!(ErrorCode::from_code(code.code()), Some(code));
            assert!(!code.name().is_empty());
        }
        assert_eq!(ErrorCode::from_code(-1), None);
    }

    #[test]
    fn parse_request_validates_envelope() {
        let req = parse_request(r#"{"jsonrpc":"2.0","id":1,"method":"ping"}"#).unwrap();
        assert_eq!(req.method, "ping");
        assert_eq!(req.id.as_i64(), Some(1));
        assert!(req.params.is_null());

        let bad = parse_request("not json").unwrap_err();
        assert_eq!(bad.code, ErrorCode::ParseError);
        let bad = parse_request("[1,2,3]").unwrap_err();
        assert_eq!(bad.code, ErrorCode::InvalidRequest);
        let bad = parse_request(r#"{"jsonrpc":"1.0","id":1,"method":"ping"}"#).unwrap_err();
        assert_eq!(bad.code, ErrorCode::InvalidRequest);
        let bad = parse_request(r#"{"jsonrpc":"2.0","id":[],"method":"ping"}"#).unwrap_err();
        assert_eq!(bad.code, ErrorCode::InvalidRequest);
        let bad = parse_request(r#"{"jsonrpc":"2.0","id":1}"#).unwrap_err();
        assert_eq!(bad.code, ErrorCode::InvalidRequest);
    }

    #[test]
    fn request_and_responses_round_trip_through_parse() {
        let frame = request_frame(
            &Json::num(7.0),
            "tools/call",
            &Json::object([("name", Json::str("select"))]),
        );
        let req = parse_request(&frame).unwrap();
        assert_eq!(req.method, "tools/call");
        assert_eq!(
            req.params.get("name").and_then(Json::as_str),
            Some("select")
        );

        let ok = response_ok(&req.id, Json::str("fine"));
        let doc = Json::parse(&ok).unwrap();
        assert_eq!(doc.get("result").and_then(Json::as_str), Some("fine"));
        assert_eq!(doc.get("id").and_then(Json::as_i64), Some(7));

        let err = response_err(&req.id, &RpcError::new(ErrorCode::ServerBusy, "queue full"));
        let doc = Json::parse(&err).unwrap();
        let decoded = RpcError::from_json(doc.get("error").unwrap()).unwrap();
        assert_eq!(decoded.code, ErrorCode::ServerBusy);
        assert_eq!(decoded.message, "queue full");
    }

    #[test]
    fn tool_errors_round_trip_structurally() {
        let cases = vec![
            ToolError::InvalidArgs(ArgError::Missing("sql".into())),
            ToolError::InvalidArgs(ArgError::WrongType {
                name: "limit".into(),
                expected: "integer".into(),
                found: "string",
            }),
            ToolError::InvalidArgs(ArgError::Unknown("bogus".into())),
            ToolError::InvalidArgs(ArgError::NotAnObject),
            ToolError::UnknownTool("drop".into()),
            ToolError::denied_with(
                "privilege",
                "no INSERT on sales",
                DenialContext::default()
                    .with_object("sales")
                    .with_action("INSERT")
                    .with_sql("INSERT INTO sales VALUES (1)")
                    .with_tool("insert"),
            ),
            ToolError::denied("policy", "tool blocked by session policy"),
            ToolError::Execution("SQL error: no such table".into()),
        ];
        for original in cases {
            let rpc = tool_error_to_rpc(&original);
            // Serialize through an actual frame to prove wire fidelity.
            let frame = response_err(&Json::num(1.0), &rpc);
            let doc = Json::parse(&frame).unwrap();
            let decoded_rpc = RpcError::from_json(doc.get("error").unwrap()).unwrap();
            let decoded = rpc_to_tool_error(&decoded_rpc).unwrap();
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn transport_errors_do_not_decode_as_tool_errors() {
        let rpc = RpcError::new(ErrorCode::ServerBusy, "queue full");
        assert_eq!(rpc_to_tool_error(&rpc), None);
    }

    #[test]
    fn tool_output_round_trips() {
        let out = ToolOutput::with_rows(Json::array([Json::num(1.0), Json::num(2.0)]), 2);
        let json = tool_output_to_json(&out);
        let back = tool_output_from_json(&json).unwrap();
        assert_eq!(back, out);

        let plain = ToolOutput::value(Json::str("ok"));
        let back = tool_output_from_json(&tool_output_to_json(&plain)).unwrap();
        assert_eq!(back.rows, None);
    }

    #[test]
    fn risk_strings_round_trip() {
        for risk in [Risk::Safe, Risk::Mutating, Risk::Destructive] {
            assert_eq!(risk_from_str(risk_to_str(risk)), Some(risk));
        }
        assert_eq!(risk_from_str("catastrophic"), None);
    }
}
