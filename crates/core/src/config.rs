//! User-side security policy configuration.
//!
//! The paper's §2.2–2.3 give users two dials *on top of* database privileges:
//! object-level white/black lists (hide sensitive tables from the LLM even
//! when the user could read them) and tool-level restrictions (e.g. block the
//! `drop` tool outright). [`SecurityPolicy`] carries both, plus the adaptive
//! schema-retrieval threshold *n* and the exemplar top-k default.

use std::collections::BTreeSet;
use toolproto::Risk;

// Deployment configuration rides next to the security policy: operators who
// configure what the LLM may see also configure where committed state lives.
pub use minidb::{DurabilityConfig, FsyncPolicy};

/// A user-side security policy applied by every BridgeScope tool.
#[derive(Debug, Clone)]
pub struct SecurityPolicy {
    /// When set, only these objects are visible/operable (whitelist).
    pub object_whitelist: Option<BTreeSet<String>>,
    /// Objects never visible/operable (blacklist; wins over the whitelist).
    pub object_blacklist: BTreeSet<String>,
    /// Columns never visible/operable, as `(table, column)` pairs — the
    /// paper's "more granular privileges (e.g., on specific columns)"
    /// articulated user-side: schema outputs omit them, exemplar retrieval
    /// refuses them, and the verification gate rejects statements that may
    /// touch them (including via `SELECT *`).
    pub column_blacklist: BTreeSet<(String, String)>,
    /// Tool names never exposed (e.g. `drop`).
    pub tool_blacklist: BTreeSet<String>,
    /// Maximum risk class of exposed tools.
    pub max_risk: Risk,
    /// Adaptive schema retrieval: at most this many objects are returned in
    /// full; beyond it `get_schema` returns names only (paper §2.2).
    pub schema_threshold: usize,
    /// Default `k` for `get_value` exemplar retrieval.
    pub exemplar_k: usize,
}

impl Default for SecurityPolicy {
    fn default() -> Self {
        SecurityPolicy {
            object_whitelist: None,
            object_blacklist: BTreeSet::new(),
            column_blacklist: BTreeSet::new(),
            tool_blacklist: BTreeSet::new(),
            max_risk: Risk::Destructive,
            schema_threshold: 64,
            exemplar_k: 5,
        }
    }
}

impl SecurityPolicy {
    /// Policy permitting everything (database privileges still apply).
    pub fn permissive() -> Self {
        SecurityPolicy::default()
    }

    /// Builder: set an object whitelist.
    pub fn with_whitelist<I, S>(mut self, objects: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.object_whitelist = Some(objects.into_iter().map(Into::into).collect());
        self
    }

    /// Builder: add objects to the blacklist.
    pub fn with_blacklist<I, S>(mut self, objects: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.object_blacklist
            .extend(objects.into_iter().map(Into::into));
        self
    }

    /// Builder: blacklist `(table, column)` pairs.
    pub fn with_column_blacklist<I, T, C>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = (T, C)>,
        T: Into<String>,
        C: Into<String>,
    {
        self.column_blacklist
            .extend(columns.into_iter().map(|(t, c)| (t.into(), c.into())));
        self
    }

    /// Builder: block tools by name.
    pub fn with_blocked_tools<I, S>(mut self, tools: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.tool_blacklist
            .extend(tools.into_iter().map(Into::into));
        self
    }

    /// Builder: cap the risk class of exposed tools.
    pub fn with_max_risk(mut self, risk: Risk) -> Self {
        self.max_risk = risk;
        self
    }

    /// Builder: set the adaptive schema threshold *n*.
    pub fn with_schema_threshold(mut self, n: usize) -> Self {
        self.schema_threshold = n;
        self
    }

    /// Whether an object may be shown to / operated on by the LLM.
    pub fn object_allowed(&self, name: &str) -> bool {
        if self.object_blacklist.contains(name) {
            return false;
        }
        match &self.object_whitelist {
            Some(list) => list.contains(name),
            None => true,
        }
    }

    /// Whether a column of an (allowed) object may be shown/operated on.
    pub fn column_allowed(&self, table: &str, column: &str) -> bool {
        !self
            .column_blacklist
            .contains(&(table.to_owned(), column.to_owned()))
    }

    /// Whether any column of `table` is restricted.
    pub fn has_column_restrictions(&self, table: &str) -> bool {
        self.column_blacklist.iter().any(|(t, _)| t == table)
    }

    /// Whether a tool may be exposed to the LLM.
    pub fn tool_allowed(&self, name: &str, risk: Risk) -> bool {
        risk <= self.max_risk && !self.tool_blacklist.contains(name)
    }

    /// The pointwise-strictest combination of this policy and `requested`:
    /// blacklists union, whitelists intersect, and the risk cap, schema
    /// threshold, and exemplar `k` each take the smaller value. The wire
    /// layer uses this during `initialize` negotiation so a remote client
    /// can only *tighten* the server's base policy, never loosen it.
    pub fn restricted_by(&self, requested: &SecurityPolicy) -> SecurityPolicy {
        let object_whitelist = match (&self.object_whitelist, &requested.object_whitelist) {
            (None, None) => None,
            (Some(a), None) => Some(a.clone()),
            (None, Some(b)) => Some(b.clone()),
            (Some(a), Some(b)) => Some(a.intersection(b).cloned().collect()),
        };
        SecurityPolicy {
            object_whitelist,
            object_blacklist: self
                .object_blacklist
                .union(&requested.object_blacklist)
                .cloned()
                .collect(),
            column_blacklist: self
                .column_blacklist
                .union(&requested.column_blacklist)
                .cloned()
                .collect(),
            tool_blacklist: self
                .tool_blacklist
                .union(&requested.tool_blacklist)
                .cloned()
                .collect(),
            max_risk: self.max_risk.min(requested.max_risk),
            schema_threshold: self.schema_threshold.min(requested.schema_threshold),
            exemplar_k: self.exemplar_k.min(requested.exemplar_k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allows_everything() {
        let p = SecurityPolicy::default();
        assert!(p.object_allowed("anything"));
        assert!(p.tool_allowed("drop", Risk::Destructive));
    }

    #[test]
    fn blacklist_wins_over_whitelist() {
        let p = SecurityPolicy::default()
            .with_whitelist(["a", "b"])
            .with_blacklist(["b"]);
        assert!(p.object_allowed("a"));
        assert!(!p.object_allowed("b"));
        assert!(!p.object_allowed("c"), "not whitelisted");
    }

    #[test]
    fn restricted_by_only_tightens() {
        let base = SecurityPolicy::default()
            .with_blacklist(["audit_log"])
            .with_max_risk(Risk::Mutating);
        let requested = SecurityPolicy::default()
            .with_whitelist(["sales", "audit_log"])
            .with_blocked_tools(["delete"])
            .with_max_risk(Risk::Destructive);
        let merged = base.restricted_by(&requested);
        assert!(!merged.object_allowed("audit_log"), "base blacklist holds");
        assert!(merged.object_allowed("sales"));
        assert!(!merged.object_allowed("other"), "requested whitelist holds");
        assert!(!merged.tool_allowed("delete", Risk::Mutating));
        assert_eq!(merged.max_risk, Risk::Mutating, "risk cannot be raised");

        // Whitelists intersect when both sides set one.
        let a = SecurityPolicy::default().with_whitelist(["x", "y"]);
        let b = SecurityPolicy::default().with_whitelist(["y", "z"]);
        let both = a.restricted_by(&b);
        assert!(both.object_allowed("y"));
        assert!(!both.object_allowed("x"));
        assert!(!both.object_allowed("z"));
    }

    #[test]
    fn tool_restrictions() {
        let p = SecurityPolicy::default()
            .with_blocked_tools(["drop"])
            .with_max_risk(Risk::Mutating);
        assert!(!p.tool_allowed("drop", Risk::Destructive));
        assert!(!p.tool_allowed("create", Risk::Destructive), "risk cap");
        assert!(p.tool_allowed("insert", Risk::Mutating));
        assert!(p.tool_allowed("select", Risk::Safe));
    }
}
