//! Assembly of a per-user BridgeScope tool surface.
//!
//! [`BridgeScopeServer::build`] is where the paper's action-level
//! modularization becomes concrete: the registry handed to a user's agent
//! contains a SQL tool **only if** the user holds the corresponding privilege
//! on at least one object *and* the user-side policy allows the tool. A
//! read-only user's agent simply never sees `insert`.

use crate::bridge::{BridgeContext, DatabaseHandle};
use crate::config::SecurityPolicy;
use crate::context_tools::{get_object_tool, get_schema_tool, get_value_tool};
use crate::proxy::proxy_tool_observed;
use crate::sql_tools::{action_risk, action_tool};
use crate::txn_tools::{begin_tool, commit_tool, rollback_tool};
use gate::{BudgetMeter, CachedTool, GateConfig, GenerationSource, MeteredTool, PlanCache};
use minidb::DbError;
use obs::{Obs, ObsConfig, ObsSnapshot};
use sqlkit::ast::Action;
use std::sync::{Arc, Weak};
use toolproto::{Registry, Tool};

/// A built BridgeScope server: the tool registry for one user plus the
/// crafted system prompt.
pub struct BridgeScopeServer {
    /// The tools exposed to this user's agent.
    pub registry: Registry,
    /// The system prompt to install in the agent.
    pub prompt: &'static str,
    /// The shared context (for tests and advanced wiring).
    pub context: Arc<BridgeContext>,
    /// The observability handle recording this surface (disabled by
    /// default; see [`BridgeScopeServer::build_with_config`]).
    pub obs: Obs,
}

impl BridgeScopeServer {
    /// Build the tool surface for `user` under `policy`. Tools in
    /// `external` (e.g. ML/MCP tools) become available to proxy units and
    /// are re-exported in the final registry. Observability is off; use
    /// [`BridgeScopeServer::build_with_config`] to record traces.
    pub fn build(
        db: impl Into<DatabaseHandle>,
        user: &str,
        policy: SecurityPolicy,
        external: &Registry,
    ) -> Result<BridgeScopeServer, DbError> {
        Self::build_with_config(db, user, policy, external, &ObsConfig::Off)
    }

    /// [`BridgeScopeServer::build`] with an observability configuration:
    /// `Off` makes every recording call a no-op, `InMemory` collects spans
    /// and metrics for [`BridgeScopeServer::snapshot`], and `Jsonl` also
    /// arms [`Obs::flush`] to export the trace as JSON Lines.
    pub fn build_with_config(
        db: impl Into<DatabaseHandle>,
        user: &str,
        policy: SecurityPolicy,
        external: &Registry,
        config: &ObsConfig,
    ) -> Result<BridgeScopeServer, DbError> {
        Self::build_observed(db, user, policy, external, Obs::from_config(config))
    }

    /// [`BridgeScopeServer::build`] recording into an existing `obs` handle,
    /// so several servers (or a server plus an agent harness) can share one
    /// trace. Attaches a registry-level call observer and the observed proxy
    /// when the handle is enabled.
    pub fn build_observed(
        db: impl Into<DatabaseHandle>,
        user: &str,
        policy: SecurityPolicy,
        external: &Registry,
        obs: Obs,
    ) -> Result<BridgeScopeServer, DbError> {
        Self::build_gated(db, user, policy, external, obs, &GateConfig::default())
    }

    /// [`BridgeScopeServer::build_observed`] behind the agent-traffic gate:
    /// `gate_config` may enable the retrieval/plan caches (generation-
    /// invalidated through [`minidb::Database::generation`]) and attach
    /// per-session / per-user cost budgets metered at tool dispatch. The
    /// default config is fully transparent — this is exactly
    /// [`BridgeScopeServer::build_observed`] then.
    pub fn build_gated(
        db: impl Into<DatabaseHandle>,
        user: &str,
        policy: SecurityPolicy,
        external: &Registry,
        obs: Obs,
        gate_config: &GateConfig,
    ) -> Result<BridgeScopeServer, DbError> {
        let db = db.into().into_database();
        let ctx = BridgeContext::with_obs(&db, user, policy, obs.clone())?;
        let mut registry = Registry::new();

        // Retrieval-cache wiring: read-only F1 tools get memoized per
        // session surface, keyed on args and stamped with the database
        // generation (bumped by every committed DML/DDL/privilege change).
        let cache_cfg = gate_config.cache.clone();
        let generation: GenerationSource = {
            let db = db.clone();
            Arc::new(move || db.generation())
        };
        let mut retrieval_caches: Vec<Weak<gate::GenCache<toolproto::ToolOutput>>> = Vec::new();
        let mut wrap_context = |tool: Arc<dyn Tool>| -> Arc<dyn Tool> {
            match &cache_cfg {
                Some(cfg) => {
                    let cached = Arc::new(CachedTool::new(
                        tool,
                        cfg.context_capacity,
                        Arc::clone(&generation),
                        obs.clone(),
                    ));
                    retrieval_caches.push(Arc::downgrade(cached.cache()));
                    cached
                }
                None => tool,
            }
        };
        let plan_cache = cache_cfg.as_ref().map(|cfg| {
            let cache = Arc::new(PlanCache::new(cfg.plan_capacity));
            ctx.install_plan_cache(Arc::clone(&cache));
            cache
        });

        // F1 — context retrieval (always exposed; outputs are filtered).
        registry.register(wrap_context(Arc::new(get_schema_tool(Arc::clone(&ctx)))));
        registry.register(wrap_context(Arc::new(get_object_tool(Arc::clone(&ctx)))));
        registry.register(wrap_context(Arc::new(get_value_tool(Arc::clone(&ctx)))));

        // Pull-model cache-health gauges: occupancy and hit rate sampled at
        // scrape time, labeled by user. Keyed registration replaces the
        // sampler when the same user rebuilds a server; `Weak` references
        // keep gauges from pinning a torn-down surface alive — a dead
        // sampler reports `NaN` and the series vanishes from output.
        if !retrieval_caches.is_empty() {
            let caches = retrieval_caches.clone();
            obs.register_gauge_keyed(
                "gate.retrieval_cache.entries",
                &[("user", user)],
                move || {
                    let live: Vec<_> = caches.iter().filter_map(Weak::upgrade).collect();
                    if live.is_empty() {
                        return f64::NAN;
                    }
                    live.iter().map(|c| c.len() as f64).sum()
                },
            );
            let caches = retrieval_caches;
            obs.register_gauge_keyed(
                "gate.retrieval_cache.hit_rate",
                &[("user", user)],
                move || {
                    let live: Vec<_> = caches.iter().filter_map(Weak::upgrade).collect();
                    if live.is_empty() {
                        return f64::NAN;
                    }
                    let (hits, misses) = live.iter().fold((0u64, 0u64), |(h, m), c| {
                        let s = c.stats();
                        (h + s.hits, m + s.misses)
                    });
                    if hits + misses == 0 {
                        0.0
                    } else {
                        hits as f64 / (hits + misses) as f64
                    }
                },
            );
        }
        if let Some(cache) = &plan_cache {
            let weak = Arc::downgrade(cache);
            obs.register_gauge_keyed("gate.plan_cache.entries", &[("user", user)], move || {
                weak.upgrade().map_or(f64::NAN, |c| c.len() as f64)
            });
            let weak = Arc::downgrade(cache);
            obs.register_gauge_keyed("gate.plan_cache.hit_rate", &[("user", user)], move || {
                weak.upgrade().map_or(f64::NAN, |c| c.stats().hit_rate())
            });
        }

        // F2 — per-action SQL tools, exposed by privilege ∧ policy.
        let privs = db.privileges_of(user)?;
        let held = privs.held_actions();
        let mut any_write_tool = false;
        for action in Action::DATA_ACTIONS {
            if !held.contains(&action) {
                continue;
            }
            let name = action.keyword();
            if !ctx.policy.tool_allowed(name, action_risk(action)) {
                continue;
            }
            if action.is_write() {
                any_write_tool = true;
            }
            registry.register(Arc::new(action_tool(Arc::clone(&ctx), action)));
        }

        // F3 — transaction tools, useful only when the user can write.
        if any_write_tool {
            for (name, _) in [("begin", 0), ("commit", 0), ("rollback", 0)] {
                if !ctx.policy.tool_allowed(name, toolproto::Risk::Mutating) {
                    continue;
                }
                match name {
                    "begin" => registry.register_tool(begin_tool(Arc::clone(&ctx))),
                    "commit" => registry.register_tool(commit_tool(Arc::clone(&ctx))),
                    _ => registry.register_tool(rollback_tool(Arc::clone(&ctx))),
                }
            }
        }

        // External (MCP-ecosystem) tools join the surface.
        registry.extend(external);

        // Budget metering wraps the whole surface *before* the proxy
        // snapshots it, so proxy-side producer calls draw down the same
        // account — an agent cannot route around its budget by hiding work
        // inside proxy units. Meters are checked session-first, then user.
        let mut meters: Vec<Arc<BudgetMeter>> = Vec::new();
        if let Some(limits) = &gate_config.session_budget {
            meters.push(Arc::new(BudgetMeter::session(limits.clone())));
        }
        if let Some(ledger) = &gate_config.user_ledger {
            meters.push(ledger.meter_for(user));
        }
        let wrap_budget = |tool: Arc<dyn Tool>| -> Arc<dyn Tool> {
            if meters.is_empty() {
                tool
            } else {
                Arc::new(MeteredTool::new(tool, meters.clone(), user, obs.clone()))
            }
        };
        if !meters.is_empty() {
            let mut metered = Registry::new();
            for tool in registry.iter() {
                metered.register(wrap_budget(Arc::clone(tool)));
            }
            registry = metered;
        }

        // Every tool invocation through the registry becomes a `tool:{name}`
        // span with per-tool counters and latency histograms. Attached
        // before the proxy snapshot so producer-side calls are traced too
        // (they inflate `tool.calls` past what the LLM issued — use the
        // harness-level `llm.tool_calls` counter for that figure).
        if let Some(observer) = obs.registry_observer() {
            registry.set_observer(observer);
        }

        // F4 — the proxy operates over a snapshot of everything above. The
        // proxy call itself is metered like any other tool.
        let surface = registry.clone();
        registry.register(wrap_budget(Arc::new(proxy_tool_observed(
            surface,
            obs.clone(),
        ))));

        Ok(BridgeScopeServer {
            registry,
            prompt: crate::prompt::BRIDGESCOPE_PROMPT,
            context: ctx,
            obs,
        })
    }

    /// Snapshot the spans and metrics recorded so far (empty when
    /// observability is off).
    pub fn snapshot(&self) -> ObsSnapshot {
        self.obs.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::Database;
    use toolproto::Json;

    fn demo_db() -> Database {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE TABLE sales (id INTEGER PRIMARY KEY, amount REAL)")
            .unwrap();
        s.execute_sql("INSERT INTO sales VALUES (1, 10.0)").unwrap();
        db.create_user("reader", false).unwrap();
        db.grant("reader", Action::Select, "sales").unwrap();
        db.create_user("manager", false).unwrap();
        db.grant_all("manager", "sales").unwrap();
        db
    }

    #[test]
    fn reader_sees_only_select_and_context_tools() {
        let db = demo_db();
        let server =
            BridgeScopeServer::build(db, "reader", SecurityPolicy::default(), &Registry::new())
                .unwrap();
        let names = server.registry.names();
        assert!(names.contains(&"select"));
        assert!(names.contains(&"get_schema"));
        assert!(names.contains(&"get_value"));
        assert!(names.contains(&"proxy"));
        assert!(!names.contains(&"insert"), "read-only user: no insert tool");
        assert!(!names.contains(&"delete"));
        assert!(!names.contains(&"begin"), "no writes → no txn tools");
    }

    #[test]
    fn manager_gets_full_crud_and_txn_tools() {
        let db = demo_db();
        let server =
            BridgeScopeServer::build(db, "manager", SecurityPolicy::default(), &Registry::new())
                .unwrap();
        let names = server.registry.names();
        for t in [
            "select", "insert", "update", "delete", "begin", "commit", "rollback",
        ] {
            assert!(names.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn policy_blocks_destructive_tools() {
        let db = demo_db();
        let policy = SecurityPolicy::default().with_blocked_tools(["drop"]);
        let server = BridgeScopeServer::build(db, "manager", policy, &Registry::new()).unwrap();
        assert!(!server.registry.contains("drop"));
        // Admin with risk cap: nothing destructive.
        let db = demo_db();
        let policy = SecurityPolicy::default().with_max_risk(toolproto::Risk::Mutating);
        let server = BridgeScopeServer::build(db, "admin", policy, &Registry::new()).unwrap();
        assert!(!server.registry.contains("drop"));
        assert!(!server.registry.contains("create"));
        assert!(server.registry.contains("insert"));
    }

    #[test]
    fn proxy_reaches_external_tools() {
        let db = demo_db();
        let mut external = Registry::new();
        external.register_tool(toolproto::FnTool::new(
            "count_rows",
            "count array entries",
            toolproto::Signature::open(vec![]),
            |args: &toolproto::Args| {
                let n = args
                    .get("data")
                    .and_then(Json::as_array)
                    .map_or(0, <[Json]>::len);
                Ok(toolproto::ToolOutput::value(Json::object([(
                    "count",
                    Json::num(n as f64),
                )])))
            },
        ));
        let server =
            BridgeScopeServer::build(db, "manager", SecurityPolicy::default(), &external).unwrap();
        let out = server
            .registry
            .call(
                "proxy",
                &Json::parse(
                    r#"{"target_tool": "count_rows", "tool_args": {
                        "data": {"tool": "select", "args": {"sql": "SELECT * FROM sales"},
                                 "transform": "/rows"}}}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(out.value.get("count").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn observed_build_records_tool_spans_and_plan_attributes() {
        let db = demo_db();
        let obs = Obs::in_memory();
        let server = BridgeScopeServer::build_observed(
            db,
            "reader",
            SecurityPolicy::default(),
            &Registry::new(),
            obs.clone(),
        )
        .unwrap();
        server
            .registry
            .call(
                "select",
                &Json::object([("sql", Json::str("SELECT * FROM sales"))]),
            )
            .unwrap();
        let snap = server.snapshot();
        obs::validate_tree(&snap.spans).unwrap();
        assert_eq!(snap.metrics.counter("tool.calls"), 1);
        assert_eq!(snap.metrics.counter("tool.calls.select"), 1);
        assert_eq!(snap.metrics.counter("sql.statements.select"), 1);
        let tool = snap
            .spans
            .iter()
            .find(|sp| sp.name == "tool:select")
            .expect("tool span");
        let sql = snap
            .spans
            .iter()
            .find(|sp| sp.name == "sql:execute")
            .expect("sql span");
        assert_eq!(sql.parent, Some(tool.id), "sql span nests under tool span");
        assert!(
            sql.attr("plan.seq_scans").is_some(),
            "executor plan attributes attached: {:?}",
            sql.attrs
        );
    }

    #[test]
    fn default_build_keeps_observability_off() {
        let db = demo_db();
        let server =
            BridgeScopeServer::build(db, "reader", SecurityPolicy::default(), &Registry::new())
                .unwrap();
        assert!(!server.obs.is_enabled());
        server
            .registry
            .call(
                "select",
                &Json::object([("sql", Json::str("SELECT * FROM sales"))]),
            )
            .unwrap();
        let snap = server.snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.metrics.counter("tool.calls"), 0);
    }

    #[test]
    fn gated_build_caches_context_tools_and_invalidates_on_write() {
        let db = demo_db();
        let obs = Obs::in_memory();
        let server = BridgeScopeServer::build_gated(
            db.clone(),
            "reader",
            SecurityPolicy::default(),
            &Registry::new(),
            obs.clone(),
            &gate::GateConfig::default().with_cache(),
        )
        .unwrap();
        let a = server.registry.call("get_schema", &Json::Null).unwrap();
        let b = server.registry.call("get_schema", &Json::Null).unwrap();
        assert_eq!(a, b, "cached output identical");
        let snap = obs.snapshot();
        assert_eq!(
            snap.metrics
                .labeled_counter("gate.cache", &[("tool", "get_schema"), ("hit", "true")]),
            1
        );
        assert_eq!(
            snap.metrics
                .labeled_counter("gate.cache", &[("tool", "get_schema"), ("hit", "false")]),
            1
        );
        // A committed write (by anyone) invalidates: next call is a miss.
        let mut s = db.session("admin").unwrap();
        s.execute_sql("INSERT INTO sales VALUES (5, 50.0)").unwrap();
        server.registry.call("get_schema", &Json::Null).unwrap();
        assert_eq!(
            obs.snapshot()
                .metrics
                .labeled_counter("gate.cache", &[("tool", "get_schema"), ("hit", "false")]),
            2
        );
    }

    #[test]
    fn gated_build_plan_cache_hits_on_normalized_sql() {
        let db = demo_db();
        let obs = Obs::in_memory();
        let server = BridgeScopeServer::build_gated(
            db,
            "reader",
            SecurityPolicy::default(),
            &Registry::new(),
            obs.clone(),
            &gate::GateConfig::default().with_cache(),
        )
        .unwrap();
        let args = |sql: &str| Json::object([("sql", Json::str(sql))]);
        let a = server
            .registry
            .call("select", &args("SELECT * FROM sales"))
            .unwrap();
        let b = server
            .registry
            .call("select", &args("SELECT  *  FROM\n sales"))
            .unwrap();
        assert_eq!(a, b);
        let snap = obs.snapshot();
        assert_eq!(
            snap.metrics
                .labeled_counter("gate.cache", &[("tool", "plan"), ("hit", "true")]),
            1
        );
    }

    #[test]
    fn gated_build_enforces_session_budget_with_typed_denial() {
        let db = demo_db();
        let server = BridgeScopeServer::build_gated(
            db,
            "reader",
            SecurityPolicy::default(),
            &Registry::new(),
            Obs::disabled(),
            &gate::GateConfig::default()
                .with_session_budget(gate::BudgetLimits::default().with_calls(2)),
        )
        .unwrap();
        server.registry.call("get_schema", &Json::Null).unwrap();
        server.registry.call("get_schema", &Json::Null).unwrap();
        let err = server.registry.call("get_schema", &Json::Null).unwrap_err();
        match err {
            toolproto::ToolError::Denied { code, message, .. } => {
                assert_eq!(code, "budget");
                assert_eq!(
                    message,
                    "budget exhausted: calls limit for this session reached (2/2)"
                );
            }
            other => panic!("expected budget denial, got {other:?}"),
        }
    }

    #[test]
    fn transparent_gate_config_changes_nothing() {
        let db = demo_db();
        let plain = BridgeScopeServer::build(
            db.clone(),
            "reader",
            SecurityPolicy::default(),
            &Registry::new(),
        )
        .unwrap();
        let gated = BridgeScopeServer::build_gated(
            db,
            "reader",
            SecurityPolicy::default(),
            &Registry::new(),
            Obs::disabled(),
            &gate::GateConfig::default(),
        )
        .unwrap();
        assert_eq!(plain.registry.names(), gated.registry.names());
        assert_eq!(plain.prompt, gated.prompt);
        let probe = Json::object([("sql", Json::str("SELECT * FROM sales"))]);
        assert_eq!(
            plain.registry.call("select", &probe),
            gated.registry.call("select", &probe)
        );
    }

    #[test]
    fn end_to_end_transactional_flow_through_registry() {
        let db = demo_db();
        let server = BridgeScopeServer::build(
            db.clone(),
            "manager",
            SecurityPolicy::default(),
            &Registry::new(),
        )
        .unwrap();
        let reg = &server.registry;
        reg.call("begin", &Json::Null).unwrap();
        reg.call(
            "insert",
            &Json::object([("sql", Json::str("INSERT INTO sales VALUES (2, 20.0)"))]),
        )
        .unwrap();
        reg.call("commit", &Json::Null).unwrap();
        assert_eq!(db.table_rows("sales").unwrap(), 2);
    }
}
