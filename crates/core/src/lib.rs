//! # bridgescope-core — the BridgeScope toolkit
//!
//! Rust reproduction of the paper's primary contribution: a universal
//! database toolkit for LLM agents, organized around four functionalities:
//!
//! * **F1 — context retrieval** ([`context_tools`]): adaptive `get_schema`,
//!   per-object `get_object`, and semantic column exemplars via `get_value`;
//!   outputs filtered to user-permitted objects and annotated with
//!   privileges.
//! * **F2 — SQL execution** ([`sql_tools`]): one tool per SQL action,
//!   exposed per user privileges ∧ user-side policy, with object-level
//!   verification (static analysis of every referenced object) before the
//!   engine is touched.
//! * **F3 — transaction management** ([`txn_tools`]): explicit `begin` /
//!   `commit` / `rollback` tools over a shared session.
//! * **F4 — data transmission** ([`proxy`]): nestable proxy units
//!   ⟨producers, consumer, transform⟩ executed bottom-up with parallel
//!   sibling producers, so bulk data never transits the LLM.
//!
//! [`server::BridgeScopeServer::build`] assembles the per-user surface;
//! [`baseline`] provides the PG-MCP / PG-MCP⁻ comparison toolkits;
//! [`prompt`] carries the crafted system prompt of §2.6.

#![warn(missing_docs)]

pub mod baseline;
pub mod bridge;
pub mod config;
pub mod context_tools;
pub mod multi;
pub mod prompt;
pub mod proxy;
pub mod server;
pub mod similarity;
pub mod sql_tools;
pub mod txn_tools;

pub use baseline::{pg_mcp, pg_mcp_minus, BaselineServer};
pub use bridge::{BridgeContext, DatabaseHandle};
pub use config::{DurabilityConfig, FsyncPolicy, SecurityPolicy};
pub use multi::{MultiSourceServer, SourceSpec};
pub use obs::{Obs, ObsConfig, ObsSnapshot};
pub use prompt::{BRIDGESCOPE_PROMPT, GENERIC_DB_PROMPT};
pub use proxy::{execute_unit, execute_unit_observed, ProxyUnit, Transform};
pub use server::BridgeScopeServer;
