//! F2 — action-modularized, security-gated SQL execution tools.
//!
//! BridgeScope instantiates one tool per SQL action (`select`, `insert`, …).
//! Each tool (paper §2.3):
//!
//! 1. **accepts only statements of its own action** — an `insert` tool
//!    refuses a `DELETE`, keeping tool semantics crisp for the LLM;
//! 2. runs **object-level verification** before execution: every object the
//!    statement touches (including via subqueries, discovered by `sqlkit`'s
//!    static analysis) is checked against the user's database privileges and
//!    the user-side security policy;
//! 3. only then executes through the shared session, so statements compose
//!    with the transaction tools.

use crate::bridge::{db_error_to_tool, result_to_output, BridgeContext};
use gate::PreparedPlan;
use obs::SpanGuard;
use sqlkit::ast::Action;
use std::sync::Arc;
use toolproto::{ArgSpec, ArgType, Args, FnTool, Risk, Signature, Tool, ToolError, ToolResult};

/// Maximum characters of SQL text kept in span attributes and contexts.
const SQL_ATTR_MAX: usize = 200;

/// Risk class of an action's tool.
pub fn action_risk(action: Action) -> Risk {
    match action {
        Action::Select => Risk::Safe,
        Action::Insert | Action::Update | Action::Delete => Risk::Mutating,
        Action::Create | Action::Drop | Action::Alter => Risk::Destructive,
        Action::GrantRevoke | Action::Transaction => Risk::Destructive,
    }
}

/// The verification-and-execution body shared by all action tools: open a
/// `sql:execute` span around the whole verify-then-run path, attach the
/// statement, outcome, and executor plan attributes, and enrich any denial
/// with the originating SQL.
fn verified_execute(ctx: &BridgeContext, expected: Action, sql: &str) -> ToolResult {
    let mut span = ctx.obs.span("sql:execute");
    if span.enabled() {
        span.attr("action", expected.keyword());
        span.attr("sql", sqlkit::truncate_sql(sql, SQL_ATTR_MAX));
    }
    let mut cache_hit = false;
    let result = verify_and_run(ctx, expected, sql, &mut span, &mut cache_hit);
    if ctx.obs.is_enabled() {
        match &result {
            Ok(out) => {
                if let Some(rows) = out.rows {
                    span.attr("rows", rows);
                }
                ctx.obs.incr("sql.statements", 1);
                ctx.obs
                    .incr(&format!("sql.statements.{}", expected.keyword()), 1);
            }
            Err(e) => {
                span.fail(e.to_string());
                ctx.obs.incr("sql.errors", 1);
            }
        }
        ctx.obs.observe_ns("sql.latency", span.elapsed_ns());
        // Feed the statement statistics store. Keys are the gate's
        // token-normalized form, so literal-only variants collapse into one
        // entry (bounded cardinality per user; see `obs::StatementStore`).
        let outcome = match &result {
            Ok(_) => obs::StatementOutcome::Ok,
            Err(ToolError::Denied { .. }) => obs::StatementOutcome::Denied,
            // `db_error_to_tool` keeps the engine's stable "serialization
            // conflict" prefix through the round-trip precisely so layers
            // like this one can classify without a dedicated variant.
            Err(e) if e.to_string().contains("serialization conflict") => {
                obs::StatementOutcome::Conflict
            }
            Err(_) => obs::StatementOutcome::Error,
        };
        let rows = result.as_ref().ok().and_then(|o| o.rows).unwrap_or(0) as u64;
        ctx.obs.record_statement(
            &ctx.user,
            &gate::normalize_sql(sql),
            span.elapsed_ns(),
            rows,
            cache_hit,
            outcome,
        );
    }
    result.map_err(|e| e.with_denial_sql(sqlkit::truncate_sql(sql, SQL_ATTR_MAX)))
}

/// Parse and statically analyze `sql`, through the prepared-plan cache when
/// the gated build installed one. The cached artifact is pure parse +
/// analysis — every privilege and policy check below re-runs on live state,
/// so a cache hit can never widen access; it only skips re-deriving what
/// the text alone determines. Returns whether the plan came from the cache,
/// for the statement statistics store.
fn prepare(ctx: &BridgeContext, sql: &str) -> Result<(Arc<PreparedPlan>, bool), ToolError> {
    match ctx.plan_cache.get() {
        Some(cache) => {
            // The gate's span for the plan-cache consult: nested under the
            // enclosing `sql:execute`, so a cross-layer trace shows whether
            // parsing/analysis was skipped.
            let mut span = ctx.obs.span("gate:plan");
            // Keyed on plan_generation(), not generation() alone: a cached
            // plan must also be invalidated when ANALYZE refreshes the
            // optimizer statistics it was costed against.
            let generation = ctx.db.plan_generation();
            let (plan, hit) = cache
                .prepare(sql, generation)
                .map_err(|e| ToolError::Execution(e.to_string()))?;
            if span.enabled() {
                span.attr("hit", hit);
            }
            ctx.obs.incr_with(
                "gate.cache",
                &[
                    ("tool", "plan"),
                    ("hit", if hit { "true" } else { "false" }),
                ],
                1,
            );
            Ok((plan, hit))
        }
        None => PreparedPlan::prepare(sql)
            .map(|plan| (Arc::new(plan), false))
            .map_err(|e| ToolError::Execution(e.to_string())),
    }
}

fn verify_and_run(
    ctx: &BridgeContext,
    expected: Action,
    sql: &str,
    span: &mut SpanGuard,
    cache_hit: &mut bool,
) -> ToolResult {
    let (prepared, hit) = prepare(ctx, sql)?;
    *cache_hit = hit;
    let stmt = &prepared.stmt;
    let action = stmt.action();
    if action != expected {
        return Err(ToolError::Execution(format!(
            "this tool executes only {expected} statements, got a {action} statement",
        )));
    }
    // Surface the (normalized) statement on the in-flight call registry, so
    // `/queries` shows what each live trace is executing right now.
    if ctx.obs.is_enabled() {
        ctx.obs.note_statement(&gate::normalize_sql(sql));
    }
    // Object-level verification (tool-side, before the engine sees it).
    let profile = &prepared.profile;
    for object in profile.all_objects() {
        // Policy first: policy restrictions exist precisely to hide objects
        // the user *could* access.
        // CREATE TABLE introduces a new object: the policy still applies
        // (a whitelist confines even creations), but privileges cannot be
        // checked on a not-yet-existing object.
        ctx.check_policy_object(&object)?;
    }
    for (action, object) in profile.required_privileges() {
        let object_exists = ctx.db.table_schema(&object).is_ok();
        if action == Action::Create && !object_exists {
            // Creating a new object: engine-side check is superuser-only in
            // this engine; defer to execution.
            continue;
        }
        ctx.check_privilege(action, &object)?;
    }
    // Column-level policy: reject statements that may touch a restricted
    // column, including via wildcards (which would expose it).
    let objects = profile.all_objects();
    if objects
        .iter()
        .any(|t| ctx.policy.has_column_restrictions(t))
    {
        let usage = &prepared.usage;
        for (table, column) in &ctx.policy.column_blacklist {
            if usage.may_touch(table, column) {
                return Err(ctx.deny_column(
                    table,
                    column,
                    format!(
                        "statement may access column \"{table}.{column}\", which is restricted \
                         by the user's security policy (avoid wildcards; list columns explicitly)"
                    ),
                ));
            }
        }
    }
    // Execute. Writes and in-transaction statements go through the shared
    // session (that is what makes begin/insert/commit compose). Reads
    // outside a transaction run on an ephemeral session instead, so proxy
    // units can execute sibling SELECT producers truly in parallel rather
    // than serializing on the shared-session lock.
    let result = if expected == Action::Select {
        let mut guard = ctx.session.lock();
        if guard.in_transaction() {
            guard.execute(stmt).map_err(db_error_to_tool)?
        } else {
            drop(guard);
            let ephemeral = ctx
                .db
                .session(&ctx.user)
                .map_err(|e| ToolError::Execution(e.to_string()))?;
            if span.enabled() {
                // Traced execution: same fast path, but with per-operator
                // profiling on, so the span carries the annotated operator
                // tree (actual rows *and* wall time per node). The cost is
                // two clock reads per operator dispatch — negligible next
                // to the wire round-trip — and when the flight recorder
                // later retains this call as slow, the profile explains
                // where the time went.
                let opts = minidb::ExecOptions {
                    profiling: true,
                    ..minidb::ExecOptions::default()
                };
                let (result, plan) = ephemeral
                    .query_with_options(sql, &opts)
                    .map_err(db_error_to_tool)?;
                for (key, count) in plan.attr_counts() {
                    span.attr(key, count);
                }
                if !plan.tree.is_empty() {
                    span.attr("plan.profile", plan.tree.join("\n"));
                }
                result
            } else {
                let mut ephemeral = ephemeral;
                ephemeral.execute(stmt).map_err(db_error_to_tool)?
            }
        }
    } else {
        ctx.session.lock().execute(stmt).map_err(db_error_to_tool)?
    };
    Ok(result_to_output(result))
}

fn sql_signature(action: Action) -> Signature {
    Signature::new(vec![ArgSpec::required(
        "sql",
        ArgType::String,
        format!("a single {action} statement"),
    )])
}

fn description(action: Action) -> String {
    match action {
        Action::Select => "Execute a SELECT query and return its rows.".into(),
        Action::Insert => "Execute an INSERT statement (inside begin/commit).".into(),
        Action::Update => "Execute an UPDATE statement (inside begin/commit).".into(),
        Action::Delete => "Execute a DELETE statement (inside begin/commit).".into(),
        Action::Create => "Execute a CREATE TABLE/INDEX statement.".into(),
        Action::Drop => "Execute a DROP TABLE statement. Destructive.".into(),
        Action::Alter => "Execute an ALTER TABLE statement.".into(),
        other => format!("Execute a {other} statement."),
    }
}

/// Build the dedicated tool for one SQL action.
pub fn action_tool(ctx: Arc<BridgeContext>, action: Action) -> impl Tool {
    FnTool::new(
        action.keyword(),
        description(action),
        sql_signature(action),
        move |args: &Args| {
            let sql = args["sql"].as_str().expect("validated");
            verified_execute(&ctx, action, sql)
        },
    )
    .with_risk(action_risk(action))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SecurityPolicy;
    use minidb::Database;
    use toolproto::{Json, Registry};

    fn demo() -> Database {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE TABLE sales (id INTEGER PRIMARY KEY, amount REAL)")
            .unwrap();
        s.execute_sql("CREATE TABLE other (id INTEGER PRIMARY KEY)")
            .unwrap();
        s.execute_sql("INSERT INTO sales VALUES (1, 10.0), (2, 20.0)")
            .unwrap();
        db.create_user("manager", false).unwrap();
        db.grant_all("manager", "sales").unwrap();
        db
    }

    fn registry(db: &Database, user: &str, policy: SecurityPolicy) -> Registry {
        let ctx = BridgeContext::new(db.clone(), user, policy).unwrap();
        let mut reg = Registry::new();
        for action in [
            Action::Select,
            Action::Insert,
            Action::Update,
            Action::Delete,
            Action::Drop,
        ] {
            reg.register(std::sync::Arc::new(action_tool(Arc::clone(&ctx), action)));
        }
        reg
    }

    fn sql_args(sql: &str) -> Json {
        Json::object([("sql", Json::str(sql))])
    }

    #[test]
    fn select_tool_returns_rows() {
        let db = demo();
        let reg = registry(&db, "manager", SecurityPolicy::default());
        let out = reg
            .call("select", &sql_args("SELECT COUNT(*) FROM sales"))
            .unwrap();
        assert_eq!(
            out.value.pointer("/rows/0/0").and_then(Json::as_i64),
            Some(2)
        );
    }

    #[test]
    fn tool_rejects_foreign_action() {
        let db = demo();
        let reg = registry(&db, "manager", SecurityPolicy::default());
        let err = reg
            .call("insert", &sql_args("DELETE FROM sales"))
            .unwrap_err();
        assert!(err.to_string().contains("only INSERT"), "{err}");
        // Prompt-injection style: a SELECT tool asked to DROP.
        let err = reg
            .call("select", &sql_args("DROP TABLE sales"))
            .unwrap_err();
        assert!(err.to_string().contains("only SELECT"), "{err}");
    }

    #[test]
    fn object_verification_blocks_unauthorized_tables() {
        let db = demo();
        let reg = registry(&db, "manager", SecurityPolicy::default());
        // manager has no privileges on `other`, even via subquery.
        let err = reg
            .call(
                "select",
                &sql_args("SELECT * FROM sales WHERE id IN (SELECT id FROM other)"),
            )
            .unwrap_err();
        assert!(matches!(err, ToolError::Denied { ref code, .. } if code == "privilege"));
    }

    #[test]
    fn policy_blocks_objects_before_engine() {
        let db = demo();
        let policy = SecurityPolicy::default().with_blacklist(["sales"]);
        let reg = registry(&db, "admin", policy);
        let err = reg
            .call("select", &sql_args("SELECT * FROM sales"))
            .unwrap_err();
        assert!(matches!(err, ToolError::Denied { ref code, .. } if code == "policy"));
    }

    #[test]
    fn dml_flows_through() {
        let db = demo();
        let reg = registry(&db, "manager", SecurityPolicy::default());
        let out = reg
            .call("insert", &sql_args("INSERT INTO sales VALUES (3, 30.0)"))
            .unwrap();
        assert_eq!(out.value.get("affected").and_then(Json::as_i64), Some(1));
        let out = reg
            .call(
                "update",
                &sql_args("UPDATE sales SET amount = 0 WHERE id = 3"),
            )
            .unwrap();
        assert_eq!(out.value.get("affected").and_then(Json::as_i64), Some(1));
        let out = reg
            .call("delete", &sql_args("DELETE FROM sales WHERE id = 3"))
            .unwrap();
        assert_eq!(out.value.get("affected").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn parse_errors_are_execution_errors() {
        let db = demo();
        let reg = registry(&db, "manager", SecurityPolicy::default());
        let err = reg.call("select", &sql_args("SELEC oops")).unwrap_err();
        assert!(matches!(err, ToolError::Execution(_)));
    }

    #[test]
    fn risk_classes() {
        assert_eq!(action_risk(Action::Select), Risk::Safe);
        assert_eq!(action_risk(Action::Update), Risk::Mutating);
        assert_eq!(action_risk(Action::Drop), Risk::Destructive);
    }

    #[test]
    fn column_blacklist_blocks_access_paths() {
        let db = demo();
        let policy = SecurityPolicy::default().with_column_blacklist([("sales", "amount")]);
        let reg = registry(&db, "admin", policy);
        // Direct reference, qualified or not.
        for stmt in [
            "SELECT amount FROM sales",
            "SELECT s.amount FROM sales AS s",
            "SELECT * FROM sales",
            "SELECT id FROM sales ORDER BY amount",
            "SELECT id FROM sales WHERE amount > 5",
            "UPDATE sales SET amount = 0 WHERE id = 1",
            "INSERT INTO sales VALUES (9, 9.0)",
        ] {
            let err = reg
                .call(
                    if stmt.starts_with("UPDATE") {
                        "update"
                    } else if stmt.starts_with("INSERT") {
                        "insert"
                    } else {
                        "select"
                    },
                    &sql_args(stmt),
                )
                .unwrap_err();
            assert!(
                matches!(err, ToolError::Denied { ref code, .. } if code == "policy"),
                "{stmt}: {err}"
            );
        }
        // Column-free access to the same table still works.
        let out = reg
            .call("select", &sql_args("SELECT id FROM sales WHERE id = 1"))
            .unwrap();
        assert_eq!(out.rows, Some(1));
        let out = reg
            .call("insert", &sql_args("INSERT INTO sales (id) VALUES (9)"))
            .unwrap();
        assert_eq!(out.value.get("affected").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn column_blacklist_via_subquery_blocked() {
        let db = demo();
        db.grant_all("manager", "other").unwrap();
        let policy = SecurityPolicy::default().with_column_blacklist([("sales", "amount")]);
        let reg = registry(&db, "manager", policy);
        let err = reg
            .call(
                "select",
                &sql_args(
                    "SELECT id FROM other WHERE id IN (SELECT CAST(amount AS INTEGER) FROM sales)",
                ),
            )
            .unwrap_err();
        assert!(
            matches!(err, ToolError::Denied { ref code, .. } if code == "policy"),
            "{err}"
        );
    }

    #[test]
    fn drop_tool_gated_by_privilege() {
        let db = demo();
        let reg = registry(&db, "manager", SecurityPolicy::default());
        // manager holds all data actions on sales, including drop.
        reg.call("drop", &sql_args("DROP TABLE sales")).unwrap();
        assert!(!db.table_names().contains(&"sales".to_string()));
    }
}
