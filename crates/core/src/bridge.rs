//! Shared plumbing between BridgeScope tools and the database engine.
//!
//! All tools of one server share a [`BridgeContext`]: the database handle,
//! the acting user, the user-side security policy, and — crucially — a single
//! database session, so `begin`/`insert`/`commit` tool calls compose into one
//! transaction the way the paper's Figure 3 shows.

use crate::config::SecurityPolicy;
use minidb::sync::Mutex;
use minidb::{Database, DbError, QueryResult, Session, Value};
use obs::Obs;
use sqlkit::ast::Action;
use std::sync::Arc;
use toolproto::{DenialContext, Json, ToolError, ToolOutput};

/// One conversion point for everything that builds a tool surface over a
/// database. `Database` is Arc-backed, so all of `Database`, `&Database`,
/// and an existing handle convert cheaply — call sites pass whichever they
/// have instead of sprinkling `.clone()` everywhere, and future engine
/// parameters land here instead of at N construction sites.
#[derive(Clone)]
pub struct DatabaseHandle(Database);

impl DatabaseHandle {
    /// Unwrap into the underlying database.
    pub fn into_database(self) -> Database {
        self.0
    }
}

impl From<Database> for DatabaseHandle {
    fn from(db: Database) -> Self {
        DatabaseHandle(db)
    }
}

impl From<&Database> for DatabaseHandle {
    fn from(db: &Database) -> Self {
        DatabaseHandle(db.clone())
    }
}

impl From<&DatabaseHandle> for DatabaseHandle {
    fn from(h: &DatabaseHandle) -> Self {
        h.clone()
    }
}

/// Shared state of one BridgeScope (or baseline) server instance.
pub struct BridgeContext {
    /// The database.
    pub db: Database,
    /// The acting database user.
    pub user: String,
    /// The user-side security policy.
    pub policy: SecurityPolicy,
    /// The shared session carrying transaction state across tool calls.
    pub session: Mutex<Session>,
    /// Observability handle; disabled by default, shared by all tools of
    /// this server so denials, SQL execution, and proxy data movement land
    /// in one trace.
    pub obs: Obs,
    /// Prepared-plan cache (parse + static analysis keyed on normalized
    /// SQL, generation-invalidated). Unset by default; installed once by
    /// the gated server build. Security checks always re-verify the cached
    /// profile against live privileges and policy.
    pub(crate) plan_cache: std::sync::OnceLock<Arc<gate::PlanCache>>,
}

impl BridgeContext {
    /// Open a context (and its session) for `user`, without observability.
    pub fn new(
        db: impl Into<DatabaseHandle>,
        user: &str,
        policy: SecurityPolicy,
    ) -> Result<Arc<Self>, DbError> {
        BridgeContext::with_obs(db, user, policy, Obs::disabled())
    }

    /// Open a context that records into `obs`.
    pub fn with_obs(
        db: impl Into<DatabaseHandle>,
        user: &str,
        policy: SecurityPolicy,
        obs: Obs,
    ) -> Result<Arc<Self>, DbError> {
        let db = db.into().into_database();
        db.attach_obs(obs.clone());
        let session = db.session(user)?;
        Ok(Arc::new(BridgeContext {
            db,
            user: user.to_owned(),
            policy,
            session: Mutex::new(session),
            obs,
            plan_cache: std::sync::OnceLock::new(),
        }))
    }

    /// Install the prepared-plan cache (at most once, from the gated server
    /// build).
    pub(crate) fn install_plan_cache(&self, cache: Arc<gate::PlanCache>) {
        let _ = self.plan_cache.set(cache);
    }

    /// Record a denial: bump the per-gate counter and emit an (instant)
    /// span carrying the structured denial context under whatever span is
    /// currently open (typically the enclosing `tool:*` or `sql:execute`).
    fn record_denial(&self, gate: &str, context: &DenialContext) {
        if !self.obs.is_enabled() {
            return;
        }
        self.obs.incr(&format!("denials.{gate}"), 1);
        let mut span = self.obs.span(&format!("denial:{gate}"));
        span.attr("user", self.user.as_str());
        for (key, value) in context.fields() {
            span.attr(key, value);
        }
    }

    /// Database-side privilege check, as a tool error.
    pub fn check_privilege(&self, action: Action, object: &str) -> Result<(), ToolError> {
        let privs = self
            .db
            .privileges_of(&self.user)
            .map_err(|e| ToolError::Execution(e.to_string()))?;
        if privs.superuser || privs.has(action, object) {
            Ok(())
        } else {
            let context = DenialContext::default()
                .with_action(action.to_string())
                .with_object(object);
            self.record_denial("privilege", &context);
            Err(ToolError::denied_with(
                "privilege",
                format!(
                    "user \"{}\" lacks the {action} privilege on \"{object}\"",
                    self.user
                ),
                context,
            ))
        }
    }

    /// User-side policy check, as a tool error.
    pub fn check_policy_object(&self, object: &str) -> Result<(), ToolError> {
        if self.policy.object_allowed(object) {
            Ok(())
        } else {
            let context = DenialContext::default().with_object(object);
            self.record_denial("policy", &context);
            Err(ToolError::denied_with(
                "policy",
                format!("object \"{object}\" is restricted by the user's security policy"),
                context,
            ))
        }
    }

    /// Like [`check_policy_object`](Self::check_policy_object), but records
    /// the restricted column (`table.column`) as the denied object. Used by
    /// tools that gate on the column blacklist.
    pub fn deny_column(&self, table: &str, column: &str, message: String) -> ToolError {
        let context = DenialContext::default().with_object(format!("{table}.{column}"));
        self.record_denial("policy", &context);
        ToolError::denied_with("policy", message, context)
    }
}

/// Map an engine error onto the tool error model: privilege denials become
/// [`ToolError::Denied`] (the agent aborts), everything else an execution
/// error (the agent may retry). Engine privilege errors carry the acted-on
/// object and action, which are preserved in the denial context.
/// [`DbError::SerializationConflict`] keeps its stable
/// `"serialization conflict"` message prefix through the round-trip, so an
/// agent (or the wire client) can detect it and re-run the transaction.
pub fn db_error_to_tool(e: DbError) -> ToolError {
    match e {
        DbError::PrivilegeDenied {
            ref action,
            ref object,
            ..
        } => {
            let context = DenialContext::default()
                .with_action(action.to_string())
                .with_object(object.clone());
            ToolError::denied_with("privilege", e.to_string(), context)
        }
        e if e.is_privilege() => ToolError::denied("privilege", e.to_string()),
        e => ToolError::Execution(e.to_string()),
    }
}

/// Convert an engine value to JSON.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Int(i) => Json::Number(*i as f64),
        Value::Float(f) => Json::Number(*f),
        Value::Text(s) => Json::Str(s.clone()),
        Value::Bool(b) => Json::Bool(*b),
    }
}

/// Convert a query result to the tool output JSON conventions:
/// `{"columns": …, "rows": …}`, `{"affected": n}`, or `{"status": "…"}`.
pub fn result_to_output(result: QueryResult) -> ToolOutput {
    match result {
        QueryResult::Rows { columns, rows } => {
            let n = rows.len();
            let value = Json::object([
                ("columns", Json::array(columns.into_iter().map(Json::Str))),
                (
                    "rows",
                    Json::array(
                        rows.iter()
                            .map(|r| Json::array(r.iter().map(value_to_json))),
                    ),
                ),
            ]);
            ToolOutput::with_rows(value, n)
        }
        QueryResult::Affected(n) => {
            ToolOutput::with_rows(Json::object([("affected", Json::num(n as f64))]), n)
        }
        QueryResult::Status(s) => ToolOutput::value(Json::object([("status", Json::str(s))])),
    }
}

/// Like [`result_to_output`], but rows are rendered as objects keyed by
/// column name — the verbose shape the stock PostgreSQL MCP server emits
/// (and a large part of why routing bulk results through an LLM is so
/// expensive). BridgeScope's own tools use the compact array form.
pub fn result_to_output_verbose(result: QueryResult) -> ToolOutput {
    match result {
        QueryResult::Rows { columns, rows } => {
            let n = rows.len();
            let value = Json::object([
                (
                    "columns",
                    Json::array(columns.iter().map(|c| Json::str(c.clone()))),
                ),
                (
                    "rows",
                    Json::array(rows.iter().map(|r| {
                        Json::object(
                            columns
                                .iter()
                                .zip(r)
                                .map(|(c, v)| (c.clone(), value_to_json(v))),
                        )
                    })),
                ),
            ]);
            ToolOutput::with_rows(value, n)
        }
        other => result_to_output(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_db() -> Database {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
            .unwrap();
        s.execute_sql("INSERT INTO t VALUES (1, 'a')").unwrap();
        db
    }

    #[test]
    fn context_shares_a_session() {
        let db = demo_db();
        let ctx = BridgeContext::new(db, "admin", SecurityPolicy::default()).unwrap();
        ctx.session.lock().execute_sql("BEGIN").unwrap();
        assert!(ctx.session.lock().in_transaction());
        ctx.session.lock().execute_sql("ROLLBACK").unwrap();
    }

    #[test]
    fn privilege_check_maps_to_denied() {
        let db = demo_db();
        db.create_user("reader", false).unwrap();
        db.grant("reader", Action::Select, "t").unwrap();
        let ctx = BridgeContext::new(db, "reader", SecurityPolicy::default()).unwrap();
        assert!(ctx.check_privilege(Action::Select, "t").is_ok());
        let err = ctx.check_privilege(Action::Insert, "t").unwrap_err();
        assert!(matches!(err, ToolError::Denied { ref code, .. } if code == "privilege"));
    }

    #[test]
    fn policy_check_maps_to_denied() {
        let db = demo_db();
        let policy = SecurityPolicy::default().with_blacklist(["t"]);
        let ctx = BridgeContext::new(db, "admin", policy).unwrap();
        let err = ctx.check_policy_object("t").unwrap_err();
        assert!(matches!(err, ToolError::Denied { ref code, .. } if code == "policy"));
    }

    #[test]
    fn denials_carry_context_and_are_counted() {
        let db = demo_db();
        db.create_user("reader", false).unwrap();
        db.grant("reader", Action::Select, "t").unwrap();
        let policy = SecurityPolicy::default().with_blacklist(["hidden"]);
        let ctx = BridgeContext::with_obs(db, "reader", policy, Obs::in_memory()).unwrap();

        let err = ctx.check_privilege(Action::Insert, "t").unwrap_err();
        let dctx = err.denial_context().unwrap();
        assert_eq!(dctx.object.as_deref(), Some("t"));
        assert_eq!(dctx.action.as_deref(), Some("INSERT"));

        let err = ctx.check_policy_object("hidden").unwrap_err();
        assert_eq!(
            err.denial_context().unwrap().object.as_deref(),
            Some("hidden")
        );

        let snap = ctx.obs.snapshot();
        assert_eq!(snap.metrics.counter("denials.privilege"), 1);
        assert_eq!(snap.metrics.counter("denials.policy"), 1);
        let denial = snap
            .spans
            .iter()
            .find(|s| s.name == "denial:privilege")
            .unwrap();
        assert_eq!(
            denial.attr("object"),
            Some(&obs::AttrValue::Str("t".into()))
        );
    }

    #[test]
    fn engine_denial_preserves_object_in_context() {
        let denied = DbError::PrivilegeDenied {
            user: "u".into(),
            action: Action::Drop,
            object: "t".into(),
        };
        let err = db_error_to_tool(denied);
        let dctx = err.denial_context().unwrap();
        assert_eq!(dctx.object.as_deref(), Some("t"));
        assert_eq!(dctx.action.as_deref(), Some("DROP"));
    }

    #[test]
    fn result_conversion() {
        let out = result_to_output(QueryResult::Rows {
            columns: vec!["a".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Null]],
        });
        assert_eq!(out.rows, Some(2));
        assert_eq!(
            out.value.pointer("/rows/0/0").and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(out.value.pointer("/rows/1/0"), Some(&Json::Null));
        let out = result_to_output(QueryResult::Affected(3));
        assert_eq!(out.value.get("affected").and_then(Json::as_i64), Some(3));
    }

    #[test]
    fn db_error_mapping() {
        let denied = DbError::PrivilegeDenied {
            user: "u".into(),
            action: Action::Drop,
            object: "t".into(),
        };
        assert!(matches!(db_error_to_tool(denied), ToolError::Denied { .. }));
        let exec = DbError::UnknownColumn("c".into());
        assert!(matches!(db_error_to_tool(exec), ToolError::Execution(_)));
    }
}
