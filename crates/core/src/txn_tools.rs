//! F3 — transaction management tools: `begin`, `commit`, `rollback`.
//!
//! Thin wrappers over the shared session. Their value is not mechanism but
//! *salience*: the paper's §3.2 shows that surfacing transaction control as
//! explicit tools is what makes agents actually use it (Figure 5c).

use crate::bridge::{db_error_to_tool, result_to_output, BridgeContext};
use std::sync::Arc;
use toolproto::{Args, FnTool, Risk, Signature, Tool};

/// Build the `begin` tool.
pub fn begin_tool(ctx: Arc<BridgeContext>) -> impl Tool {
    FnTool::new(
        "begin",
        "Begin a transaction. Call before any statement that modifies the database.",
        Signature::new(vec![]),
        move |_: &Args| {
            let result = ctx.session.lock().begin().map_err(db_error_to_tool)?;
            Ok(result_to_output(result))
        },
    )
    .with_risk(Risk::Mutating)
}

/// Build the `commit` tool.
pub fn commit_tool(ctx: Arc<BridgeContext>) -> impl Tool {
    FnTool::new(
        "commit",
        "Commit the current transaction.",
        Signature::new(vec![]),
        move |_: &Args| {
            let result = ctx.session.lock().commit().map_err(db_error_to_tool)?;
            Ok(result_to_output(result))
        },
    )
    .with_risk(Risk::Mutating)
}

/// Build the `rollback` tool.
pub fn rollback_tool(ctx: Arc<BridgeContext>) -> impl Tool {
    FnTool::new(
        "rollback",
        "Roll back the current transaction, discarding its changes.",
        Signature::new(vec![]),
        move |_: &Args| {
            let result = ctx.session.lock().rollback().map_err(db_error_to_tool)?;
            Ok(result_to_output(result))
        },
    )
    .with_risk(Risk::Mutating)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SecurityPolicy;
    use crate::sql_tools::action_tool;
    use minidb::Database;
    use sqlkit::ast::Action;
    use toolproto::{Json, Registry};

    fn setup() -> (Database, Registry) {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            .unwrap();
        let ctx = BridgeContext::new(db.clone(), "admin", SecurityPolicy::default()).unwrap();
        let mut reg = Registry::new();
        reg.register_tool(begin_tool(Arc::clone(&ctx)));
        reg.register_tool(commit_tool(Arc::clone(&ctx)));
        reg.register_tool(rollback_tool(Arc::clone(&ctx)));
        reg.register(std::sync::Arc::new(action_tool(ctx, Action::Insert)));
        (db, reg)
    }

    #[test]
    fn begin_insert_commit_persists() {
        let (db, reg) = setup();
        reg.call("begin", &Json::Null).unwrap();
        reg.call(
            "insert",
            &Json::object([("sql", Json::str("INSERT INTO t VALUES (1)"))]),
        )
        .unwrap();
        reg.call("commit", &Json::Null).unwrap();
        assert_eq!(db.table_rows("t").unwrap(), 1);
    }

    #[test]
    fn begin_insert_rollback_discards() {
        let (db, reg) = setup();
        reg.call("begin", &Json::Null).unwrap();
        reg.call(
            "insert",
            &Json::object([("sql", Json::str("INSERT INTO t VALUES (1)"))]),
        )
        .unwrap();
        reg.call("rollback", &Json::Null).unwrap();
        assert_eq!(db.table_rows("t").unwrap(), 0);
    }

    #[test]
    fn commit_without_begin_fails() {
        let (_db, reg) = setup();
        assert!(reg.call("commit", &Json::Null).is_err());
        assert!(reg.call("rollback", &Json::Null).is_err());
    }
}
