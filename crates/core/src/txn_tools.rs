//! F3 — transaction management tools: `begin`, `commit`, `rollback`.
//!
//! Thin wrappers over the shared session. Their value is not mechanism but
//! *salience*: the paper's §3.2 shows that surfacing transaction control as
//! explicit tools is what makes agents actually use it (Figure 5c).

use crate::bridge::{db_error_to_tool, result_to_output, BridgeContext};
use minidb::{DbError, QueryResult};
use std::sync::Arc;
use toolproto::{Args, FnTool, Risk, Signature, Tool, ToolResult};

/// Run one transaction-control operation under a `txn:{verb}` span, counting
/// outcomes per verb (`txn.{verb}.ok` / `txn.{verb}.error`).
fn run_txn_op(
    ctx: &BridgeContext,
    verb: &str,
    op: impl FnOnce(&BridgeContext) -> Result<QueryResult, DbError>,
) -> ToolResult {
    let mut span = ctx.obs.span(&format!("txn:{verb}"));
    let result = op(ctx).map_err(db_error_to_tool);
    if ctx.obs.is_enabled() {
        let outcome = if result.is_ok() { "ok" } else { "error" };
        ctx.obs.incr(&format!("txn.{verb}.{outcome}"), 1);
        if let Err(e) = &result {
            span.fail(e.to_string());
        }
    }
    result.map(result_to_output)
}

/// Build the `begin` tool.
pub fn begin_tool(ctx: Arc<BridgeContext>) -> impl Tool {
    FnTool::new(
        "begin",
        "Begin a transaction. Call before any statement that modifies the database.",
        Signature::new(vec![]),
        move |_: &Args| run_txn_op(&ctx, "begin", |ctx| ctx.session.lock().begin()),
    )
    .with_risk(Risk::Mutating)
}

/// Build the `commit` tool.
pub fn commit_tool(ctx: Arc<BridgeContext>) -> impl Tool {
    FnTool::new(
        "commit",
        "Commit the current transaction.",
        Signature::new(vec![]),
        move |_: &Args| run_txn_op(&ctx, "commit", |ctx| ctx.session.lock().commit()),
    )
    .with_risk(Risk::Mutating)
}

/// Build the `rollback` tool.
pub fn rollback_tool(ctx: Arc<BridgeContext>) -> impl Tool {
    FnTool::new(
        "rollback",
        "Roll back the current transaction, discarding its changes.",
        Signature::new(vec![]),
        move |_: &Args| run_txn_op(&ctx, "rollback", |ctx| ctx.session.lock().rollback()),
    )
    .with_risk(Risk::Mutating)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SecurityPolicy;
    use crate::sql_tools::action_tool;
    use minidb::Database;
    use sqlkit::ast::Action;
    use toolproto::{Json, Registry};

    fn setup() -> (Database, Registry) {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            .unwrap();
        let ctx = BridgeContext::new(db.clone(), "admin", SecurityPolicy::default()).unwrap();
        let mut reg = Registry::new();
        reg.register_tool(begin_tool(Arc::clone(&ctx)));
        reg.register_tool(commit_tool(Arc::clone(&ctx)));
        reg.register_tool(rollback_tool(Arc::clone(&ctx)));
        reg.register(std::sync::Arc::new(action_tool(ctx, Action::Insert)));
        (db, reg)
    }

    #[test]
    fn begin_insert_commit_persists() {
        let (db, reg) = setup();
        reg.call("begin", &Json::Null).unwrap();
        reg.call(
            "insert",
            &Json::object([("sql", Json::str("INSERT INTO t VALUES (1)"))]),
        )
        .unwrap();
        reg.call("commit", &Json::Null).unwrap();
        assert_eq!(db.table_rows("t").unwrap(), 1);
    }

    #[test]
    fn begin_insert_rollback_discards() {
        let (db, reg) = setup();
        reg.call("begin", &Json::Null).unwrap();
        reg.call(
            "insert",
            &Json::object([("sql", Json::str("INSERT INTO t VALUES (1)"))]),
        )
        .unwrap();
        reg.call("rollback", &Json::Null).unwrap();
        assert_eq!(db.table_rows("t").unwrap(), 0);
    }

    #[test]
    fn commit_without_begin_fails() {
        let (_db, reg) = setup();
        assert!(reg.call("commit", &Json::Null).is_err());
        assert!(reg.call("rollback", &Json::Null).is_err());
    }

    #[test]
    fn txn_outcomes_are_counted_when_observed() {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            .unwrap();
        let obs = obs::Obs::in_memory();
        let ctx =
            BridgeContext::with_obs(db, "admin", SecurityPolicy::default(), obs.clone()).unwrap();
        let mut reg = Registry::new();
        reg.register_tool(begin_tool(Arc::clone(&ctx)));
        reg.register_tool(commit_tool(Arc::clone(&ctx)));
        reg.register_tool(rollback_tool(ctx));

        reg.call("commit", &Json::Null).unwrap_err();
        reg.call("begin", &Json::Null).unwrap();
        reg.call("commit", &Json::Null).unwrap();

        let snap = obs.snapshot();
        assert_eq!(snap.metrics.counter("txn.begin.ok"), 1);
        assert_eq!(snap.metrics.counter("txn.commit.ok"), 1);
        assert_eq!(snap.metrics.counter("txn.commit.error"), 1);
        let failed = snap
            .spans
            .iter()
            .find(|sp| sp.name == "txn:commit" && sp.error.is_some())
            .expect("failed commit span");
        assert!(failed.error.as_deref().unwrap().contains("transaction"));
    }
}
