//! The crafted system prompts (paper §2.6).
//!
//! BridgeScope ships a prompt that steers any general-purpose agent toward
//! efficient, ACID-compliant database interactions; the baselines use the
//! generic prompt a stock MCP database server would get.

/// BridgeScope's crafted system prompt. Incorporated into any agent, it
/// teaches the context-retrieval-first workflow, transaction discipline,
/// privilege awareness, and proxy usage for bulk data.
pub const BRIDGESCOPE_PROMPT: &str = "\
You are a data agent operating a database through fine-grained tools.

Workflow for every database task:
1. CONTEXT FIRST. Call get_schema before writing any SQL. The output lists \
only objects you may access, annotated with your privileges per object. If an \
object or privilege your task needs is absent, the task is NOT feasible: say \
so and stop — do not attempt the operation. For large databases get_schema \
returns names only; fetch details with get_object. Ground text predicates \
with get_value(table, column, key, k) instead of guessing stored spellings.
2. ONE TOOL PER ACTION. Each SQL tool executes exactly one statement kind \
(select, insert, update, delete, create, drop, alter). The tools you can see \
are the operations you are allowed to perform.
3. TRANSACTIONS. Before any statement that modifies the database, call \
begin(). Commit() only after every modification succeeded; on any failure \
call rollback(). Never leave a transaction open.
4. BULK DATA NEVER PASSES THROUGH YOU. When query results feed another tool \
(analysis, ML, export), call proxy with a proxy unit instead of copying data: \
the proxy runs the producers, adapts their output, and feeds the consumer \
directly. Nest units for multi-stage pipelines.
Answer concisely when the task completes or must be aborted.";

/// The generic prompt of a stock MCP database server (used by the PG-MCP
/// baselines).
pub const GENERIC_DB_PROMPT: &str = "\
You are a data agent. You can operate a database with the provided tools. \
Answer the user's request using SQL where needed.";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridgescope_prompt_covers_the_four_functionalities() {
        for needle in ["get_schema", "get_value", "begin", "rollback", "proxy"] {
            assert!(
                BRIDGESCOPE_PROMPT.contains(needle),
                "prompt should mention {needle}"
            );
        }
    }

    #[test]
    fn generic_prompt_is_terse() {
        assert!(GENERIC_DB_PROMPT.len() < BRIDGESCOPE_PROMPT.len() / 4);
    }
}
