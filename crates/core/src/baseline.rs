//! Baseline toolkits from the paper's evaluation (§3.1).
//!
//! * **PG-MCP** — the stock PostgreSQL MCP server design: a `get_schema`
//!   tool (full dump, *no* privilege annotations, *no* policy filtering) and
//!   a universal `execute_sql` tool accepting any statement, including
//!   transaction control.
//! * **PG-MCP⁻** — the reduced variant of §3.2: a single `execute_sql` tool
//!   that must serve context retrieval *and* execution.
//! * **PG-MCP-S** — PG-MCP over a row-sampled database (§3.4); the sampling
//!   itself is done by the benchmark harness, the toolkit is identical.

use crate::bridge::{
    db_error_to_tool, result_to_output_verbose, value_to_json, BridgeContext, DatabaseHandle,
};
use crate::config::SecurityPolicy;
use minidb::DbError;
use std::sync::Arc;
use toolproto::{
    ArgSpec, ArgType, Args, FnTool, Json, Registry, Risk, Signature, Tool, ToolError, ToolOutput,
};

/// Build PG-MCP's `get_schema`: every table, full detail, no annotations.
fn pg_get_schema(ctx: Arc<BridgeContext>) -> impl Tool {
    FnTool::new(
        "get_schema",
        "Return the schema of all tables in the database.",
        Signature::new(vec![]),
        move |_: &Args| {
            let mut tables = Vec::new();
            for name in ctx.db.table_names() {
                let schema = ctx
                    .db
                    .table_schema(&name)
                    .map_err(|e| ToolError::Execution(e.to_string()))?;
                // The stock server dumps everything pg_dump-style: columns
                // with types/defaults, keys, foreign keys, indexes, sizes —
                // for every table, whether or not the user may touch it.
                let columns = Json::array(schema.columns.iter().map(|c| {
                    Json::object([
                        ("name", Json::str(c.name.clone())),
                        ("type", Json::str(c.ty.sql())),
                        ("nullable", Json::Bool(!c.not_null)),
                        ("unique", Json::Bool(c.unique)),
                        (
                            "default",
                            c.default.as_ref().map_or(Json::Null, value_to_json),
                        ),
                    ])
                }));
                let rows = ctx.db.table_rows(&name).unwrap_or(0);
                tables.push(Json::object([
                    ("name", Json::str(name)),
                    ("columns", columns),
                    (
                        "primary_key",
                        Json::array(schema.primary_key.iter().map(|c| Json::str(c.clone()))),
                    ),
                    (
                        "foreign_keys",
                        Json::array(schema.foreign_keys.iter().map(|fk| {
                            Json::object([
                                (
                                    "columns",
                                    Json::array(fk.columns.iter().map(|c| Json::str(c.clone()))),
                                ),
                                ("references", Json::str(fk.foreign_table.clone())),
                                (
                                    "referenced_columns",
                                    Json::array(
                                        fk.foreign_columns.iter().map(|c| Json::str(c.clone())),
                                    ),
                                ),
                            ])
                        })),
                    ),
                    (
                        "indexes",
                        Json::array(schema.indexes.iter().map(|i| {
                            Json::object([
                                ("name", Json::str(i.name.clone())),
                                (
                                    "columns",
                                    Json::array(i.columns.iter().map(|c| Json::str(c.clone()))),
                                ),
                                ("unique", Json::Bool(i.unique)),
                            ])
                        })),
                    ),
                    ("row_count", Json::num(rows as f64)),
                ]));
            }
            Ok(ToolOutput::value(Json::object([
                ("tables", Json::array(tables)),
                ("detail", Json::str("full")),
            ])))
        },
    )
}

/// Build the universal `execute_sql` tool: any statement, engine-enforced
/// security only.
fn pg_execute_sql(ctx: Arc<BridgeContext>) -> impl Tool {
    FnTool::new(
        "execute_sql",
        "Execute any SQL statement against the database and return the result.",
        Signature::new(vec![ArgSpec::required(
            "sql",
            ArgType::String,
            "the SQL statement to execute",
        )]),
        move |args: &Args| {
            let sql = args["sql"].as_str().expect("validated");
            let result = ctx
                .session
                .lock()
                .execute_sql(sql)
                .map_err(db_error_to_tool)?;
            // The stock server returns rows as objects keyed by column name.
            Ok(result_to_output_verbose(result))
        },
    )
    // The single tool can do anything, up to and including DROP — that is
    // precisely the paper's Challenge C1.
    .with_risk(Risk::Destructive)
}

/// A built baseline server.
pub struct BaselineServer {
    /// The tools exposed to the agent.
    pub registry: Registry,
    /// The generic system prompt.
    pub prompt: &'static str,
}

/// Build the PG-MCP baseline (get_schema + execute_sql).
pub fn pg_mcp(
    db: impl Into<DatabaseHandle>,
    user: &str,
    external: &Registry,
) -> Result<BaselineServer, DbError> {
    let ctx = BridgeContext::new(db, user, SecurityPolicy::permissive())?;
    let mut registry = Registry::new();
    registry.register_tool(pg_get_schema(Arc::clone(&ctx)));
    registry.register_tool(pg_execute_sql(ctx));
    registry.extend(external);
    Ok(BaselineServer {
        registry,
        prompt: crate::prompt::GENERIC_DB_PROMPT,
    })
}

/// Build the PG-MCP⁻ variant (execute_sql only).
pub fn pg_mcp_minus(
    db: impl Into<DatabaseHandle>,
    user: &str,
    external: &Registry,
) -> Result<BaselineServer, DbError> {
    let ctx = BridgeContext::new(db, user, SecurityPolicy::permissive())?;
    let mut registry = Registry::new();
    registry.register_tool(pg_execute_sql(ctx));
    registry.extend(external);
    Ok(BaselineServer {
        registry,
        prompt: crate::prompt::GENERIC_DB_PROMPT,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::Database;

    fn demo() -> Database {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE TABLE a (id INTEGER PRIMARY KEY)")
            .unwrap();
        s.execute_sql("CREATE TABLE b (id INTEGER PRIMARY KEY)")
            .unwrap();
        db.create_user("limited", false).unwrap();
        db.grant("limited", sqlkit::Action::Select, "a").unwrap();
        db
    }

    #[test]
    fn pg_mcp_shows_everything_without_annotations() {
        let db = demo();
        let server = pg_mcp(db, "limited", &Registry::new()).unwrap();
        let out = server.registry.call("get_schema", &Json::Null).unwrap();
        let tables = out.value.get("tables").and_then(Json::as_array).unwrap();
        assert_eq!(tables.len(), 2, "no privilege filtering");
        assert!(tables.iter().all(|t| t.get("privileges").is_none()));
    }

    #[test]
    fn execute_sql_accepts_anything_engine_allows() {
        let db = demo();
        let server = pg_mcp(db.clone(), "admin", &Registry::new()).unwrap();
        let reg = &server.registry;
        let sql = |s: &str| Json::object([("sql", Json::str(s))]);
        reg.call("execute_sql", &sql("BEGIN")).unwrap();
        reg.call("execute_sql", &sql("INSERT INTO a VALUES (1)"))
            .unwrap();
        reg.call("execute_sql", &sql("COMMIT")).unwrap();
        assert_eq!(db.table_rows("a").unwrap(), 1);
        // And the dangerous stuff, too — the paper's point.
        reg.call("execute_sql", &sql("DROP TABLE b")).unwrap();
        assert!(!db.table_names().contains(&"b".to_string()));
    }

    #[test]
    fn engine_still_denies_unprivileged_sql() {
        let db = demo();
        let server = pg_mcp(db, "limited", &Registry::new()).unwrap();
        let err = server
            .registry
            .call(
                "execute_sql",
                &Json::object([("sql", Json::str("INSERT INTO a VALUES (1)"))]),
            )
            .unwrap_err();
        assert!(matches!(err, ToolError::Denied { .. }), "{err}");
    }

    #[test]
    fn pg_mcp_minus_has_single_tool() {
        let db = demo();
        let server = pg_mcp_minus(db, "admin", &Registry::new()).unwrap();
        assert_eq!(server.registry.names(), vec!["execute_sql"]);
    }
}
