//! Lexical-semantic similarity for column-exemplar retrieval.
//!
//! `get_value(col, key, k)` must surface stored values relevant to a task
//! key: "women" should rank `women's wear` above `menswear`. Without access
//! to embedding models we use a blend of string signals that handles the
//! paper's motivating cases — synonym-ish prefixes, spelling variants, and
//! domain phrasing: normalized Levenshtein distance, token overlap, and
//! substring containment.

/// Levenshtein edit distance (iterative, two-row).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Similarity in [0, 1]: 1 = identical (case-insensitive).
pub fn similarity(key: &str, value: &str) -> f64 {
    let k = key.trim().to_lowercase();
    let v = value.trim().to_lowercase();
    if k.is_empty() || v.is_empty() {
        return 0.0;
    }
    if k == v {
        return 1.0;
    }
    // Substring containment is a strong signal ("women" ⊂ "women's wear").
    let containment = if v.contains(&k) || k.contains(&v) {
        let shorter = k.len().min(v.len()) as f64;
        let longer = k.len().max(v.len()) as f64;
        0.6 + 0.35 * (shorter / longer)
    } else {
        0.0
    };
    // Token overlap (Jaccard over whitespace/punctuation tokens).
    let toks = |s: &str| -> Vec<String> {
        s.split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(str::to_owned)
            .collect()
    };
    let kt = toks(&k);
    let vt = toks(&v);
    let overlap = if kt.is_empty() || vt.is_empty() {
        0.0
    } else {
        let inter = kt.iter().filter(|t| vt.contains(t)).count() as f64;
        let union = (kt.len() + vt.len()) as f64 - inter;
        inter / union
    };
    // Normalized edit similarity.
    let edit = 1.0 - levenshtein(&k, &v) as f64 / k.len().max(v.len()) as f64;
    // The strongest signal wins: containment handles "women" ⊂ "women's
    // wear", token overlap handles re-orderings, edit similarity handles
    // spelling variants like organisation/organization.
    containment.max(overlap).max(edit)
}

/// Rank `values` by similarity to `key`, returning the top-k most relevant
/// (ties broken lexicographically for determinism).
pub fn top_k<'v>(key: &str, values: &'v [String], k: usize) -> Vec<(&'v str, f64)> {
    let mut scored: Vec<(&str, f64)> = values
        .iter()
        .map(|v| (v.as_str(), similarity(key, v)))
        .collect();
    scored.sort_by(|(va, sa), (vb, sb)| {
        sb.partial_cmp(sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| va.cmp(vb))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn identical_is_one() {
        assert_eq!(similarity("Women", "women"), 1.0);
    }

    #[test]
    fn papers_motivating_example() {
        // "women" must rank "women's wear" above unrelated categories.
        let values = vec![
            "women's wear".to_string(),
            "menswear".to_string(),
            "kids".to_string(),
            "accessories".to_string(),
        ];
        let ranked = top_k("women", &values, 2);
        assert_eq!(ranked[0].0, "women's wear");
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn spelling_variants_score_high() {
        assert!(similarity("organization", "organisation") > 0.8);
        assert!(similarity("colour", "color") > 0.6);
    }

    #[test]
    fn unrelated_scores_low() {
        assert!(similarity("women", "electronics") < 0.3);
        assert!(similarity("", "x") == 0.0);
    }

    #[test]
    fn top_k_is_deterministic_on_ties() {
        let values = vec!["aa".to_string(), "ab".to_string(), "ba".to_string()];
        let a = top_k("zz", &values, 3);
        let b = top_k("zz", &values, 3);
        let names_a: Vec<&str> = a.iter().map(|(v, _)| *v).collect();
        let names_b: Vec<&str> = b.iter().map(|(v, _)| *v).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn top_k_truncates() {
        let values: Vec<String> = (0..10).map(|i| format!("v{i}")).collect();
        assert_eq!(top_k("v", &values, 3).len(), 3);
        assert_eq!(top_k("v", &values, 99).len(), 10);
    }
}
