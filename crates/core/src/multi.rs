//! Multi-datasource BridgeScope (paper §2.6).
//!
//! "This database-agnostic design enables LLMs to interact with any data
//! source using a consistent set of tools … greatly enhancing their
//! capabilities in multi-datasource scenarios." This module implements that
//! claim: one tool surface spanning several databases. Every BridgeScope
//! tool gains a `source` argument (optional when only one source is
//! registered); a `list_sources` tool enumerates them; and a single `proxy`
//! spans all sources, so one proxy unit can pull data from two databases
//! into one downstream consumer.

use crate::config::SecurityPolicy;
use crate::proxy::proxy_tool;
use crate::server::BridgeScopeServer;
use minidb::{Database, DbError};
use std::collections::BTreeMap;
use std::sync::Arc;
use toolproto::{ArgSpec, ArgType, Args, FnTool, Json, Registry, Signature, ToolError, ToolOutput};

/// One data source of a multi-source surface.
pub struct SourceSpec {
    /// Source name, used as the `source` argument value.
    pub name: String,
    /// The database.
    pub db: Database,
    /// The acting user on that database.
    pub user: String,
    /// The user-side policy for that source.
    pub policy: SecurityPolicy,
}

/// A built multi-source server.
pub struct MultiSourceServer {
    /// The combined tool surface.
    pub registry: Registry,
    /// The crafted system prompt.
    pub prompt: &'static str,
}

impl MultiSourceServer {
    /// Build a combined surface over several sources. Tools named like
    /// single-source BridgeScope tools accept an extra `source` argument
    /// (defaulting to the sole source when only one is given); `external`
    /// tools and the cross-source `proxy` complete the surface.
    pub fn build(sources: Vec<SourceSpec>, external: &Registry) -> Result<Self, DbError> {
        assert!(!sources.is_empty(), "at least one source required");
        let default_source = if sources.len() == 1 {
            Some(sources[0].name.clone())
        } else {
            None
        };
        // Build each source's own surface (privilege- and policy-shaped).
        let mut per_source: BTreeMap<String, Registry> = BTreeMap::new();
        for spec in sources {
            let server =
                BridgeScopeServer::build(spec.db, &spec.user, spec.policy, &Registry::new())?;
            // The per-source proxy is dropped: one cross-source proxy is
            // built over the combined surface below.
            let mut registry = server.registry;
            registry.unregister("proxy");
            per_source.insert(spec.name, registry);
        }
        let per_source = Arc::new(per_source);

        let mut combined = Registry::new();
        // `list_sources`: names plus the tools each one offers.
        {
            let per_source = Arc::clone(&per_source);
            combined.register_tool(FnTool::new(
                "list_sources",
                "List the registered data sources and the tools each one offers.",
                Signature::new(vec![]),
                move |_: &Args| {
                    let items = per_source.iter().map(|(name, reg)| {
                        Json::object([
                            ("name", Json::str(name.clone())),
                            ("tools", Json::array(reg.names().into_iter().map(Json::str))),
                        ])
                    });
                    Ok(ToolOutput::value(Json::object([(
                        "sources",
                        Json::array(items),
                    )])))
                },
            ));
        }
        // One dispatching wrapper per tool name appearing in any source.
        let mut tool_names: Vec<String> = per_source
            .values()
            .flat_map(|r| r.names().into_iter().map(str::to_owned))
            .collect();
        tool_names.sort();
        tool_names.dedup();
        for name in tool_names {
            let per_source = Arc::clone(&per_source);
            let default = default_source.clone();
            let tool_name = name.clone();
            // Describe using the first source that has the tool; risk is the
            // max across sources so policy filtering stays conservative.
            let description = per_source
                .values()
                .find_map(|r| r.get(&name).map(|t| t.description().to_owned()))
                .unwrap_or_default();
            let risk = per_source
                .values()
                .filter_map(|r| r.get(&name).map(|t| t.risk()))
                .max()
                .unwrap_or(toolproto::Risk::Safe);
            let source_arg = match &default {
                Some(d) => ArgSpec::optional(
                    "source",
                    ArgType::String,
                    "data source name",
                    Json::str(d.clone()),
                ),
                None => ArgSpec::required(
                    "source",
                    ArgType::String,
                    "data source name (see list_sources)",
                ),
            };
            combined.register_tool(
                FnTool::new(
                    name.clone(),
                    format!("{description} (on the data source named by 'source')"),
                    Signature::open(vec![source_arg]),
                    move |args: &Args| {
                        let source =
                            args.get("source").and_then(Json::as_str).ok_or_else(|| {
                                ToolError::Execution("missing 'source' argument".into())
                            })?;
                        let registry = per_source.get(source).ok_or_else(|| {
                            ToolError::Execution(format!(
                                "unknown source '{source}'; call list_sources"
                            ))
                        })?;
                        if !registry.contains(&tool_name) {
                            return Err(ToolError::denied_with(
                                "privilege",
                                format!(
                                    "tool '{tool_name}' is not available on source '{source}' \
                                     for this user"
                                ),
                                toolproto::DenialContext::default()
                                    .with_tool(tool_name.clone())
                                    .with_object(source),
                            ));
                        }
                        let mut forwarded = args.clone();
                        forwarded.remove("source");
                        // Re-validate against the source tool's own signature
                        // (the wrapper's signature is open).
                        registry.call(&tool_name, &Json::Object(forwarded))
                    },
                )
                .with_risk(risk),
            );
        }
        combined.extend(external);
        let surface = combined.clone();
        combined.register_tool(proxy_tool(surface));
        Ok(MultiSourceServer {
            registry: combined,
            prompt: crate::prompt::BRIDGESCOPE_PROMPT,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::Action;

    fn sales_db() -> Database {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE TABLE sales (id INTEGER PRIMARY KEY, amount REAL)")
            .unwrap();
        s.execute_sql("INSERT INTO sales VALUES (1, 10.0), (2, 20.0)")
            .unwrap();
        db.create_user("ana", false).unwrap();
        db.grant_all("ana", "sales").unwrap();
        db
    }

    fn hr_db() -> Database {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE TABLE staff (id INTEGER PRIMARY KEY, name TEXT)")
            .unwrap();
        s.execute_sql("INSERT INTO staff VALUES (1, 'Ada'), (2, 'Bob'), (3, 'Cy')")
            .unwrap();
        db.create_user("ana", false).unwrap();
        db.grant("ana", Action::Select, "staff").unwrap();
        db
    }

    fn build() -> MultiSourceServer {
        MultiSourceServer::build(
            vec![
                SourceSpec {
                    name: "sales_db".into(),
                    db: sales_db(),
                    user: "ana".into(),
                    policy: SecurityPolicy::default(),
                },
                SourceSpec {
                    name: "hr_db".into(),
                    db: hr_db(),
                    user: "ana".into(),
                    policy: SecurityPolicy::default(),
                },
            ],
            &Registry::new(),
        )
        .unwrap()
    }

    #[test]
    fn list_sources_enumerates_surfaces() {
        let server = build();
        let out = server.registry.call("list_sources", &Json::Null).unwrap();
        let sources = out.value.get("sources").and_then(Json::as_array).unwrap();
        assert_eq!(sources.len(), 2);
        // ana can write on sales_db but is read-only on hr_db.
        let tools_of = |name: &str| -> Vec<String> {
            sources
                .iter()
                .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|s| s.get("tools"))
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .filter_map(Json::as_str)
                .map(str::to_owned)
                .collect()
        };
        assert!(tools_of("sales_db").contains(&"insert".to_string()));
        assert!(!tools_of("hr_db").contains(&"insert".to_string()));
    }

    #[test]
    fn dispatch_by_source() {
        let server = build();
        let out = server
            .registry
            .call(
                "select",
                &Json::object([
                    ("source", Json::str("hr_db")),
                    ("sql", Json::str("SELECT COUNT(*) FROM staff")),
                ]),
            )
            .unwrap();
        assert_eq!(
            out.value.pointer("/rows/0/0").and_then(Json::as_i64),
            Some(3)
        );
        // Unknown source errors helpfully.
        let err = server
            .registry
            .call(
                "select",
                &Json::object([
                    ("source", Json::str("nope")),
                    ("sql", Json::str("SELECT 1")),
                ]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("list_sources"), "{err}");
    }

    #[test]
    fn per_source_privileges_enforced() {
        let server = build();
        // Writing on the read-only hr_db source is denied (no insert tool
        // there), even though sales_db exposes insert.
        let err = server
            .registry
            .call(
                "insert",
                &Json::object([
                    ("source", Json::str("hr_db")),
                    ("sql", Json::str("INSERT INTO staff VALUES (9, 'Eve')")),
                ]),
            )
            .unwrap_err();
        assert!(matches!(err, ToolError::Denied { .. }), "{err}");
        // And allowed on sales_db.
        server
            .registry
            .call(
                "insert",
                &Json::object([
                    ("source", Json::str("sales_db")),
                    ("sql", Json::str("INSERT INTO sales VALUES (3, 30.0)")),
                ]),
            )
            .unwrap();
    }

    #[test]
    fn cross_source_proxy_unit() {
        let mut external = Registry::new();
        external.register_tool(FnTool::new(
            "combine",
            "count rows from two datasets",
            Signature::open(vec![]),
            |args: &Args| {
                let n = |k: &str| {
                    args.get(k)
                        .and_then(Json::as_array)
                        .map_or(0, <[Json]>::len)
                };
                Ok(ToolOutput::value(Json::object([(
                    "total",
                    Json::num((n("a") + n("b")) as f64),
                )])))
            },
        ));
        let server = MultiSourceServer::build(
            vec![
                SourceSpec {
                    name: "sales_db".into(),
                    db: sales_db(),
                    user: "ana".into(),
                    policy: SecurityPolicy::default(),
                },
                SourceSpec {
                    name: "hr_db".into(),
                    db: hr_db(),
                    user: "ana".into(),
                    policy: SecurityPolicy::default(),
                },
            ],
            &external,
        )
        .unwrap();
        // One unit pulling from both databases into one consumer — the
        // paper's multi-datasource scenario.
        let out = server
            .registry
            .call(
                "proxy",
                &Json::parse(
                    r#"{"target_tool": "combine", "tool_args": {
                        "a": {"tool": "select",
                              "args": {"source": "sales_db", "sql": "SELECT * FROM sales"},
                              "transform": "/rows"},
                        "b": {"tool": "select",
                              "args": {"source": "hr_db", "sql": "SELECT * FROM staff"},
                              "transform": "/rows"}}}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(out.value.get("total").and_then(Json::as_i64), Some(5));
    }

    #[test]
    fn single_source_needs_no_source_argument() {
        let server = MultiSourceServer::build(
            vec![SourceSpec {
                name: "only".into(),
                db: sales_db(),
                user: "ana".into(),
                policy: SecurityPolicy::default(),
            }],
            &Registry::new(),
        )
        .unwrap();
        let out = server
            .registry
            .call(
                "select",
                &Json::object([("sql", Json::str("SELECT COUNT(*) FROM sales"))]),
            )
            .unwrap();
        assert_eq!(
            out.value.pointer("/rows/0/0").and_then(Json::as_i64),
            Some(2)
        );
    }
}
