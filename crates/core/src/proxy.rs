//! F4 — the proxy mechanism for inter-tool data transmission.
//!
//! A proxy unit is the paper's ⟨p, c, f⟩ triple: data producers `p`, a
//! consumer tool `c`, and an adaptation function `f`. Units nest — a unit can
//! act as a producer for a higher-level unit — and the proxy executes the
//! hierarchy bottom-up, forwarding data *directly between tools* so bulk
//! results never enter the LLM context. Sibling producers run in parallel
//! (std scoped threads), reproducing the paper's §2.5 efficiency claim.
//!
//! ## Wire format of the `proxy` tool
//!
//! ```json
//! {
//!   "target_tool": "train_linear_regression",
//!   "tool_args": {
//!     "data":   {"tool": "select", "args": {"sql": "…"}, "transform": "/rows"},
//!     "extra":  {"unit": { …nested unit… }, "transform": "identity"},
//!     "both":   {"producers": [ {…}, {…} ], "transform": "identity"},
//!     "target": {"value": "median_house_value"}
//!   }
//! }
//! ```
//!
//! Transforms `f`: `"identity"` passes the producer output through; a string
//! starting with `/` is applied as an RFC-6901 JSON pointer (e.g. `"/rows"`
//! unwraps a query result to its row array).

use obs::{Obs, SpanGuard};
use std::sync::Arc;
use toolproto::{Args, FnTool, Json, Registry, Risk, Signature, Tool, ToolError, ToolOutput};

/// Maximum nesting depth of proxy units (a safety valve; the NL2ML
/// benchmark's hardest tasks use 3).
pub const MAX_PROXY_DEPTH: usize = 16;

/// The adaptation function `f` of a proxy unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transform {
    /// Pass the producer output through unchanged.
    Identity,
    /// Apply an RFC-6901 JSON pointer to the producer output.
    Pointer(String),
}

impl Transform {
    fn parse(spec: Option<&Json>) -> Result<Transform, ToolError> {
        match spec {
            None => Ok(Transform::Identity),
            Some(Json::Str(s)) if s == "identity" => Ok(Transform::Identity),
            Some(Json::Str(s)) if s.starts_with('/') => Ok(Transform::Pointer(s.clone())),
            Some(other) => Err(ToolError::Execution(format!(
                "unknown transform {other}; use \"identity\" or a JSON pointer"
            ))),
        }
    }

    fn apply(&self, value: Json) -> Result<Json, ToolError> {
        match self {
            Transform::Identity => Ok(value),
            Transform::Pointer(p) => value.pointer(p).cloned().ok_or_else(|| {
                ToolError::Execution(format!("transform pointer '{p}' did not match the output"))
            }),
        }
    }
}

/// A data producer: a direct tool call or a nested unit.
#[derive(Debug, Clone)]
pub enum Source {
    /// Invoke a tool with literal arguments.
    Tool {
        /// Tool name.
        name: String,
        /// Arguments passed verbatim.
        args: Json,
    },
    /// Execute a nested proxy unit.
    Unit(Box<ProxyUnit>),
}

/// A producer plus its adaptation function.
#[derive(Debug, Clone)]
pub struct Producer {
    /// Where the data comes from.
    pub source: Source,
    /// How it is adapted for the consumer.
    pub transform: Transform,
}

/// How one consumer argument is filled.
#[derive(Debug, Clone)]
pub enum ArgBinding {
    /// A literal value.
    Value(Json),
    /// A single producer.
    One(Producer),
    /// Several producers; the argument receives the array of their outputs.
    Many(Vec<Producer>),
}

/// A parsed proxy unit ⟨p, c, f⟩.
#[derive(Debug, Clone)]
pub struct ProxyUnit {
    /// The consumer tool `c`.
    pub target_tool: String,
    /// Argument bindings (producers `p` with transforms `f`, plus literals).
    pub args: Vec<(String, ArgBinding)>,
}

impl ProxyUnit {
    /// Parse a unit from its wire JSON.
    pub fn parse(value: &Json) -> Result<ProxyUnit, ToolError> {
        let target_tool = value
            .get("target_tool")
            .and_then(Json::as_str)
            .ok_or_else(|| ToolError::Execution("proxy unit needs 'target_tool'".into()))?
            .to_owned();
        let mut args = Vec::new();
        if let Some(map) = value.get("tool_args").and_then(Json::as_object) {
            for (name, spec) in map {
                args.push((name.clone(), Self::parse_binding(spec)?));
            }
        }
        Ok(ProxyUnit { target_tool, args })
    }

    fn parse_binding(spec: &Json) -> Result<ArgBinding, ToolError> {
        let obj = spec.as_object().ok_or_else(|| {
            ToolError::Execution(format!(
                "argument spec must be an object with 'value', 'tool', 'unit', or 'producers'; got {spec}"
            ))
        })?;
        if let Some(v) = obj.get("value") {
            return Ok(ArgBinding::Value(v.clone()));
        }
        if obj.contains_key("producers") {
            let list = obj["producers"]
                .as_array()
                .ok_or_else(|| ToolError::Execution("'producers' must be an array".into()))?;
            let producers = list
                .iter()
                .map(Self::parse_producer)
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(ArgBinding::Many(producers));
        }
        Ok(ArgBinding::One(Self::parse_producer(spec)?))
    }

    fn parse_producer(spec: &Json) -> Result<Producer, ToolError> {
        let transform = Transform::parse(spec.get("transform"))?;
        if let Some(name) = spec.get("tool").and_then(Json::as_str) {
            return Ok(Producer {
                source: Source::Tool {
                    name: name.to_owned(),
                    args: spec.get("args").cloned().unwrap_or(Json::Null),
                },
                transform,
            });
        }
        if let Some(unit) = spec.get("unit") {
            return Ok(Producer {
                source: Source::Unit(Box::new(ProxyUnit::parse(unit)?)),
                transform,
            });
        }
        Err(ToolError::Execution(
            "producer needs 'tool' or 'unit'".into(),
        ))
    }

    /// Count the nesting depth of this unit.
    pub fn depth(&self) -> usize {
        1 + self
            .args
            .iter()
            .map(|(_, b)| match b {
                ArgBinding::Value(_) => 0,
                ArgBinding::One(p) => producer_depth(p),
                ArgBinding::Many(ps) => ps.iter().map(producer_depth).max().unwrap_or(0),
            })
            .max()
            .unwrap_or(0)
    }
}

fn producer_depth(p: &Producer) -> usize {
    match &p.source {
        Source::Tool { .. } => 0,
        Source::Unit(u) => u.depth(),
    }
}

/// Rows represented by one producer output, for proxy data-volume
/// accounting: a bare array counts its elements, a query result counts its
/// `rows` array, anything else counts 0 (scalars move, but are not rows).
fn json_row_count(value: &Json) -> usize {
    if let Some(items) = value.as_array() {
        return items.len();
    }
    value
        .get("rows")
        .and_then(Json::as_array)
        .map(<[Json]>::len)
        .unwrap_or(0)
}

/// Execute a proxy unit bottom-up against a registry. Sibling producers run
/// in parallel threads.
pub fn execute_unit(
    registry: &Registry,
    unit: &ProxyUnit,
    depth: usize,
) -> Result<Json, ToolError> {
    execute_unit_observed(registry, unit, depth, &Obs::disabled())
}

/// [`execute_unit`] recording into `obs`: each unit becomes a `proxy:unit`
/// span (consumer, depth, producer count, rows/bytes moved tool→tool), and
/// the `proxy.units` / `proxy.rows_moved` / `proxy.bytes_moved` counters
/// quantify the data that never transits the LLM. Producer spans opened on
/// worker threads are re-parented under this unit's span.
pub fn execute_unit_observed(
    registry: &Registry,
    unit: &ProxyUnit,
    depth: usize,
    obs: &Obs,
) -> Result<Json, ToolError> {
    let mut span = obs.span("proxy:unit");
    if span.enabled() {
        span.attr("target_tool", unit.target_tool.as_str());
        span.attr("depth", depth);
        obs.incr("proxy.units", 1);
    }
    let result = unit_body(registry, unit, depth, obs, &mut span);
    if let Err(e) = &result {
        span.fail(e.to_string());
    }
    result
}

fn unit_body(
    registry: &Registry,
    unit: &ProxyUnit,
    depth: usize,
    obs: &Obs,
    span: &mut SpanGuard,
) -> Result<Json, ToolError> {
    if depth > MAX_PROXY_DEPTH {
        return Err(ToolError::Execution(format!(
            "proxy unit nesting exceeds {MAX_PROXY_DEPTH}"
        )));
    }
    // Gather producer jobs across all arguments so siblings parallelize.
    enum Slot {
        Literal(Json),
        One(usize),
        Many(Vec<usize>),
    }
    let mut jobs: Vec<&Producer> = Vec::new();
    let mut slots: Vec<(String, Slot)> = Vec::new();
    for (name, binding) in &unit.args {
        let slot = match binding {
            ArgBinding::Value(v) => Slot::Literal(v.clone()),
            ArgBinding::One(p) => {
                jobs.push(p);
                Slot::One(jobs.len() - 1)
            }
            ArgBinding::Many(ps) => {
                let mut ids = Vec::with_capacity(ps.len());
                for p in ps {
                    jobs.push(p);
                    ids.push(jobs.len() - 1);
                }
                Slot::Many(ids)
            }
        };
        slots.push((name.clone(), slot));
    }
    if span.enabled() {
        span.attr("producers", jobs.len() as u64);
    }
    // Run all producers, in parallel when there are several. Worker threads
    // have no thread-local parent span, so they adopt this unit's span
    // context to keep the exported tree (and its trace id) connected
    // across threads.
    let ctx = span.context();
    let results: Vec<Result<Json, ToolError>> = if jobs.len() <= 1 {
        jobs.iter()
            .map(|p| run_producer(registry, p, depth, obs))
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|p| {
                    scope.spawn(move || {
                        let _scope = obs::adopt_context(ctx);
                        run_producer(registry, p, depth, obs)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(ToolError::Execution("producer thread panicked".into()))
                    })
                })
                .collect()
        })
    };
    let mut outputs = Vec::with_capacity(results.len());
    for r in results {
        outputs.push(r?);
    }
    // Account for the data moving tool→tool without transiting the LLM —
    // the paper's F4 claim, here as a measured number.
    if span.enabled() {
        let bytes: usize = outputs.iter().map(|o| o.to_compact().len()).sum();
        let rows: usize = outputs.iter().map(json_row_count).sum();
        span.attr("bytes_in", bytes as u64);
        span.attr("rows_in", rows as u64);
        obs.incr("proxy.bytes_moved", bytes as u64);
        obs.incr("proxy.rows_moved", rows as u64);
    }
    // Assemble the consumer's arguments.
    let mut arg_pairs: Vec<(String, Json)> = Vec::with_capacity(slots.len());
    for (name, slot) in slots {
        let value = match slot {
            Slot::Literal(v) => v,
            Slot::One(i) => outputs[i].clone(),
            Slot::Many(ids) => Json::array(ids.into_iter().map(|i| outputs[i].clone())),
        };
        arg_pairs.push((name, value));
    }
    // Invoke the consumer; its output propagates upward.
    let out = registry.call(&unit.target_tool, &Json::object(arg_pairs))?;
    if span.enabled() {
        span.attr("rows_out", json_row_count(&out.value) as u64);
    }
    Ok(out.value)
}

fn run_producer(
    registry: &Registry,
    p: &Producer,
    depth: usize,
    obs: &Obs,
) -> Result<Json, ToolError> {
    let raw = match &p.source {
        Source::Tool { name, args } => registry.call(name, args)?.value,
        Source::Unit(unit) => execute_unit_observed(registry, unit, depth + 1, obs)?,
    };
    p.transform.apply(raw)
}

/// Build the `proxy` tool over a snapshot of the tool surface. The snapshot
/// should contain every tool proxy units may reference (database tools plus
/// any domain-specific MCP tools) — but not the proxy itself; nesting is
/// expressed with `unit`, not recursive proxy calls.
pub fn proxy_tool(surface: Registry) -> impl Tool {
    proxy_tool_observed(surface, Obs::disabled())
}

/// [`proxy_tool`] with an observability handle: every executed unit is
/// recorded as a `proxy:unit` span with rows/bytes-moved accounting.
pub fn proxy_tool_observed(surface: Registry, obs: Obs) -> impl Tool {
    let surface = Arc::new(surface);
    FnTool::new(
        "proxy",
        "Route data between tools without it passing through you. 'target_tool' is the \
         consumer; 'tool_args' maps each argument to {\"value\": …}, {\"tool\": …, \"args\": …, \
         \"transform\": f}, {\"unit\": …} for nesting, or {\"producers\": […]}. Transforms: \
         \"identity\" or a JSON pointer like \"/rows\". Always use this for bulk data flows.",
        Signature::open(vec![]),
        move |args: &Args| {
            let spec = Json::Object(args.clone());
            let unit = ProxyUnit::parse(&spec)?;
            let value = execute_unit_observed(&surface, &unit, 1, &obs)?;
            Ok(ToolOutput::value(value))
        },
    )
    .with_risk(Risk::Safe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;
    use toolproto::{ArgSpec, ArgType, FnTool, Signature};

    fn test_registry() -> Registry {
        let mut reg = Registry::new();
        reg.register_tool(FnTool::new(
            "numbers",
            "produce rows",
            Signature::new(vec![ArgSpec::required("n", ArgType::Integer, "count")]),
            |args: &Args| {
                let n = args["n"].as_i64().unwrap();
                let rows: Vec<Json> = (0..n).map(|i| Json::num(i as f64)).collect();
                Ok(ToolOutput::value(Json::object([(
                    "rows",
                    Json::array(rows),
                )])))
            },
        ));
        reg.register_tool(FnTool::new(
            "sum",
            "sum an array",
            Signature::open(vec![]),
            |args: &Args| {
                let data = args
                    .get("data")
                    .and_then(Json::as_array)
                    .ok_or_else(|| ToolError::Execution("need data array".into()))?;
                let total: f64 = data.iter().filter_map(Json::as_f64).sum();
                Ok(ToolOutput::value(Json::object([(
                    "total",
                    Json::num(total),
                )])))
            },
        ));
        reg.register_tool(FnTool::new(
            "pair_sum",
            "sum two scalars",
            Signature::open(vec![]),
            |args: &Args| {
                let a = args
                    .get("a")
                    .and_then(|v| v.get("total"))
                    .and_then(Json::as_f64);
                let b = args
                    .get("b")
                    .and_then(|v| v.get("total"))
                    .and_then(Json::as_f64);
                match (a, b) {
                    (Some(a), Some(b)) => Ok(ToolOutput::value(Json::object([(
                        "total",
                        Json::num(a + b),
                    )]))),
                    _ => Err(ToolError::Execution("need a.total and b.total".into())),
                }
            },
        ));
        reg
    }

    #[test]
    fn single_level_unit() {
        let reg = test_registry();
        let spec = Json::parse(
            r#"{"target_tool": "sum",
                "tool_args": {"data": {"tool": "numbers", "args": {"n": 5}, "transform": "/rows"}}}"#,
        )
        .unwrap();
        let unit = ProxyUnit::parse(&spec).unwrap();
        assert_eq!(unit.depth(), 1);
        let out = execute_unit(&reg, &unit, 1).unwrap();
        assert_eq!(out.get("total").and_then(Json::as_f64), Some(10.0));
    }

    #[test]
    fn nested_units_propagate_bottom_up() {
        let reg = test_registry();
        // pair_sum(a = sum(numbers(3)), b = sum(numbers(4)))
        let spec = Json::parse(
            r#"{"target_tool": "pair_sum", "tool_args": {
                "a": {"unit": {"target_tool": "sum", "tool_args": {
                      "data": {"tool": "numbers", "args": {"n": 3}, "transform": "/rows"}}}},
                "b": {"unit": {"target_tool": "sum", "tool_args": {
                      "data": {"tool": "numbers", "args": {"n": 4}, "transform": "/rows"}}}}
            }}"#,
        )
        .unwrap();
        let unit = ProxyUnit::parse(&spec).unwrap();
        assert_eq!(unit.depth(), 2);
        let out = execute_unit(&reg, &unit, 1).unwrap();
        // 0+1+2 = 3, 0+1+2+3 = 6.
        assert_eq!(out.get("total").and_then(Json::as_f64), Some(9.0));
    }

    #[test]
    fn producers_list_collects_outputs() {
        let reg = test_registry();
        let spec = Json::parse(
            r#"{"target_tool": "sum", "tool_args": {
                "data": {"producers": [
                    {"tool": "numbers", "args": {"n": 2}, "transform": "/rows/1"},
                    {"tool": "numbers", "args": {"n": 3}, "transform": "/rows/2"}
                ]}}}"#,
        )
        .unwrap();
        let unit = ProxyUnit::parse(&spec).unwrap();
        let out = execute_unit(&reg, &unit, 1).unwrap();
        // rows/1 of n=2 is 1; rows/2 of n=3 is 2 → sum 3.
        assert_eq!(out.get("total").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn parallel_producers_actually_overlap() {
        static CONCURRENT: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let mut reg = Registry::new();
        reg.register_tool(FnTool::new(
            "slow",
            "sleep then emit",
            Signature::open(vec![]),
            |_: &Args| {
                let now = CONCURRENT.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(50));
                CONCURRENT.fetch_sub(1, Ordering::SeqCst);
                Ok(ToolOutput::value(Json::object([("total", Json::num(1.0))])))
            },
        ));
        reg.register_tool(FnTool::new(
            "pair_sum",
            "sum",
            Signature::open(vec![]),
            |args: &Args| {
                let a = args["a"].get("total").and_then(Json::as_f64).unwrap();
                let b = args["b"].get("total").and_then(Json::as_f64).unwrap();
                Ok(ToolOutput::value(Json::object([(
                    "total",
                    Json::num(a + b),
                )])))
            },
        ));
        let spec = Json::parse(
            r#"{"target_tool": "pair_sum", "tool_args": {
                "a": {"tool": "slow"}, "b": {"tool": "slow"}}}"#,
        )
        .unwrap();
        let unit = ProxyUnit::parse(&spec).unwrap();
        let out = execute_unit(&reg, &unit, 1).unwrap();
        assert_eq!(out.get("total").and_then(Json::as_f64), Some(2.0));
        assert!(
            PEAK.load(Ordering::SeqCst) >= 2,
            "sibling producers should run concurrently"
        );
    }

    #[test]
    fn proxy_tool_end_to_end() {
        let surface = test_registry();
        let mut reg = Registry::new();
        reg.register_tool(proxy_tool(surface));
        let out = reg
            .call(
                "proxy",
                &Json::parse(
                    r#"{"target_tool": "sum",
                        "tool_args": {"data": {"tool": "numbers", "args": {"n": 4}, "transform": "/rows"}}}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(out.value.get("total").and_then(Json::as_f64), Some(6.0));
    }

    #[test]
    fn errors_propagate() {
        let reg = test_registry();
        // Unknown consumer.
        let unit =
            ProxyUnit::parse(&Json::parse(r#"{"target_tool": "nope", "tool_args": {}}"#).unwrap())
                .unwrap();
        assert!(matches!(
            execute_unit(&reg, &unit, 1),
            Err(ToolError::UnknownTool(_))
        ));
        // Bad transform pointer.
        let unit = ProxyUnit::parse(
            &Json::parse(
                r#"{"target_tool": "sum", "tool_args": {
                    "data": {"tool": "numbers", "args": {"n": 2}, "transform": "/missing"}}}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert!(execute_unit(&reg, &unit, 1).is_err());
        // Malformed unit specs.
        assert!(ProxyUnit::parse(&Json::parse(r#"{"tool_args": {}}"#).unwrap()).is_err());
        assert!(ProxyUnit::parse(
            &Json::parse(r#"{"target_tool": "sum", "tool_args": {"x": {"bogus": 1}}}"#).unwrap()
        )
        .is_err());
    }

    #[test]
    fn observed_unit_records_span_tree_and_data_volume() {
        let reg = test_registry();
        let obs = Obs::in_memory();
        // pair_sum(a = sum(numbers(3)), b = sum(numbers(4))) — nested units
        // run as parallel sibling producers on worker threads.
        let spec = Json::parse(
            r#"{"target_tool": "pair_sum", "tool_args": {
                "a": {"unit": {"target_tool": "sum", "tool_args": {
                      "data": {"tool": "numbers", "args": {"n": 3}, "transform": "/rows"}}}},
                "b": {"unit": {"target_tool": "sum", "tool_args": {
                      "data": {"tool": "numbers", "args": {"n": 4}, "transform": "/rows"}}}}
            }}"#,
        )
        .unwrap();
        let unit = ProxyUnit::parse(&spec).unwrap();
        let out = execute_unit_observed(&reg, &unit, 1, &obs).unwrap();
        assert_eq!(out.get("total").and_then(Json::as_f64), Some(9.0));

        let snap = obs.snapshot();
        obs::validate_tree(&snap.spans).unwrap();
        assert_eq!(snap.metrics.counter("proxy.units"), 3);
        // Inner units each feed /rows arrays (3 and 4 rows); the outer unit
        // moves two scalar objects (0 rows, but nonzero bytes).
        assert_eq!(snap.metrics.counter("proxy.rows_moved"), 7);
        assert!(snap.metrics.counter("proxy.bytes_moved") > 0);
        let units: Vec<_> = snap
            .spans
            .iter()
            .filter(|sp| sp.name == "proxy:unit")
            .collect();
        assert_eq!(units.len(), 3);
        let root = units
            .iter()
            .find(|sp| sp.attr("target_tool") == Some(&obs::AttrValue::from("pair_sum")))
            .expect("root unit span");
        assert!(root.parent.is_none());
        // Both inner unit spans, opened on worker threads, adopted the root
        // unit span as parent.
        for inner in units.iter().filter(|sp| sp.id != root.id) {
            assert_eq!(inner.parent, Some(root.id));
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let reg = test_registry();
        // Build a unit nested beyond the limit.
        let mut spec = r#"{"target_tool": "sum", "tool_args": {"data": {"tool": "numbers", "args": {"n": 1}, "transform": "/rows"}}}"#.to_string();
        for _ in 0..MAX_PROXY_DEPTH + 1 {
            spec = format!(
                r#"{{"target_tool": "sum", "tool_args": {{"data": {{"unit": {spec}, "transform": "identity"}}}}}}"#
            );
        }
        let unit = ProxyUnit::parse(&Json::parse(&spec).unwrap()).unwrap();
        let err = execute_unit(&reg, &unit, 1).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
    }
}
