//! F1 — context retrieval tools: `get_schema`, `get_object`, `get_value`.
//!
//! * `get_schema` adapts to database scale (paper §2.2): below the policy's
//!   threshold *n* it returns full object definitions; above it, names only,
//!   with details fetched per object via `get_object`.
//! * Outputs contain **only user-permitted objects** (policy ∩ privileges)
//!   and are **annotated with the user's privileges** per object — the
//!   mechanism that lets the LLM plan within its authorization boundary.
//! * `get_value(col, key, k)` returns the top-k stored values most relevant
//!   to a task key, grounding text predicates.

use crate::bridge::{value_to_json, BridgeContext};
use crate::similarity;
use minidb::TableSchema;
use sqlkit::ast::Action;
use std::sync::Arc;
use toolproto::{ArgSpec, ArgType, Args, FnTool, Json, Signature, Tool, ToolError, ToolOutput};

/// Objects visible to this context's user (policy-allowed ∩ privilege-held),
/// as `(name, is_view)` pairs.
fn visible_objects(ctx: &BridgeContext) -> Result<Vec<(String, bool)>, ToolError> {
    let privs = ctx
        .db
        .privileges_of(&ctx.user)
        .map_err(|e| ToolError::Execution(e.to_string()))?;
    let allowed = |name: &str| {
        ctx.policy.object_allowed(name) && (privs.superuser || !privs.actions_on(name).is_empty())
    };
    let mut out: Vec<(String, bool)> = ctx
        .db
        .table_names()
        .into_iter()
        .filter(|t| allowed(t))
        .map(|t| (t, false))
        .collect();
    out.extend(
        ctx.db
            .views()
            .into_iter()
            .filter(|(v, _)| allowed(v))
            .map(|(v, _)| (v, true)),
    );
    out.sort();
    Ok(out)
}

/// Render one view's schema entry with privilege annotations.
fn view_json(ctx: &BridgeContext, name: &str, columns: &[String]) -> Result<Json, ToolError> {
    let privs = ctx
        .db
        .privileges_of(&ctx.user)
        .map_err(|e| ToolError::Execution(e.to_string()))?;
    let actions = privs.actions_on(name);
    Ok(Json::object([
        ("name", Json::str(name)),
        ("type", Json::str("view")),
        (
            "columns",
            Json::array(
                columns
                    .iter()
                    .filter(|c| ctx.policy.column_allowed(name, c))
                    .map(|c| Json::object([("name", Json::str(c.clone()))])),
            ),
        ),
        (
            "privileges",
            Json::array(actions.iter().map(|a| Json::str(a.keyword()))),
        ),
    ]))
}

/// Render one table's schema with privilege annotations.
fn table_json(ctx: &BridgeContext, schema: &TableSchema) -> Result<Json, ToolError> {
    let privs = ctx
        .db
        .privileges_of(&ctx.user)
        .map_err(|e| ToolError::Execution(e.to_string()))?;
    let actions = privs.actions_on(&schema.name);
    // Policy-restricted columns are simply absent from the LLM's view.
    let columns = Json::array(
        schema
            .columns
            .iter()
            .filter(|c| ctx.policy.column_allowed(&schema.name, &c.name))
            .map(|c| {
                Json::object([
                    ("name", Json::str(c.name.clone())),
                    ("type", Json::str(c.ty.sql())),
                    ("nullable", Json::Bool(!c.not_null)),
                ])
            }),
    );
    let mut fields: Vec<(String, Json)> = vec![
        ("name".into(), Json::str(schema.name.clone())),
        ("type".into(), Json::str("table")),
        ("columns".into(), columns),
        (
            "privileges".into(),
            Json::array(actions.iter().map(|a| Json::str(a.keyword()))),
        ),
    ];
    if !schema.primary_key.is_empty() {
        fields.push((
            "primary_key".into(),
            Json::array(schema.primary_key.iter().map(|c| Json::str(c.clone()))),
        ));
    }
    if !schema.foreign_keys.is_empty() {
        fields.push((
            "foreign_keys".into(),
            Json::array(schema.foreign_keys.iter().map(|fk| {
                Json::object([
                    (
                        "columns",
                        Json::array(fk.columns.iter().map(|c| Json::str(c.clone()))),
                    ),
                    ("references", Json::str(fk.foreign_table.clone())),
                    (
                        "referenced_columns",
                        Json::array(fk.foreign_columns.iter().map(|c| Json::str(c.clone()))),
                    ),
                ])
            })),
        ));
    }
    Ok(Json::object(fields))
}

/// Build the `get_schema` tool.
pub fn get_schema_tool(ctx: Arc<BridgeContext>) -> impl Tool {
    FnTool::new(
        "get_schema",
        "Return the schema of every object you may access, annotated with your privileges. \
         Large databases return names only; use get_object for details.",
        Signature::new(vec![]),
        move |_: &Args| {
            let objects = visible_objects(&ctx)?;
            if objects.len() > ctx.policy.schema_threshold {
                // Hierarchical mode: names only.
                let names = Json::array(objects.iter().map(|(name, is_view)| {
                    Json::object([
                        ("name", Json::str(name.clone())),
                        ("type", Json::str(if *is_view { "view" } else { "table" })),
                    ])
                }));
                return Ok(ToolOutput::value(Json::object([
                    ("tables", names),
                    ("detail", Json::str("names_only")),
                ])));
            }
            let views: std::collections::BTreeMap<String, Vec<String>> =
                ctx.db.views().into_iter().collect();
            let mut rendered = Vec::with_capacity(objects.len());
            for (name, is_view) in &objects {
                if *is_view {
                    let columns = views.get(name).cloned().unwrap_or_default();
                    rendered.push(view_json(&ctx, name, &columns)?);
                } else {
                    let schema = ctx
                        .db
                        .table_schema(name)
                        .map_err(|e| ToolError::Execution(e.to_string()))?;
                    rendered.push(table_json(&ctx, &schema)?);
                }
            }
            Ok(ToolOutput::value(Json::object([
                ("tables", Json::array(rendered)),
                ("detail", Json::str("full")),
            ])))
        },
    )
}

/// Build the `get_object` tool.
pub fn get_object_tool(ctx: Arc<BridgeContext>) -> impl Tool {
    FnTool::new(
        "get_object",
        "Return one object's detailed definition (columns, keys, your privileges).",
        Signature::new(vec![ArgSpec::required(
            "name",
            ArgType::String,
            "object name as listed by get_schema",
        )]),
        move |args: &Args| {
            let name = args["name"].as_str().expect("validated");
            ctx.check_policy_object(name)?;
            let privs = ctx
                .db
                .privileges_of(&ctx.user)
                .map_err(|e| ToolError::Execution(e.to_string()))?;
            if !privs.superuser && privs.actions_on(name).is_empty() {
                return Err(ToolError::denied_with(
                    "privilege",
                    format!("no privileges on object \"{name}\""),
                    toolproto::DenialContext::default()
                        .with_object(name)
                        .with_tool("get_object_detail"),
                ));
            }
            if let Some((_, columns)) = ctx.db.views().into_iter().find(|(v, _)| v == name) {
                return Ok(ToolOutput::value(view_json(&ctx, name, &columns)?));
            }
            let schema = ctx
                .db
                .table_schema(name)
                .map_err(|e| ToolError::Execution(e.to_string()))?;
            Ok(ToolOutput::value(table_json(&ctx, &schema)?))
        },
    )
}

/// Build the `get_value` tool.
pub fn get_value_tool(ctx: Arc<BridgeContext>) -> impl Tool {
    FnTool::new(
        "get_value",
        "Return the top-k stored values of a column most relevant to a task key; use it to \
         ground text predicates against actual data.",
        Signature::new(vec![
            ArgSpec::required("table", ArgType::String, "table holding the column"),
            ArgSpec::required("column", ArgType::String, "column to search"),
            ArgSpec::required("key", ArgType::String, "task-specific key to match"),
            ArgSpec::optional("k", ArgType::Integer, "number of values", Json::num(5.0)),
        ]),
        move |args: &Args| {
            let table = args["table"].as_str().expect("validated");
            let column = args["column"].as_str().expect("validated");
            let key = args["key"].as_str().expect("validated");
            let k = args["k"].as_i64().unwrap_or(ctx.policy.exemplar_k as i64) as usize;
            ctx.check_policy_object(table)?;
            if !ctx.policy.column_allowed(table, column) {
                return Err(ctx.deny_column(
                    table,
                    column,
                    format!(
                        "column \"{table}.{column}\" is restricted by the user's security policy"
                    ),
                ));
            }
            ctx.check_privilege(Action::Select, table)?;
            // The distinct-scan behind `column_values` runs chunked-parallel
            // in the engine for large tables, so repeated grounding calls on
            // big columns stay cheap.
            let values = ctx
                .db
                .column_values(table, column)
                .map_err(crate::bridge::db_error_to_tool)?;
            // Rank text values semantically; numeric columns instead return
            // a bounded sample plus range statistics, which is what grounds
            // numeric predicates (thresholds, BETWEEN bounds).
            let texts: Vec<String> = values
                .iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect();
            if texts.is_empty() {
                let sample: Vec<Json> = values.iter().take(k).map(value_to_json).collect();
                let mut fields: Vec<(String, Json)> = vec![("values".into(), Json::array(sample))];
                // One pass over the distinct values for the range stats.
                let (mut min, mut max, mut any) = (f64::INFINITY, f64::NEG_INFINITY, false);
                for n in values.iter().filter_map(|v| v.as_f64()) {
                    min = min.min(n);
                    max = max.max(n);
                    any = true;
                }
                if any {
                    fields.push((
                        "stats".into(),
                        Json::object([
                            ("min", Json::num(min)),
                            ("max", Json::num(max)),
                            ("distinct", Json::num(values.len() as f64)),
                        ]),
                    ));
                }
                return Ok(ToolOutput::value(Json::object(fields)));
            }
            let out: Vec<Json> = similarity::top_k(key, &texts, k)
                .into_iter()
                .map(|(v, _)| Json::str(v))
                .collect();
            Ok(ToolOutput::value(Json::object([(
                "values",
                Json::array(out),
            )])))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SecurityPolicy;
    use minidb::Database;
    use toolproto::Registry;

    fn demo() -> Database {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql(
            "CREATE TABLE brand_a_sales (id INTEGER PRIMARY KEY, category TEXT, amount REAL)",
        )
        .unwrap();
        s.execute_sql("CREATE TABLE brand_b_sales (id INTEGER PRIMARY KEY, amount REAL)")
            .unwrap();
        s.execute_sql("CREATE TABLE salaries (id INTEGER PRIMARY KEY, pay REAL)")
            .unwrap();
        s.execute_sql(
            "INSERT INTO brand_a_sales VALUES (1, 'women''s wear', 10.0), (2, 'menswear', 5.0), \
             (3, 'kids', 2.0)",
        )
        .unwrap();
        db.create_user("manager", false).unwrap();
        db.grant_all("manager", "brand_a_sales").unwrap();
        db.grant("manager", Action::Select, "salaries").unwrap();
        db
    }

    fn registry_for(db: &Database, user: &str, policy: SecurityPolicy) -> Registry {
        let ctx = BridgeContext::new(db.clone(), user, policy).unwrap();
        let mut reg = Registry::new();
        reg.register_tool(get_schema_tool(Arc::clone(&ctx)));
        reg.register_tool(get_object_tool(Arc::clone(&ctx)));
        reg.register_tool(get_value_tool(ctx));
        reg
    }

    #[test]
    fn schema_hides_unauthorized_objects_and_annotates_privileges() {
        let db = demo();
        let reg = registry_for(&db, "manager", SecurityPolicy::default());
        let out = reg.call("get_schema", &Json::Null).unwrap();
        let tables = out.value.get("tables").and_then(Json::as_array).unwrap();
        let names: Vec<&str> = tables
            .iter()
            .filter_map(|t| t.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(names, vec!["brand_a_sales", "salaries"], "brand_b hidden");
        // Full privileges on brand_a_sales, select-only on salaries.
        let privs_of = |name: &str| -> Vec<String> {
            tables
                .iter()
                .find(|t| t.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|t| t.get("privileges"))
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .filter_map(Json::as_str)
                .map(str::to_owned)
                .collect()
        };
        assert!(privs_of("brand_a_sales").contains(&"insert".to_string()));
        assert_eq!(privs_of("salaries"), vec!["select"]);
    }

    #[test]
    fn policy_blacklist_hides_sensitive_tables() {
        let db = demo();
        let policy = SecurityPolicy::default().with_blacklist(["salaries"]);
        let reg = registry_for(&db, "manager", policy);
        let out = reg.call("get_schema", &Json::Null).unwrap();
        let names: Vec<&str> = out
            .value
            .get("tables")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(|t| t.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(names, vec!["brand_a_sales"]);
        // get_object on the blacklisted table is denied by policy.
        let err = reg
            .call(
                "get_object",
                &Json::object([("name", Json::str("salaries"))]),
            )
            .unwrap_err();
        assert!(matches!(err, ToolError::Denied { ref code, .. } if code == "policy"));
    }

    #[test]
    fn adaptive_schema_switches_to_names_only() {
        let db = demo();
        let policy = SecurityPolicy::default().with_schema_threshold(1);
        let reg = registry_for(&db, "admin", policy);
        let out = reg.call("get_schema", &Json::Null).unwrap();
        assert_eq!(
            out.value.get("detail").and_then(Json::as_str),
            Some("names_only")
        );
        let tables = out.value.get("tables").and_then(Json::as_array).unwrap();
        assert!(tables.iter().all(|t| t.get("columns").is_none()));
        // Details come from get_object.
        let out = reg
            .call(
                "get_object",
                &Json::object([("name", Json::str("brand_a_sales"))]),
            )
            .unwrap();
        assert!(out.value.get("columns").is_some());
        assert_eq!(
            out.value
                .get("primary_key")
                .and_then(|v| v.at(0))
                .and_then(Json::as_str),
            Some("id")
        );
    }

    #[test]
    fn views_enable_least_privilege_exposure() {
        // The classic pattern: hide the sensitive table, expose a view over
        // its harmless columns. The agent sees only the view.
        let db = demo();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE VIEW public_sales AS SELECT category, amount FROM brand_a_sales")
            .unwrap();
        db.create_user("guest", false).unwrap();
        db.grant("guest", Action::Select, "public_sales").unwrap();
        let reg = registry_for(&db, "guest", SecurityPolicy::default());
        let out = reg.call("get_schema", &Json::Null).unwrap();
        let tables = out.value.get("tables").and_then(Json::as_array).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(
            tables[0].get("name").and_then(Json::as_str),
            Some("public_sales")
        );
        assert_eq!(tables[0].get("type").and_then(Json::as_str), Some("view"));
        // get_object renders the view too.
        let out = reg
            .call(
                "get_object",
                &Json::object([("name", Json::str("public_sales"))]),
            )
            .unwrap();
        let cols: Vec<&str> = out
            .value
            .get("columns")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(|c| c.get("name").and_then(Json::as_str))
            .collect();
        // Columns keep the view's declaration order.
        assert_eq!(cols, vec!["category", "amount"]);
        // And the select tool works against it, while the base table stays
        // out of reach.
        let ctx = BridgeContext::new(db.clone(), "guest", SecurityPolicy::default()).unwrap();
        let mut exec = Registry::new();
        exec.register(std::sync::Arc::new(crate::sql_tools::action_tool(
            ctx,
            Action::Select,
        )));
        assert!(exec
            .call(
                "select",
                &Json::object([("sql", Json::str("SELECT COUNT(*) FROM public_sales"))])
            )
            .is_ok());
        assert!(exec
            .call(
                "select",
                &Json::object([("sql", Json::str("SELECT * FROM brand_a_sales"))])
            )
            .is_err());
    }

    #[test]
    fn get_value_ranks_relevant_exemplars() {
        let db = demo();
        let reg = registry_for(&db, "manager", SecurityPolicy::default());
        let out = reg
            .call(
                "get_value",
                &Json::object([
                    ("table", Json::str("brand_a_sales")),
                    ("column", Json::str("category")),
                    ("key", Json::str("women")),
                    ("k", Json::num(2.0)),
                ]),
            )
            .unwrap();
        let values = out.value.get("values").and_then(Json::as_array).unwrap();
        assert_eq!(values[0].as_str(), Some("women's wear"));
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn get_value_requires_select_privilege() {
        let db = demo();
        let reg = registry_for(&db, "manager", SecurityPolicy::default());
        let err = reg
            .call(
                "get_value",
                &Json::object([
                    ("table", Json::str("brand_b_sales")),
                    ("column", Json::str("amount")),
                    ("key", Json::str("x")),
                ]),
            )
            .unwrap_err();
        assert!(matches!(err, ToolError::Denied { .. }));
    }

    #[test]
    fn column_blacklist_masks_schema_and_exemplars() {
        let db = demo();
        let policy = SecurityPolicy::default().with_column_blacklist([("brand_a_sales", "amount")]);
        let reg = registry_for(&db, "manager", policy);
        let out = reg.call("get_schema", &Json::Null).unwrap();
        let tables = out.value.get("tables").and_then(Json::as_array).unwrap();
        let sales = tables
            .iter()
            .find(|t| t.get("name").and_then(Json::as_str) == Some("brand_a_sales"))
            .unwrap();
        let cols: Vec<&str> = sales
            .get("columns")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(|c| c.get("name").and_then(Json::as_str))
            .collect();
        assert!(!cols.contains(&"amount"), "masked column leaked: {cols:?}");
        assert!(cols.contains(&"category"));
        // Exemplar retrieval refuses the masked column.
        let err = reg
            .call(
                "get_value",
                &Json::object([
                    ("table", Json::str("brand_a_sales")),
                    ("column", Json::str("amount")),
                    ("key", Json::str("10")),
                ]),
            )
            .unwrap_err();
        assert!(matches!(err, ToolError::Denied { ref code, .. } if code == "policy"));
    }

    #[test]
    fn get_value_on_numeric_column_returns_sample() {
        let db = demo();
        let reg = registry_for(&db, "manager", SecurityPolicy::default());
        let out = reg
            .call(
                "get_value",
                &Json::object([
                    ("table", Json::str("brand_a_sales")),
                    ("column", Json::str("amount")),
                    ("key", Json::str("10")),
                    ("k", Json::num(2.0)),
                ]),
            )
            .unwrap();
        let values = out.value.get("values").and_then(Json::as_array).unwrap();
        assert_eq!(values.len(), 2);
        // Numeric columns additionally carry range statistics.
        let stats = out.value.get("stats").expect("stats for numeric column");
        assert_eq!(stats.get("min").and_then(Json::as_f64), Some(2.0));
        assert_eq!(stats.get("max").and_then(Json::as_f64), Some(10.0));
        assert_eq!(stats.get("distinct").and_then(Json::as_i64), Some(3));
    }
}
