//! Property-based tests of the ML substrate: normalization statistics,
//! split partitioning, regression recovery, and metric identities.

use mltools::{linreg, metrics, transform, Dataset};
use proptest::prelude::*;
use toolproto::Json;

fn rows_of_floats(data: &[Vec<f64>]) -> Vec<Json> {
    data.iter()
        .map(|r| Json::array(r.iter().map(|v| Json::num(*v))))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Z-score output has mean ≈ 0 and std ≈ 1 per (non-constant) column.
    #[test]
    fn zscore_standardizes(
        data in prop::collection::vec(
            prop::collection::vec(-1.0e3f64..1.0e3, 2..4), 3..40
        )
    ) {
        let width = data[0].len();
        let data: Vec<Vec<f64>> = data.into_iter().map(|mut r| {
            r.resize(width, 0.0);
            r
        }).collect();
        let rows = rows_of_floats(&data);
        let out = transform::normalize_rows(&rows, transform::NormKind::ZScore, None).unwrap();
        for col in 0..width {
            let vals: Vec<f64> = out
                .iter()
                .map(|r| r.at(col).and_then(Json::as_f64).unwrap())
                .collect();
            let n = vals.len() as f64;
            let mean = vals.iter().sum::<f64>() / n;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            // Constant columns pass through unchanged.
            let original: Vec<f64> = data.iter().map(|r| r[col]).collect();
            let orig_mean = original.iter().sum::<f64>() / n;
            let orig_var = original.iter().map(|v| (v - orig_mean).powi(2)).sum::<f64>() / n;
            if orig_var.sqrt() > 1e-9 {
                prop_assert!(mean.abs() < 1e-6, "col {col} mean {mean}");
                prop_assert!((var - 1.0).abs() < 1e-6, "col {col} var {var}");
            }
        }
    }

    /// Min-max output lies in [0, 1] and attains both bounds.
    #[test]
    fn minmax_hits_unit_interval(
        vals in prop::collection::vec(-1.0e4f64..1.0e4, 2..50)
    ) {
        let data: Vec<Vec<f64>> = vals.iter().map(|v| vec![*v]).collect();
        let rows = rows_of_floats(&data);
        let out = transform::normalize_rows(&rows, transform::NormKind::MinMax, None).unwrap();
        let spread = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread > 1e-9 {
            let outs: Vec<f64> = out
                .iter()
                .map(|r| r.at(0).and_then(Json::as_f64).unwrap())
                .collect();
            prop_assert!(outs.iter().all(|v| (-1e-9..=1.0 + 1e-9).contains(v)));
            prop_assert!(outs.iter().any(|v| *v < 1e-9), "min must map to 0");
            prop_assert!(outs.iter().any(|v| *v > 1.0 - 1e-9), "max must map to 1");
        }
    }

    /// A split is a partition: disjoint, exhaustive, correctly sized.
    #[test]
    fn split_partitions(
        n in 1usize..200,
        ratio in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let rows: Vec<Json> = (0..n).map(|i| Json::array([Json::num(i as f64)])).collect();
        let (train, test) = transform::train_test_split(&rows, ratio, seed).unwrap();
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert_eq!(test.len(), (n as f64 * ratio).round() as usize);
        let mut ids: Vec<i64> = train
            .iter()
            .chain(&test)
            .map(|r| r.at(0).and_then(Json::as_i64).unwrap())
            .collect();
        ids.sort_unstable();
        let expect: Vec<i64> = (0..n as i64).collect();
        prop_assert_eq!(ids, expect);
    }

    /// Linear regression recovers arbitrary linear functions exactly (up to
    /// conditioning).
    #[test]
    fn linreg_recovers_linear_functions(
        w0 in -100.0f64..100.0,
        w1 in -10.0f64..10.0,
        w2 in -10.0f64..10.0,
        n in 10usize..60,
    ) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64, ((i * 7) % 13) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| w0 + w1 * r[0] + w2 * r[1]).collect();
        let model = linreg::fit(&x, &y, 1e-9).unwrap();
        let preds = model.predict(&x);
        let rmse = metrics::rmse(&y, &preds);
        let scale = y.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(rmse <= scale * 1e-6, "rmse {rmse} vs scale {scale}");
    }

    /// Metric identities: RMSE ≥ MAE ≥ 0; R² = 1 iff exact.
    #[test]
    fn metric_identities(
        truth in prop::collection::vec(-1.0e3f64..1.0e3, 2..40),
        noise in prop::collection::vec(-10.0f64..10.0, 2..40),
    ) {
        let n = truth.len().min(noise.len());
        let truth = &truth[..n];
        let pred: Vec<f64> = truth.iter().zip(&noise[..n]).map(|(t, e)| t + e).collect();
        let rmse = metrics::rmse(truth, &pred);
        let mae = metrics::mae(truth, &pred);
        prop_assert!(rmse >= mae - 1e-9, "rmse {rmse} < mae {mae}");
        prop_assert!(mae >= 0.0);
        prop_assert_eq!(metrics::rmse(truth, truth), 0.0);
        let spread: f64 = {
            let mean = truth.iter().sum::<f64>() / n as f64;
            truth.iter().map(|t| (t - mean).powi(2)).sum()
        };
        if spread > 1e-9 {
            prop_assert!((metrics::r2(truth, truth) - 1.0).abs() < 1e-12);
        }
    }

    /// Encoding round trip: the training recipe reproduces identical feature
    /// vectors on the same rows and tolerates unseen categories.
    #[test]
    fn encoding_recipe_is_stable(
        labels in prop::collection::vec("[abc]", 4..30),
        unseen in prop::collection::vec("[xyz]", 1..5),
    ) {
        let rows: Vec<Json> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| Json::array([Json::str(l.clone()), Json::num(i as f64)]))
            .collect();
        let ds = Dataset::from_rows(&rows, 1).unwrap();
        let again = Dataset::encode_with(&rows, 1, &ds.encoding).unwrap();
        prop_assert_eq!(&again.x, &ds.x);
        prop_assert_eq!(&again.feature_names, &ds.feature_names);
        // Unseen categories encode to all-zero one-hot blocks of the same width.
        let unseen_rows: Vec<Json> = unseen
            .iter()
            .map(|l| Json::array([Json::str(l.clone()), Json::num(0.0)]))
            .collect();
        let enc = Dataset::encode_with(&unseen_rows, 1, &ds.encoding).unwrap();
        prop_assert_eq!(enc.width(), ds.width());
        for row in &enc.x {
            prop_assert!(row.iter().all(|v| *v == 0.0));
        }
    }
}
