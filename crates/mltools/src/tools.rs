//! `toolproto` wrappers: the domain-specific MCP-style tool server the NL2ML
//! benchmark plugs into agents (paper §3.4 equips agents with "extra tools
//! for data processing and machine learning model training and inference").
//!
//! Data flows between these tools as JSON row arrays — the same shape the
//! database `select` tool emits — so they compose with BridgeScope proxy
//! units out of the box.

use crate::dataset::{rows_of, Dataset, EncodingSpec, TextCol};
use crate::forest::{self, Forest, ForestParams, TreeNode};
use crate::linreg::{self, LinearModel};
use crate::metrics;
use crate::sync::Mutex;
use crate::transform::{normalize_rows, train_test_split, NormKind};
use crate::trend;
use std::collections::BTreeMap;
use std::sync::Arc;
use toolproto::{ArgSpec, ArgType, Args, FnTool, Json, Registry, Signature, ToolError, ToolOutput};

fn exec_err(e: impl std::fmt::Display) -> ToolError {
    ToolError::Execution(e.to_string())
}

/// Server-side store of trained models. Training tools return a compact
/// `model_ref` handle instead of dumping serialized trees into the caller's
/// context — the artifact pattern real MCP ML servers use. `predict`
/// resolves handles from the same store; full model JSON is still available
/// via `return_model: true` (and inline models are always accepted), so
/// models can also flow by value through proxy units when needed.
#[derive(Default)]
struct ModelStore {
    models: Mutex<BTreeMap<String, Json>>,
}

impl ModelStore {
    fn put(&self, model: Json) -> String {
        let mut models = self.models.lock();
        let id = format!("model-{}", models.len() + 1);
        models.insert(id.clone(), model);
        id
    }

    fn get(&self, id: &str) -> Option<Json> {
        self.models.lock().get(id).cloned()
    }
}

// ---------------------------------------------------------------------------
// Model (de)serialization
// ---------------------------------------------------------------------------

fn encoding_to_json(spec: &EncodingSpec) -> Json {
    Json::object([
        ("width", Json::num(spec.width as f64)),
        (
            "text_cols",
            Json::array(spec.text_cols.iter().map(|tc| {
                Json::object([
                    ("index", Json::num(tc.index as f64)),
                    (
                        "categories",
                        Json::array(tc.categories.iter().map(|c| Json::str(c.clone()))),
                    ),
                ])
            })),
        ),
    ])
}

fn encoding_from_json(value: &Json) -> Option<EncodingSpec> {
    let enc = value.get("encoding")?;
    let width = enc.get("width")?.as_i64()? as usize;
    let mut text_cols = Vec::new();
    for tc in enc.get("text_cols")?.as_array()? {
        text_cols.push(TextCol {
            index: tc.get("index")?.as_i64()? as usize,
            categories: tc
                .get("categories")?
                .as_array()?
                .iter()
                .filter_map(Json::as_str)
                .map(str::to_owned)
                .collect(),
        });
    }
    Some(EncodingSpec { width, text_cols })
}

fn linear_to_json(m: &LinearModel, ds: &Dataset) -> Json {
    Json::object([
        ("type", Json::str("linear_regression")),
        ("intercept", Json::num(m.intercept)),
        (
            "weights",
            Json::array(m.weights.iter().map(|w| Json::num(*w))),
        ),
        (
            "features",
            Json::array(ds.feature_names.iter().map(|f| Json::str(f.clone()))),
        ),
        ("encoding", encoding_to_json(&ds.encoding)),
    ])
}

fn tree_to_json(node: &TreeNode) -> Json {
    match node {
        TreeNode::Leaf(v) => Json::object([("leaf", Json::num(*v))]),
        TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        } => Json::object([
            ("feature", Json::num(*feature as f64)),
            ("threshold", Json::num(*threshold)),
            ("left", tree_to_json(left)),
            ("right", tree_to_json(right)),
        ]),
    }
}

fn tree_from_json(value: &Json) -> Result<TreeNode, ToolError> {
    if let Some(v) = value.get("leaf").and_then(Json::as_f64) {
        return Ok(TreeNode::Leaf(v));
    }
    let feature = value
        .get("feature")
        .and_then(Json::as_i64)
        .ok_or_else(|| exec_err("tree node needs 'leaf' or 'feature'"))? as usize;
    let threshold = value
        .get("threshold")
        .and_then(Json::as_f64)
        .ok_or_else(|| exec_err("tree split needs 'threshold'"))?;
    let left = tree_from_json(
        value
            .get("left")
            .ok_or_else(|| exec_err("tree split needs 'left'"))?,
    )?;
    let right = tree_from_json(
        value
            .get("right")
            .ok_or_else(|| exec_err("tree split needs 'right'"))?,
    )?;
    Ok(TreeNode::Split {
        feature,
        threshold,
        left: Box::new(left),
        right: Box::new(right),
    })
}

fn forest_to_json(f: &Forest, ds: &Dataset) -> Json {
    Json::object([
        ("type", Json::str("random_forest")),
        ("trees", Json::array(f.trees.iter().map(tree_to_json))),
        (
            "features",
            Json::array(ds.feature_names.iter().map(|f| Json::str(f.clone()))),
        ),
        ("encoding", encoding_to_json(&ds.encoding)),
    ])
}

/// A deserialized model of either kind.
enum Model {
    Linear(LinearModel),
    Forest(Forest),
}

impl Model {
    fn from_json(value: &Json) -> Result<(Model, usize), ToolError> {
        let n_features = value
            .get("features")
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len);
        match value.get("type").and_then(Json::as_str) {
            Some("linear_regression") => {
                let intercept = value
                    .get("intercept")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| exec_err("model needs 'intercept'"))?;
                let weights = value
                    .get("weights")
                    .and_then(Json::as_array)
                    .ok_or_else(|| exec_err("model needs 'weights'"))?
                    .iter()
                    .filter_map(Json::as_f64)
                    .collect();
                Ok((
                    Model::Linear(LinearModel { intercept, weights }),
                    n_features,
                ))
            }
            Some("random_forest") => {
                let trees = value
                    .get("trees")
                    .and_then(Json::as_array)
                    .ok_or_else(|| exec_err("model needs 'trees'"))?
                    .iter()
                    .map(tree_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((Model::Forest(Forest { trees }), n_features))
            }
            other => Err(exec_err(format!("unknown model type {other:?}"))),
        }
    }

    fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        match self {
            Model::Linear(m) => m.predict(x),
            Model::Forest(f) => f.predict(x),
        }
    }
}

// ---------------------------------------------------------------------------
// Tool construction
// ---------------------------------------------------------------------------

fn data_arg() -> ArgSpec {
    ArgSpec::required(
        "data",
        ArgType::Any,
        "rows as an array of arrays, or a {\"rows\": …} query result",
    )
}

fn wrap_rows(rows: Vec<Json>) -> ToolOutput {
    let n = rows.len();
    ToolOutput::with_rows(Json::object([("rows", Json::Array(rows))]), n)
}

/// Build the full ML/data-processing tool registry. Each registry instance
/// has its own model store.
pub fn ml_registry() -> Registry {
    let store = Arc::new(ModelStore::default());
    let mut reg = Registry::new();

    reg.register_tool(FnTool::new(
        "normalize_zscore",
        "Z-score normalize the numeric columns of a dataset (optionally excluding the target \
         column). Returns the transformed rows.",
        Signature::new(vec![
            data_arg(),
            ArgSpec::optional(
                "exclude",
                ArgType::Integer,
                "column index to leave untouched (e.g. the target)",
                Json::Null,
            ),
        ]),
        |args: &Args| {
            let rows = rows_of(&args["data"]).map_err(exec_err)?;
            let exclude = args
                .get("exclude")
                .and_then(Json::as_i64)
                .map(|i| i as usize);
            let out = normalize_rows(rows, NormKind::ZScore, exclude).map_err(exec_err)?;
            Ok(wrap_rows(out))
        },
    ));

    reg.register_tool(FnTool::new(
        "normalize_minmax",
        "Min-max normalize the numeric columns of a dataset into [0, 1]. Returns the \
         transformed rows.",
        Signature::new(vec![
            data_arg(),
            ArgSpec::optional(
                "exclude",
                ArgType::Integer,
                "column index to leave untouched",
                Json::Null,
            ),
        ]),
        |args: &Args| {
            let rows = rows_of(&args["data"]).map_err(exec_err)?;
            let exclude = args
                .get("exclude")
                .and_then(Json::as_i64)
                .map(|i| i as usize);
            let out = normalize_rows(rows, NormKind::MinMax, exclude).map_err(exec_err)?;
            Ok(wrap_rows(out))
        },
    ));

    reg.register_tool(FnTool::new(
        "train_test_split",
        "Split a dataset into train and test partitions. Returns {\"train\": …, \"test\": …}.",
        Signature::new(vec![
            data_arg(),
            ArgSpec::optional(
                "test_ratio",
                ArgType::Number,
                "test fraction",
                Json::num(0.2),
            ),
            ArgSpec::optional("seed", ArgType::Integer, "shuffle seed", Json::num(42.0)),
        ]),
        |args: &Args| {
            let rows = rows_of(&args["data"]).map_err(exec_err)?;
            let ratio = args["test_ratio"].as_f64().unwrap_or(0.2);
            let seed = args["seed"].as_i64().unwrap_or(42) as u64;
            let (train, test) = train_test_split(rows, ratio, seed).map_err(exec_err)?;
            let n = train.len() + test.len();
            Ok(ToolOutput::with_rows(
                Json::object([
                    ("train", Json::object([("rows", Json::Array(train))])),
                    ("test", Json::object([("rows", Json::Array(test))])),
                ]),
                n,
            ))
        },
    ));

    let train_store = Arc::clone(&store);
    reg.register_tool(FnTool::new(
        "train_linear_regression",
        "Train a linear regression model predicting the column at index 'target'. Returns a \
         model_ref handle plus training RMSE and R² (pass return_model: true for the full \
         serialized model).",
        Signature::new(vec![
            data_arg(),
            ArgSpec::required("target", ArgType::Integer, "target column index"),
            ArgSpec::optional(
                "return_model",
                ArgType::Bool,
                "include the serialized model in the output",
                Json::Bool(false),
            ),
        ]),
        move |args: &Args| {
            let rows = rows_of(&args["data"]).map_err(exec_err)?;
            let target = args["target"]
                .as_i64()
                .ok_or_else(|| exec_err("bad target"))? as usize;
            let ds = Dataset::from_rows(rows, target).map_err(exec_err)?;
            let model = linreg::fit(&ds.x, &ds.y, 1e-6).map_err(exec_err)?;
            let preds = model.predict(&ds.x);
            let serialized = linear_to_json(&model, &ds);
            let mut fields: Vec<(String, Json)> = vec![
                (
                    "model_ref".into(),
                    Json::str(train_store.put(serialized.clone())),
                ),
                ("model_type".into(), Json::str("linear_regression")),
                ("train_rmse".into(), Json::num(metrics::rmse(&ds.y, &preds))),
                ("train_r2".into(), Json::num(metrics::r2(&ds.y, &preds))),
                ("n_rows".into(), Json::num(ds.len() as f64)),
            ];
            if args.get("return_model").and_then(Json::as_bool) == Some(true) {
                fields.push(("model".into(), serialized));
            }
            // A model summary, not data: explicitly zero bulk rows back
            // through the caller's context.
            Ok(ToolOutput::with_rows(Json::object(fields), 0))
        },
    ));

    let train_store = Arc::clone(&store);
    reg.register_tool(FnTool::new(
        "train_random_forest",
        "Train a random-forest regressor predicting the column at index 'target'. Returns a \
         model_ref handle plus training RMSE and R² (pass return_model: true for the full \
         serialized model).",
        Signature::new(vec![
            data_arg(),
            ArgSpec::required("target", ArgType::Integer, "target column index"),
            ArgSpec::optional(
                "n_trees",
                ArgType::Integer,
                "ensemble size",
                Json::num(10.0),
            ),
            ArgSpec::optional(
                "max_depth",
                ArgType::Integer,
                "tree depth cap",
                Json::num(8.0),
            ),
            ArgSpec::optional("seed", ArgType::Integer, "bootstrap seed", Json::num(42.0)),
            ArgSpec::optional(
                "return_model",
                ArgType::Bool,
                "include the serialized model in the output",
                Json::Bool(false),
            ),
        ]),
        move |args: &Args| {
            let rows = rows_of(&args["data"]).map_err(exec_err)?;
            let target = args["target"]
                .as_i64()
                .ok_or_else(|| exec_err("bad target"))? as usize;
            let ds = Dataset::from_rows(rows, target).map_err(exec_err)?;
            let params = ForestParams {
                n_trees: args["n_trees"].as_i64().unwrap_or(10) as usize,
                max_depth: args["max_depth"].as_i64().unwrap_or(8) as usize,
                seed: args["seed"].as_i64().unwrap_or(42) as u64,
                ..ForestParams::default()
            };
            let model = forest::fit(&ds.x, &ds.y, params).map_err(exec_err)?;
            let preds = model.predict(&ds.x);
            let serialized = forest_to_json(&model, &ds);
            let mut fields: Vec<(String, Json)> = vec![
                (
                    "model_ref".into(),
                    Json::str(train_store.put(serialized.clone())),
                ),
                ("model_type".into(), Json::str("random_forest")),
                ("train_rmse".into(), Json::num(metrics::rmse(&ds.y, &preds))),
                ("train_r2".into(), Json::num(metrics::r2(&ds.y, &preds))),
                ("n_rows".into(), Json::num(ds.len() as f64)),
            ];
            if args.get("return_model").and_then(Json::as_bool) == Some(true) {
                fields.push(("model".into(), serialized));
            }
            // A model summary, not data: explicitly zero bulk rows back
            // through the caller's context.
            Ok(ToolOutput::with_rows(Json::object(fields), 0))
        },
    ));

    let predict_store = Arc::clone(&store);
    reg.register_tool(FnTool::new(
        "predict",
        "Run a trained model over a dataset. 'model' may be a train_* output (its model_ref is \
         resolved), a model_ref string, or an inline serialized model. With 'target', that \
         column is ground truth (excluded from features) and RMSE/R² are reported. Returns the \
         metrics plus a preview of the predictions.",
        Signature::new(vec![
            ArgSpec::required("model", ArgType::Any, "model_ref, train output, or model"),
            data_arg(),
            ArgSpec::optional(
                "target",
                ArgType::Integer,
                "ground-truth column",
                Json::Null,
            ),
        ]),
        move |args: &Args| {
            // Resolve the model: ref string, train output (model_ref or
            // inline model), or the serialized model itself.
            let resolve_ref = |id: &str| -> Result<Json, ToolError> {
                predict_store
                    .get(id)
                    .ok_or_else(|| exec_err(format!("unknown model_ref '{id}'")))
            };
            let owned_model: Json = match &args["model"] {
                Json::Str(id) => resolve_ref(id)?,
                obj => {
                    if let Some(inline) = obj.get("model") {
                        inline.clone()
                    } else if let Some(id) = obj.get("model_ref").and_then(Json::as_str) {
                        resolve_ref(id)?
                    } else {
                        obj.clone()
                    }
                }
            };
            let (model, n_features) = Model::from_json(&owned_model)?;
            let rows = rows_of(&args["data"]).map_err(exec_err)?;
            let target = args
                .get("target")
                .and_then(Json::as_i64)
                .map(|i| i as usize);
            let spec = encoding_from_json(&owned_model);
            let (x, truth): (Vec<Vec<f64>>, Option<Vec<f64>>) = match target {
                Some(t) => {
                    // Re-encode with the model's training-time recipe when
                    // available, so categorical domains line up.
                    let ds = match &spec {
                        Some(spec) => Dataset::encode_with(rows, t, spec).map_err(exec_err)?,
                        None => Dataset::from_rows(rows, t).map_err(exec_err)?,
                    };
                    if n_features != 0 && ds.width() != n_features {
                        return Err(exec_err(format!(
                            "model expects {n_features} features, data encodes to {}",
                            ds.width()
                        )));
                    }
                    (ds.x, Some(ds.y))
                }
                None => {
                    let mut x = Vec::with_capacity(rows.len());
                    for row in rows {
                        let cells = row
                            .as_array()
                            .ok_or_else(|| exec_err("rows must be arrays"))?;
                        x.push(cells.iter().map(|c| c.as_f64().unwrap_or(0.0)).collect());
                    }
                    (x, None)
                }
            };
            let preds = model.predict(&x);
            let mut fields: Vec<(String, Json)> = vec![
                (
                    // Preview only: full prediction vectors belong in
                    // tool-to-tool flows, not the caller's context.
                    "predictions".into(),
                    Json::array(preds.iter().take(20).map(|p| Json::num(*p))),
                ),
                ("n_rows".into(), Json::num(preds.len() as f64)),
            ];
            if let Some(truth) = truth {
                fields.push(("rmse".into(), Json::num(metrics::rmse(&truth, &preds))));
                fields.push(("r2".into(), Json::num(metrics::r2(&truth, &preds))));
            }
            // Only the preview rows transit the caller's context.
            Ok(ToolOutput::with_rows(
                Json::object(fields),
                preds.len().min(20),
            ))
        },
    ));

    reg.register_tool(FnTool::new(
        "trend_analyze",
        "Detect the trend (rising/falling/flat) of a sales series, optionally net of a refunds \
         series. Input rows may be [value] or [label, value]; the last numeric cell of each \
         row is used.",
        Signature::new(vec![
            ArgSpec::required("sales", ArgType::Any, "sales rows"),
            ArgSpec::optional("refunds", ArgType::Any, "refunds rows", Json::Null),
            ArgSpec::optional(
                "window",
                ArgType::Integer,
                "smoothing window",
                Json::num(5.0),
            ),
        ]),
        |args: &Args| {
            let sales = series_of(&args["sales"]).map_err(exec_err)?;
            let refunds = match args.get("refunds") {
                None | Some(Json::Null) => None,
                Some(v) => Some(series_of(v).map_err(exec_err)?),
            };
            let window = args["window"].as_i64().unwrap_or(5).max(1) as usize;
            let (verdict, slope) = trend::analyze(&sales, refunds.as_deref(), window);
            // A verdict, not data: zero bulk rows back through context.
            Ok(ToolOutput::with_rows(
                Json::object([
                    ("trend", Json::str(verdict.label())),
                    ("slope", Json::num(slope)),
                    ("n_points", Json::num(sales.len() as f64)),
                ]),
                0,
            ))
        },
    ));

    reg
}

/// Extract a numeric series: rows may be bare numbers or arrays whose last
/// numeric cell is the value.
fn series_of(value: &Json) -> Result<Vec<f64>, String> {
    let rows = rows_of(value)?;
    rows.iter()
        .map(|row| {
            if let Some(v) = row.as_f64() {
                return Ok(v);
            }
            row.as_array()
                .and_then(|cells| cells.iter().rev().find_map(Json::as_f64))
                .ok_or_else(|| "row has no numeric cell".to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_rows(n: usize) -> Json {
        // y = 10 + 3a - 2b, target at index 2.
        let rows: Vec<Json> = (0..n)
            .map(|i| {
                let a = i as f64;
                let b = (i % 5) as f64;
                Json::array([
                    Json::num(a),
                    Json::num(b),
                    Json::num(10.0 + 3.0 * a - 2.0 * b),
                ])
            })
            .collect();
        Json::Array(rows)
    }

    #[test]
    fn train_and_predict_linear() {
        let reg = ml_registry();
        let trained = reg
            .call(
                "train_linear_regression",
                &Json::object([("data", linear_rows(60)), ("target", Json::num(2.0))]),
            )
            .unwrap();
        let rmse = trained
            .value
            .get("train_rmse")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(rmse < 1e-3, "exact relation should fit, rmse={rmse}");
        // Predict on fresh data with ground truth.
        let out = reg
            .call(
                "predict",
                &Json::object([
                    ("model", trained.value.clone()),
                    ("data", linear_rows(20)),
                    ("target", Json::num(2.0)),
                ]),
            )
            .unwrap();
        assert!(out.value.get("rmse").and_then(Json::as_f64).unwrap() < 1e-3);
        assert_eq!(out.value.get("n_rows").and_then(Json::as_i64), Some(20));
    }

    #[test]
    fn forest_trains_on_categorical_data() {
        let reg = ml_registry();
        let rows: Vec<Json> = (0..120)
            .map(|i| {
                let cat = if i % 2 == 0 { "coastal" } else { "inland" };
                let base = if i % 2 == 0 { 400.0 } else { 150.0 };
                Json::array([
                    Json::num((i % 10) as f64),
                    Json::str(cat),
                    Json::num(base + (i % 10) as f64 * 5.0),
                ])
            })
            .collect();
        let out = reg
            .call(
                "train_random_forest",
                &Json::object([
                    ("data", Json::Array(rows)),
                    ("target", Json::num(2.0)),
                    ("n_trees", Json::num(12.0)),
                ]),
            )
            .unwrap();
        let r2 = out.value.get("train_r2").and_then(Json::as_f64).unwrap();
        assert!(r2 > 0.9, "forest should separate the categories, r2={r2}");
    }

    #[test]
    fn normalization_tools_chain() {
        let reg = ml_registry();
        let out = reg
            .call(
                "normalize_zscore",
                &Json::object([("data", linear_rows(10)), ("exclude", Json::num(2.0))]),
            )
            .unwrap();
        assert!(out.value.get("rows").is_some());
        // Chain into a split, query-result shape in.
        let out = reg
            .call(
                "train_test_split",
                &Json::object([("data", out.value), ("test_ratio", Json::num(0.3))]),
            )
            .unwrap();
        let train = out
            .value
            .pointer("/train/rows")
            .and_then(Json::as_array)
            .unwrap();
        let test = out
            .value
            .pointer("/test/rows")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(train.len() + test.len(), 10);
        assert_eq!(test.len(), 3);
    }

    #[test]
    fn trend_tool_detects_direction() {
        let reg = ml_registry();
        let sales: Vec<Json> = (0..20)
            .map(|i| {
                Json::array([
                    Json::str(format!("2026-01-{:02}", i + 1)),
                    Json::num(100.0 + 10.0 * i as f64),
                ])
            })
            .collect();
        let out = reg
            .call(
                "trend_analyze",
                &Json::object([("sales", Json::Array(sales))]),
            )
            .unwrap();
        assert_eq!(
            out.value.get("trend").and_then(Json::as_str),
            Some("rising")
        );
    }

    #[test]
    fn predict_rejects_feature_mismatch() {
        let reg = ml_registry();
        let trained = reg
            .call(
                "train_linear_regression",
                &Json::object([("data", linear_rows(30)), ("target", Json::num(2.0))]),
            )
            .unwrap();
        // Data with an extra column.
        let bad: Vec<Json> = (0..5)
            .map(|i| {
                Json::array([
                    Json::num(i as f64),
                    Json::num(0.0),
                    Json::num(0.0),
                    Json::num(0.0),
                ])
            })
            .collect();
        let err = reg
            .call(
                "predict",
                &Json::object([
                    ("model", trained.value),
                    ("data", Json::Array(bad)),
                    ("target", Json::num(3.0)),
                ]),
            )
            .unwrap_err();
        // The model's encoding recipe rejects rows of the wrong width
        // (either the width itself or the now-out-of-range target index).
        let msg = err.to_string();
        assert!(
            msg.contains("encoding expects") || msg.contains("out of range"),
            "{err}"
        );
    }

    #[test]
    fn predict_reencodes_shifted_categorical_domains() {
        // Train on data whose categorical domain is a *superset* of the
        // eval data's; widths must still line up via the stored recipe.
        let reg = ml_registry();
        let train: Vec<Json> = (0..60)
            .map(|i| {
                let cat = ["a", "b", "c"][i % 3];
                Json::array([
                    Json::num((i % 7) as f64),
                    Json::str(cat),
                    Json::num(i as f64),
                ])
            })
            .collect();
        let eval_rows: Vec<Json> = (0..10)
            .map(|i| Json::array([Json::num(1.0), Json::str("a"), Json::num(i as f64)]))
            .collect();
        let trained = reg
            .call(
                "train_linear_regression",
                &Json::object([("data", Json::Array(train)), ("target", Json::num(2.0))]),
            )
            .unwrap();
        let out = reg
            .call(
                "predict",
                &Json::object([
                    ("model", trained.value),
                    ("data", Json::Array(eval_rows)),
                    ("target", Json::num(2.0)),
                ]),
            )
            .unwrap();
        assert_eq!(out.value.get("n_rows").and_then(Json::as_i64), Some(10));
        assert!(out
            .value
            .get("rmse")
            .and_then(Json::as_f64)
            .unwrap()
            .is_finite());
    }

    #[test]
    fn predict_accepts_bare_model_ref_string() {
        let reg = ml_registry();
        let trained = reg
            .call(
                "train_linear_regression",
                &Json::object([("data", linear_rows(30)), ("target", Json::num(2.0))]),
            )
            .unwrap();
        let model_ref = trained.value.get("model_ref").unwrap().clone();
        assert!(trained.value.get("model").is_none(), "handle by default");
        let out = reg
            .call(
                "predict",
                &Json::object([
                    ("model", model_ref),
                    ("data", linear_rows(5)),
                    ("target", Json::num(2.0)),
                ]),
            )
            .unwrap();
        assert!(out.value.get("rmse").and_then(Json::as_f64).unwrap() < 1e-3);
        // Unknown handles error cleanly.
        let err = reg
            .call(
                "predict",
                &Json::object([("model", Json::str("model-999")), ("data", linear_rows(5))]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("model_ref"), "{err}");
    }

    #[test]
    fn predictions_are_previewed_not_dumped() {
        let reg = ml_registry();
        let trained = reg
            .call(
                "train_linear_regression",
                &Json::object([("data", linear_rows(60)), ("target", Json::num(2.0))]),
            )
            .unwrap();
        let out = reg
            .call(
                "predict",
                &Json::object([
                    ("model", trained.value),
                    ("data", linear_rows(50)),
                    ("target", Json::num(2.0)),
                ]),
            )
            .unwrap();
        assert_eq!(out.value.get("n_rows").and_then(Json::as_i64), Some(50));
        assert_eq!(
            out.value
                .get("predictions")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            20
        );
    }

    #[test]
    fn model_roundtrips_through_json() {
        let reg = ml_registry();
        let trained = reg
            .call(
                "train_random_forest",
                &Json::object([
                    ("data", linear_rows(50)),
                    ("target", Json::num(2.0)),
                    ("return_model", Json::Bool(true)),
                ]),
            )
            .unwrap();
        let model_json = trained.value.get("model").unwrap();
        let reparsed = Json::parse(&model_json.to_compact()).unwrap();
        let (model, _) = Model::from_json(&reparsed).unwrap();
        let preds = model.predict(&[vec![1.0, 1.0]]);
        assert_eq!(preds.len(), 1);
        assert!(preds[0].is_finite());
    }
}
