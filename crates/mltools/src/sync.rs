//! Non-poisoning mutex wrapper over [`std::sync::Mutex`].
//!
//! Replaces the former `parking_lot` dependency so the crate builds
//! `--offline`: acquisition recovers the inner state from a poisoned lock,
//! matching `parking_lot`'s behavior of never poisoning.

use std::sync::MutexGuard;

/// Mutual-exclusion lock with `parking_lot`-style acquisition.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}
