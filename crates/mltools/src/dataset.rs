//! Tabular datasets exchanged between ML tools.
//!
//! Tools accept data as JSON row arrays — exactly the shape the database
//! `select` tool produces — with mixed numeric and categorical (string)
//! cells. [`Dataset::from_rows`] splits off a numeric target column and
//! one-hot encodes categorical features deterministically.

use std::collections::BTreeSet;
use toolproto::Json;

/// One categorical column's encoding: its raw index and the category list
/// (sorted; one one-hot feature per category, in order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextCol {
    /// Index into the raw rows.
    pub index: usize,
    /// Sorted category values.
    pub categories: Vec<String>,
}

/// The feature-encoding recipe derived at training time. Models carry it so
/// prediction re-encodes new data identically — even when the new data's
/// category domain differs (unseen categories encode to all-zeros).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EncodingSpec {
    /// Raw row width the recipe expects (including the target column).
    pub width: usize,
    /// Categorical columns and their domains.
    pub text_cols: Vec<TextCol>,
}

/// A fully numeric feature matrix plus target vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature matrix, row-major.
    pub x: Vec<Vec<f64>>,
    /// Target values, parallel to `x`.
    pub y: Vec<f64>,
    /// Feature names after encoding (one-hot columns are `col=value`).
    pub feature_names: Vec<String>,
    /// The encoding recipe used.
    pub encoding: EncodingSpec,
}

impl Dataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of features.
    pub fn width(&self) -> usize {
        self.feature_names.len()
    }

    /// Build from JSON rows. `target` is a column index into the raw rows;
    /// it must be numeric in every row. String feature columns are one-hot
    /// encoded (categories sorted for determinism); numeric cells pass
    /// through; NULLs become 0.0 (numeric) or their own `col=NULL` category.
    pub fn from_rows(rows: &[Json], target: usize) -> Result<Dataset, String> {
        if rows.is_empty() {
            return Err("dataset is empty".into());
        }
        let width = rows[0]
            .as_array()
            .ok_or_else(|| "rows must be arrays".to_string())?
            .len();
        if target >= width {
            return Err(format!(
                "target index {target} out of range for {width}-column rows"
            ));
        }
        // Determine column kinds and categorical domains.
        let mut is_text = vec![false; width];
        let mut domains: Vec<BTreeSet<String>> = vec![BTreeSet::new(); width];
        for row in rows {
            let cells = row
                .as_array()
                .ok_or_else(|| "rows must be arrays".to_string())?;
            if cells.len() != width {
                return Err("ragged rows".into());
            }
            for (i, cell) in cells.iter().enumerate() {
                match cell {
                    Json::Str(s) => {
                        is_text[i] = true;
                        domains[i].insert(s.clone());
                    }
                    Json::Null if is_text[i] => {
                        domains[i].insert("NULL".into());
                    }
                    _ => {}
                }
            }
        }
        if is_text[target] {
            return Err("target column must be numeric".into());
        }
        let spec = EncodingSpec {
            width,
            text_cols: (0..width)
                .filter(|&i| is_text[i] && i != target)
                .map(|i| TextCol {
                    index: i,
                    categories: domains[i].iter().cloned().collect(),
                })
                .collect(),
        };
        Self::encode_with(rows, target, &spec)
    }

    /// Encode rows with a fixed recipe (training-time spec). Categories not
    /// in the spec encode to all-zeros; this keeps prediction-time feature
    /// widths identical to training even on shifted data.
    pub fn encode_with(
        rows: &[Json],
        target: usize,
        spec: &EncodingSpec,
    ) -> Result<Dataset, String> {
        if target >= spec.width {
            return Err(format!(
                "target index {target} out of range for {}-column encoding",
                spec.width
            ));
        }
        let text_of = |i: usize| spec.text_cols.iter().find(|t| t.index == i);
        // Feature names.
        let mut feature_names = Vec::new();
        for i in 0..spec.width {
            if i == target {
                continue;
            }
            match text_of(i) {
                Some(tc) => {
                    for v in &tc.categories {
                        feature_names.push(format!("c{i}={v}"));
                    }
                }
                None => feature_names.push(format!("c{i}")),
            }
        }
        // Encode rows.
        let mut x = Vec::with_capacity(rows.len());
        let mut y = Vec::with_capacity(rows.len());
        for row in rows {
            let cells = row
                .as_array()
                .ok_or_else(|| "rows must be arrays".to_string())?;
            if cells.len() != spec.width {
                return Err(format!(
                    "row has {} cells, encoding expects {}",
                    cells.len(),
                    spec.width
                ));
            }
            let ty = cells[target]
                .as_f64()
                .or(if cells[target].is_null() {
                    Some(0.0)
                } else {
                    None
                })
                .ok_or_else(|| "non-numeric target cell".to_string())?;
            y.push(ty);
            let mut feats = Vec::with_capacity(feature_names.len());
            for (i, cell) in cells.iter().enumerate() {
                if i == target {
                    continue;
                }
                match text_of(i) {
                    Some(tc) => {
                        let label = match cell {
                            Json::Str(s) => s.clone(),
                            Json::Null => "NULL".into(),
                            other => other.to_compact(),
                        };
                        for v in &tc.categories {
                            feats.push(if *v == label { 1.0 } else { 0.0 });
                        }
                    }
                    None => feats.push(cell.as_f64().unwrap_or(0.0)),
                }
            }
            x.push(feats);
        }
        Ok(Dataset {
            x,
            y,
            feature_names,
            encoding: spec.clone(),
        })
    }
}

/// Extract the row array from a tool argument that may be either a bare
/// array or a `{"rows": …}` query result.
pub fn rows_of(value: &Json) -> Result<&[Json], String> {
    if let Some(rows) = value.as_array() {
        return Ok(rows);
    }
    value
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| "expected an array of rows or a {\"rows\": …} object".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Json> {
        vec![
            Json::parse(r#"[1.0, "a", 10]"#).unwrap(),
            Json::parse(r#"[2.0, "b", 20]"#).unwrap(),
            Json::parse(r#"[3.0, "a", 30]"#).unwrap(),
        ]
    }

    #[test]
    fn encodes_one_hot_and_splits_target() {
        let d = Dataset::from_rows(&rows(), 2).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.feature_names, vec!["c0", "c1=a", "c1=b"]);
        assert_eq!(d.x[0], vec![1.0, 1.0, 0.0]);
        assert_eq!(d.x[1], vec![2.0, 0.0, 1.0]);
        assert_eq!(d.y, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Dataset::from_rows(&[], 0).is_err());
        assert!(Dataset::from_rows(&rows(), 9).is_err());
        assert!(Dataset::from_rows(&rows(), 1).is_err(), "text target");
        let ragged = vec![Json::parse("[1, 2]").unwrap(), Json::parse("[1]").unwrap()];
        assert!(Dataset::from_rows(&ragged, 0).is_err());
    }

    #[test]
    fn null_numeric_cells_become_zero() {
        let rows = vec![
            Json::parse("[null, 5]").unwrap(),
            Json::parse("[2, 6]").unwrap(),
        ];
        let d = Dataset::from_rows(&rows, 1).unwrap();
        assert_eq!(d.x[0][0], 0.0);
    }

    #[test]
    fn rows_of_accepts_both_shapes() {
        let bare = Json::parse("[[1], [2]]").unwrap();
        assert_eq!(rows_of(&bare).unwrap().len(), 2);
        let wrapped = Json::parse(r#"{"rows": [[1]]}"#).unwrap();
        assert_eq!(rows_of(&wrapped).unwrap().len(), 1);
        assert!(rows_of(&Json::num(3.0)).is_err());
    }
}
