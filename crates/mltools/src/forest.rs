//! Random-forest regression: CART trees over bootstrap samples with feature
//! bagging.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A regression tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// Leaf prediction.
    Leaf(f64),
    /// Internal split: `feature <= threshold` goes left.
    Split {
        /// Feature index.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Left subtree (≤).
        left: Box<TreeNode>,
        /// Right subtree (>).
        right: Box<TreeNode>,
    },
}

impl TreeNode {
    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        match self {
            TreeNode::Leaf(v) => *v,
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                    left.predict_row(row)
                } else {
                    right.predict_row(row)
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn size(&self) -> usize {
        match self {
            TreeNode::Leaf(_) => 1,
            TreeNode::Split { left, right, .. } => 1 + left.size() + right.size(),
        }
    }
}

/// Hyperparameters for forest training.
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 10,
            max_depth: 8,
            min_samples_split: 4,
            seed: 42,
        }
    }
}

/// A trained forest.
#[derive(Debug, Clone, PartialEq)]
pub struct Forest {
    /// The ensemble.
    pub trees: Vec<TreeNode>,
}

impl Forest {
    /// Predict one row (mean over trees).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predict a matrix.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_row(r)).collect()
    }
}

/// Train a forest.
pub fn fit(x: &[Vec<f64>], y: &[f64], params: ForestParams) -> Result<Forest, String> {
    if x.is_empty() || x.len() != y.len() {
        return Err("empty or mismatched training data".into());
    }
    let n = x.len();
    let d = x[0].len();
    let mut rng = SmallRng::seed_from_u64(params.seed);
    // Feature bag size: d/3, at least 1 (regression heuristic).
    let bag = (d / 3).max(1);
    let mut trees = Vec::with_capacity(params.n_trees);
    for _ in 0..params.n_trees {
        // Bootstrap sample.
        let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let tree = build_tree(x, y, &indices, 0, bag, &params, &mut rng);
        trees.push(tree);
    }
    Ok(Forest { trees })
}

fn mean(y: &[f64], idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
}

fn sse(y: &[f64], idx: &[usize]) -> f64 {
    let m = mean(y, idx);
    idx.iter().map(|&i| (y[i] - m).powi(2)).sum()
}

fn build_tree(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    depth: usize,
    bag: usize,
    params: &ForestParams,
    rng: &mut SmallRng,
) -> TreeNode {
    if depth >= params.max_depth || idx.len() < params.min_samples_split {
        return TreeNode::Leaf(mean(y, idx));
    }
    let d = x[0].len();
    // Sample candidate features without replacement.
    let mut features: Vec<usize> = (0..d).collect();
    for i in 0..bag.min(d) {
        let j = rng.gen_range(i..d);
        features.swap(i, j);
    }
    features.truncate(bag.min(d));

    let parent_sse = sse(y, idx);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, total_sse)
    for &f in &features {
        // Candidate thresholds: midpoints of sorted distinct values
        // (subsampled for speed on large nodes).
        let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        let step = (vals.len() / 16).max(1);
        for w in vals.windows(2).step_by(step) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (left, right): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| x[i][f] <= threshold);
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let total = sse(y, &left) + sse(y, &right);
            if best.as_ref().is_none_or(|(_, _, b)| total < *b) {
                best = Some((f, threshold, total));
            }
        }
    }
    match best {
        Some((feature, threshold, total)) if total < parent_sse - 1e-12 => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| x[i][feature] <= threshold);
            TreeNode::Split {
                feature,
                threshold,
                left: Box::new(build_tree(x, y, &left_idx, depth + 1, bag, params, rng)),
                right: Box::new(build_tree(x, y, &right_idx, depth + 1, bag, params, rng)),
            }
        }
        _ => TreeNode::Leaf(mean(y, idx)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn synthetic(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(1);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
            .collect();
        // Non-linear target: step + interaction.
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 5.0 { 50.0 } else { 10.0 } + r[0] * r[1] * 0.5)
            .collect();
        (x, y)
    }

    #[test]
    fn learns_nonlinear_structure() {
        let (x, y) = synthetic(400);
        let forest = fit(&x, &y, ForestParams::default()).unwrap();
        let preds = forest.predict(&x);
        let r2 = metrics::r2(&y, &preds);
        assert!(r2 > 0.85, "forest should fit the step function, r2={r2}");
    }

    #[test]
    fn forest_beats_single_shallow_tree() {
        let (x, y) = synthetic(400);
        let one = fit(
            &x,
            &y,
            ForestParams {
                n_trees: 1,
                max_depth: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let many = fit(
            &x,
            &y,
            ForestParams {
                n_trees: 20,
                max_depth: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let r2_one = metrics::r2(&y, &one.predict(&x));
        let r2_many = metrics::r2(&y, &many.predict(&x));
        assert!(r2_many > r2_one, "{r2_many} vs {r2_one}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = synthetic(100);
        let a = fit(&x, &y, ForestParams::default()).unwrap();
        let b = fit(&x, &y, ForestParams::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn constant_target_yields_leaves() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 20];
        let forest = fit(&x, &y, ForestParams::default()).unwrap();
        assert!((forest.predict_row(&[3.0]) - 7.0).abs() < 1e-9);
        assert!(forest.trees.iter().all(|t| t.size() == 1));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(fit(&[], &[], ForestParams::default()).is_err());
    }
}
