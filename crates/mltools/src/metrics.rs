//! Regression quality metrics.

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    if truth.is_empty() || truth.len() != pred.len() {
        return f64::NAN;
    }
    let mse = truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).powi(2))
        .sum::<f64>()
        / truth.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    if truth.is_empty() || truth.len() != pred.len() {
        return f64::NAN;
    }
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Coefficient of determination R². A constant-truth vector yields NAN.
pub fn r2(truth: &[f64], pred: &[f64]) -> f64 {
    if truth.is_empty() || truth.len() != pred.len() {
        return f64::NAN;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p).powi(2)).sum();
    if ss_tot == 0.0 {
        return f64::NAN;
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn known_values() {
        let t = vec![0.0, 0.0];
        let p = vec![3.0, 4.0];
        assert!((rmse(&t, &p) - (12.5f64).sqrt()).abs() < 1e-12);
        assert!((mae(&t, &p) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let t = vec![1.0, 2.0, 3.0];
        let p = vec![2.0, 2.0, 2.0];
        assert!(r2(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(rmse(&[], &[]).is_nan());
        assert!(rmse(&[1.0], &[]).is_nan());
        assert!(r2(&[5.0, 5.0], &[5.0, 5.0]).is_nan());
    }
}
