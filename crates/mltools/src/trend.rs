//! Trend analysis for the paper's chain-store scenario: given sales (and
//! optionally refunds) series, detect the recent trend via a moving average
//! and an OLS slope over the smoothed net series.

/// Detected trend direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trend {
    /// Slope significantly positive.
    Rising,
    /// Slope significantly negative.
    Falling,
    /// No significant slope.
    Flat,
}

impl Trend {
    /// Lower-case label for tool output.
    pub fn label(&self) -> &'static str {
        match self {
            Trend::Rising => "rising",
            Trend::Falling => "falling",
            Trend::Flat => "flat",
        }
    }
}

/// Centered-window moving average (window clamped at the edges).
pub fn moving_average(series: &[f64], window: usize) -> Vec<f64> {
    if series.is_empty() || window == 0 {
        return series.to_vec();
    }
    let half = window / 2;
    (0..series.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(series.len());
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// OLS slope of `series` against its index.
pub fn ols_slope(series: &[f64]) -> f64 {
    let n = series.len();
    if n < 2 {
        return 0.0;
    }
    let xm = (n - 1) as f64 / 2.0;
    let ym = series.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, y) in series.iter().enumerate() {
        let dx = i as f64 - xm;
        num += dx * (y - ym);
        den += dx * dx;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Analyze net sales (sales minus optional refunds): smooth, fit a slope,
/// classify. `relative_threshold` scales with the series magnitude so the
/// verdict is unit-free.
pub fn analyze(sales: &[f64], refunds: Option<&[f64]>, window: usize) -> (Trend, f64) {
    let net: Vec<f64> = match refunds {
        Some(r) => sales
            .iter()
            .enumerate()
            .map(|(i, s)| s - r.get(i).copied().unwrap_or(0.0))
            .collect(),
        None => sales.to_vec(),
    };
    let smoothed = moving_average(&net, window);
    let slope = ols_slope(&smoothed);
    let scale = smoothed
        .iter()
        .map(|v| v.abs())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let relative = slope / scale;
    let trend = if relative > 0.01 {
        Trend::Rising
    } else if relative < -0.01 {
        Trend::Falling
    } else {
        Trend::Flat
    };
    (trend, slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rising_series_detected() {
        let sales: Vec<f64> = (0..30).map(|i| 100.0 + 5.0 * i as f64).collect();
        let (trend, slope) = analyze(&sales, None, 5);
        assert_eq!(trend, Trend::Rising);
        assert!(slope > 4.0);
    }

    #[test]
    fn falling_series_detected() {
        let sales: Vec<f64> = (0..30).map(|i| 500.0 - 10.0 * i as f64).collect();
        let (trend, _) = analyze(&sales, None, 5);
        assert_eq!(trend, Trend::Falling);
    }

    #[test]
    fn flat_noisy_series_detected() {
        let sales: Vec<f64> = (0..30)
            .map(|i| 100.0 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let (trend, _) = analyze(&sales, None, 5);
        assert_eq!(trend, Trend::Flat);
    }

    #[test]
    fn refunds_flip_the_verdict() {
        // Sales rise, but refunds rise twice as fast → net falls.
        let sales: Vec<f64> = (0..30).map(|i| 100.0 + 5.0 * i as f64).collect();
        let refunds: Vec<f64> = (0..30).map(|i| 10.0 * i as f64).collect();
        let (trend, _) = analyze(&sales, Some(&refunds), 5);
        assert_eq!(trend, Trend::Falling);
    }

    #[test]
    fn moving_average_smooths() {
        let s = vec![0.0, 10.0, 0.0, 10.0, 0.0];
        let m = moving_average(&s, 3);
        assert_eq!(m.len(), s.len());
        assert!(m[2] > 0.0 && m[2] < 10.0);
    }

    #[test]
    fn slope_edge_cases() {
        assert_eq!(ols_slope(&[]), 0.0);
        assert_eq!(ols_slope(&[5.0]), 0.0);
        assert!((ols_slope(&[0.0, 1.0, 2.0]) - 1.0).abs() < 1e-12);
    }
}
