//! Data-processing primitives: normalization and train/test splitting.
//!
//! These operate on raw JSON rows (the wire format between tools) so that
//! categorical columns pass through untouched and the output can feed any
//! downstream tool.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use toolproto::Json;

/// Which normalization to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormKind {
    /// (x − mean) / std, degenerate columns untouched.
    ZScore,
    /// (x − min) / (max − min), degenerate columns untouched.
    MinMax,
}

/// Normalize the numeric columns of JSON rows, skipping the column at
/// `exclude` (typically the target) when given. Non-numeric cells pass
/// through unchanged.
pub fn normalize_rows(
    rows: &[Json],
    kind: NormKind,
    exclude: Option<usize>,
) -> Result<Vec<Json>, String> {
    if rows.is_empty() {
        return Ok(Vec::new());
    }
    let width = rows[0]
        .as_array()
        .ok_or_else(|| "rows must be arrays".to_string())?
        .len();
    // Column statistics over numeric cells.
    let mut count = vec![0usize; width];
    let mut sum = vec![0.0f64; width];
    let mut sumsq = vec![0.0f64; width];
    let mut min = vec![f64::INFINITY; width];
    let mut max = vec![f64::NEG_INFINITY; width];
    for row in rows {
        let cells = row
            .as_array()
            .ok_or_else(|| "rows must be arrays".to_string())?;
        if cells.len() != width {
            return Err("ragged rows".into());
        }
        for (i, cell) in cells.iter().enumerate() {
            if let Some(v) = cell.as_f64() {
                count[i] += 1;
                sum[i] += v;
                sumsq[i] += v * v;
                min[i] = min[i].min(v);
                max[i] = max[i].max(v);
            }
        }
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let cells = row.as_array().expect("checked");
        let mut new_cells = Vec::with_capacity(width);
        for (i, cell) in cells.iter().enumerate() {
            let keep = exclude == Some(i) || count[i] == 0;
            match cell.as_f64() {
                Some(v) if !keep => {
                    let transformed = match kind {
                        NormKind::ZScore => {
                            let mean = sum[i] / count[i] as f64;
                            let var = (sumsq[i] / count[i] as f64 - mean * mean).max(0.0);
                            let std = var.sqrt();
                            if std < 1e-12 {
                                v
                            } else {
                                (v - mean) / std
                            }
                        }
                        NormKind::MinMax => {
                            let range = max[i] - min[i];
                            if range < 1e-12 {
                                v
                            } else {
                                (v - min[i]) / range
                            }
                        }
                    };
                    new_cells.push(Json::num(transformed));
                }
                _ => new_cells.push(cell.clone()),
            }
        }
        out.push(Json::Array(new_cells));
    }
    Ok(out)
}

/// Deterministic train/test split of JSON rows.
pub fn train_test_split(
    rows: &[Json],
    test_ratio: f64,
    seed: u64,
) -> Result<(Vec<Json>, Vec<Json>), String> {
    if !(0.0..1.0).contains(&test_ratio) {
        return Err(format!("test_ratio {test_ratio} must be in [0, 1)"));
    }
    let mut order: Vec<usize> = (0..rows.len()).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Fisher-Yates shuffle.
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let test_n = (rows.len() as f64 * test_ratio).round() as usize;
    let (test_idx, train_idx) = order.split_at(test_n.min(rows.len()));
    let pick = |idx: &[usize]| -> Vec<Json> {
        let mut sorted = idx.to_vec();
        sorted.sort_unstable();
        sorted.into_iter().map(|i| rows[i].clone()).collect()
    };
    Ok((pick(train_idx), pick(test_idx)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Json> {
        vec![
            Json::parse(r#"[0.0, "a", 100]"#).unwrap(),
            Json::parse(r#"[10.0, "b", 200]"#).unwrap(),
        ]
    }

    #[test]
    fn zscore_normalizes_numeric_columns() {
        let out = normalize_rows(&rows(), NormKind::ZScore, Some(2)).unwrap();
        // Column 0: mean 5, std 5 → values ±1.
        assert_eq!(out[0].at(0).and_then(Json::as_f64), Some(-1.0));
        assert_eq!(out[1].at(0).and_then(Json::as_f64), Some(1.0));
        // Strings untouched; excluded column untouched.
        assert_eq!(out[0].at(1).and_then(Json::as_str), Some("a"));
        assert_eq!(out[0].at(2).and_then(Json::as_f64), Some(100.0));
    }

    #[test]
    fn minmax_normalizes_to_unit_interval() {
        let out = normalize_rows(&rows(), NormKind::MinMax, None).unwrap();
        assert_eq!(out[0].at(0).and_then(Json::as_f64), Some(0.0));
        assert_eq!(out[1].at(0).and_then(Json::as_f64), Some(1.0));
        assert_eq!(out[1].at(2).and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn constant_columns_pass_through() {
        let rows = vec![Json::parse("[5]").unwrap(), Json::parse("[5]").unwrap()];
        let out = normalize_rows(&rows, NormKind::ZScore, None).unwrap();
        assert_eq!(out[0].at(0).and_then(Json::as_f64), Some(5.0));
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let rows: Vec<Json> = (0..100)
            .map(|i| Json::parse(&format!("[{i}]")).unwrap())
            .collect();
        let (train_a, test_a) = train_test_split(&rows, 0.2, 7).unwrap();
        let (train_b, test_b) = train_test_split(&rows, 0.2, 7).unwrap();
        assert_eq!(train_a, train_b);
        assert_eq!(test_a, test_b);
        assert_eq!(train_a.len(), 80);
        assert_eq!(test_a.len(), 20);
        // Different seed → different split.
        let (train_c, _) = train_test_split(&rows, 0.2, 8).unwrap();
        assert_ne!(train_a, train_c);
    }

    #[test]
    fn split_rejects_bad_ratio() {
        assert!(train_test_split(&rows(), 1.0, 1).is_err());
        assert!(train_test_split(&rows(), -0.1, 1).is_err());
    }
}
