//! # mltools — data-processing and ML tool servers for NL2ML
//!
//! The paper's NL2ML benchmark equips agents with "extra tools for data
//! processing (e.g. Z-score normalization) and machine learning models (e.g.
//! linear regression and random forest) training and inference" (§3.4). This
//! crate implements those tools for real:
//!
//! * [`transform`] — z-score / min-max normalization, train-test splits;
//! * [`linreg`] — ridge-regularized linear regression (normal equations);
//! * [`forest`] — CART random-forest regression with bootstrap + feature
//!   bagging;
//! * [`metrics`] — RMSE / MAE / R²;
//! * [`trend`] — moving-average + OLS-slope trend detection (the chain-store
//!   scenario's `trend_analyze`);
//! * [`tools::ml_registry`] — everything wrapped as `toolproto` tools whose
//!   wire format matches the database `select` output, so they compose with
//!   BridgeScope proxy units directly.

#![warn(missing_docs)]

pub mod dataset;
pub mod forest;
pub mod linreg;
pub mod metrics;
pub mod sync;
pub mod tools;
pub mod transform;
pub mod trend;

pub use dataset::Dataset;
pub use forest::{Forest, ForestParams};
pub use linreg::LinearModel;
pub use tools::ml_registry;
pub use transform::NormKind;
pub use trend::Trend;
