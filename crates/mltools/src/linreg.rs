//! Linear regression via ridge-regularized normal equations.

/// A trained linear model: `ŷ = intercept + Σ wᵢ xᵢ`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
}

impl LinearModel {
    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.intercept
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }

    /// Predict a matrix.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_row(r)).collect()
    }
}

/// Fit by solving `(XᵀX + λI) w = Xᵀy` with Gaussian elimination. A small
/// ridge term keeps collinear one-hot blocks solvable.
pub fn fit(x: &[Vec<f64>], y: &[f64], ridge: f64) -> Result<LinearModel, String> {
    if x.is_empty() || x.len() != y.len() {
        return Err("empty or mismatched training data".into());
    }
    let n = x.len();
    let d = x[0].len() + 1; // +1 for the intercept column
                            // Build the augmented normal-equation system A|b where A = XᵀX + λI.
    let mut a = vec![vec![0.0f64; d + 1]; d];
    let row_aug = |row: &[f64]| -> Vec<f64> {
        let mut r = Vec::with_capacity(d);
        r.push(1.0);
        r.extend_from_slice(row);
        r
    };
    for (row, &target) in x.iter().zip(y) {
        let r = row_aug(row);
        if r.len() != d {
            return Err("ragged feature rows".into());
        }
        for i in 0..d {
            for j in 0..d {
                a[i][j] += r[i] * r[j];
            }
            a[i][d] += r[i] * target;
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += ridge * n as f64 / d as f64;
    }
    // Gaussian elimination with partial pivoting.
    #[allow(clippy::needless_range_loop)] // row/column index symmetry is clearer
    for col in 0..d {
        let pivot = (col..d)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err("singular normal-equation matrix".into());
        }
        a.swap(col, pivot);
        let div = a[col][col];
        for j in col..=d {
            a[col][j] /= div;
        }
        for i in 0..d {
            if i != col {
                let factor = a[i][col];
                if factor != 0.0 {
                    for j in col..=d {
                        a[i][j] -= factor * a[col][j];
                    }
                }
            }
        }
    }
    let solution: Vec<f64> = (0..d).map(|i| a[i][d]).collect();
    Ok(LinearModel {
        intercept: solution[0],
        weights: solution[1..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 3 + 2a - b
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 + 2.0 * r[0] - r[1]).collect();
        let m = fit(&x, &y, 1e-9).unwrap();
        assert!((m.intercept - 3.0).abs() < 1e-6, "{}", m.intercept);
        assert!((m.weights[0] - 2.0).abs() < 1e-6);
        assert!((m.weights[1] + 1.0).abs() < 1e-6);
        let preds = m.predict(&x);
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 1e-6);
        }
    }

    #[test]
    fn handles_collinear_one_hot_features() {
        // Two one-hot columns that always sum to 1 (collinear with the
        // intercept) — plain normal equations would be singular.
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let a = f64::from(i % 2 == 0);
                vec![a, 1.0 - a, i as f64]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 5.0 * r[2] + 2.0 * r[0]).collect();
        let m = fit(&x, &y, 1e-6).unwrap();
        let preds = m.predict(&x);
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 0.1, "{p} vs {t}");
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(fit(&[], &[], 0.0).is_err());
        assert!(fit(&[vec![1.0]], &[1.0, 2.0], 0.0).is_err());
    }
}
