//! BIRD-Ext: a synthetic benchmark in the image of the paper's §3.1.
//!
//! The paper extends BIRD with data-manipulation tasks: 150 read (SELECT)
//! tasks plus 50 each of INSERT / UPDATE / DELETE, emphasising operation
//! semantics, user privileges, and transaction management. We cannot ship
//! BIRD's databases, so this module generates BIRD-*like* ones — four
//! domains with realistic schemas, foreign keys, and seeded data — and 300
//! tasks from parameterized templates. Every task carries gold SQL plus the
//! plausible-mistake variants the agent simulator samples from
//! (`schema_corrupted`, `predicate_wrong`, `wrong`); a unit test verifies
//! every gold statement executes against the generated database.

use llmsim::{SqlStep, TaskKind, TaskSpec, ValueLookup};
use minidb::Database;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One generated benchmark task.
#[derive(Debug, Clone)]
pub struct BirdTask {
    /// The agent-facing spec.
    pub spec: TaskSpec,
    /// Which domain (database) the task belongs to.
    pub domain: &'static str,
    /// Tables whose contents decide write-task correctness.
    pub eval_tables: Vec<String>,
}

impl BirdTask {
    /// Whether the task mutates the database.
    pub fn is_write(&self) -> bool {
        self.spec.kind == TaskKind::Write
    }
}

/// The generated benchmark: a database template plus tasks.
pub struct BirdExt {
    /// Pristine database (fork per run).
    pub template: Database,
    /// The 300 tasks: 150 read, 50 insert, 50 update, 50 delete.
    pub tasks: Vec<BirdTask>,
}

/// Stored categories of the retail sales table; the first entry is the
/// paper's motivating "women's wear".
pub const CATEGORIES: [&str; 5] = [
    "women's wear",
    "menswear",
    "children's clothing",
    "sportswear",
    "accessories",
];

const COUNTIES: [&str; 4] = [
    "Alameda County",
    "Los Angeles County",
    "Fresno County",
    "Orange County",
];

const RARITIES: [&str; 4] = ["mythic rare", "rare", "uncommon", "common"];

const NATIONALITIES: [&str; 5] = ["British", "German", "Spanish", "Dutch", "Finnish"];

const REGIONS: [&str; 3] = ["west", "east", "north"];

/// Build the multi-domain database.
pub fn build_database(seed: u64) -> Database {
    let db = Database::new();
    build_database_on(&db, seed);
    db
}

/// Populate an existing (empty) database with the multi-domain content.
/// Splitting this from [`build_database`] lets the crash-recovery harness
/// seed a *durable* database with the exact same content a volatile
/// reference gets.
pub fn build_database_on(db: &Database, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut s = db.session("admin").expect("admin exists");
    // Real BIRD databases carry wide tables (the schools domain has dozens
    // of columns); width matters because schema dumps dominate per-call
    // prompt costs for every toolkit.
    let ddl = [
        // schools domain
        "CREATE TABLE schools (cds INTEGER PRIMARY KEY, school TEXT NOT NULL, county TEXT, \
         district TEXT, charter INTEGER, enrollment INTEGER, free_meal_rate REAL, \
         street TEXT, city TEXT, zip TEXT, phone TEXT, website TEXT, open_year INTEGER, \
         grade_low INTEGER, grade_high INTEGER, magnet INTEGER, virtual_school INTEGER)",
        "CREATE TABLE satscores (cds INTEGER PRIMARY KEY REFERENCES schools(cds), \
         avg_read INTEGER, avg_math INTEGER, num_tested INTEGER, avg_writing INTEGER, \
         pct_ge_1500 REAL)",
        // card games domain
        "CREATE TABLE sets (code TEXT PRIMARY KEY, set_name TEXT NOT NULL, release_year INTEGER, \
         total_cards INTEGER, block_name TEXT, set_type TEXT)",
        "CREATE TABLE cards (card_id INTEGER PRIMARY KEY, card_name TEXT NOT NULL, \
         set_code TEXT REFERENCES sets(code), rarity TEXT, mana_cost INTEGER, card_power INTEGER, \
         artist TEXT, layout TEXT, border_color TEXT, frame_version INTEGER)",
        // formula 1 domain
        "CREATE TABLE drivers (driver_id INTEGER PRIMARY KEY, driver_name TEXT NOT NULL, \
         nationality TEXT, birth_year INTEGER, driver_code TEXT, home_city TEXT)",
        "CREATE TABLE races (race_id INTEGER PRIMARY KEY, race_name TEXT NOT NULL, \
         season INTEGER, round INTEGER, circuit TEXT, country TEXT)",
        "CREATE TABLE results (result_id INTEGER PRIMARY KEY, \
         race_id INTEGER REFERENCES races(race_id), driver_id INTEGER REFERENCES drivers(driver_id), \
         position INTEGER, points REAL, grid INTEGER, laps INTEGER, status TEXT)",
        // retail domain (the chain-store scenario)
        "CREATE TABLE stores (store_id INTEGER PRIMARY KEY, store_name TEXT NOT NULL UNIQUE, \
         region TEXT, manager TEXT, opened_year INTEGER)",
        "CREATE TABLE brand_a_sales (sale_id INTEGER PRIMARY KEY, \
         store_id INTEGER REFERENCES stores(store_id), day TEXT, category TEXT, amount REAL, \
         clerk TEXT, channel TEXT)",
        "CREATE TABLE brand_a_refunds (refund_id INTEGER PRIMARY KEY, \
         store_id INTEGER REFERENCES stores(store_id), day TEXT, amount REAL, reason TEXT)",
        // sensitive, task-unrelated table (the irrelevant role's scope)
        "CREATE TABLE employee_salaries (emp_id INTEGER PRIMARY KEY, emp_name TEXT NOT NULL, \
         salary REAL, dept TEXT)",
    ];
    for stmt in ddl {
        s.execute_sql(stmt).expect("DDL is valid");
    }

    // ---- schools ----
    let mut rows = Vec::new();
    for i in 0..120 {
        let county = COUNTIES[rng.gen_range(0..COUNTIES.len())];
        let low = rng.gen_range(0..7);
        rows.push(format!(
            "({}, 'School {}', '{}', 'District {}', {}, {}, {:.2}, \
             '{} Main St', 'Town {}', '9{:04}', '555-{:04}', 'school{}.example.edu', {}, {}, {}, {}, {})",
            1000 + i,
            i,
            county.replace('\'', "''"),
            i % 12,
            i32::from(rng.gen_bool(0.3)),
            rng.gen_range(100..4000),
            rng.gen_range(0.0..1.0f64),
            100 + i,
            i % 30,
            rng.gen_range(0..9999),
            rng.gen_range(0..9999),
            i,
            rng.gen_range(1900..2015),
            low,
            low + rng.gen_range(4..7),
            i32::from(rng.gen_bool(0.1)),
            i32::from(rng.gen_bool(0.05)),
        ));
    }
    batch_insert(&mut s, "schools", &rows);
    let mut rows = Vec::new();
    for i in 0..120 {
        rows.push(format!(
            "({}, {}, {}, {}, {}, {:.2})",
            1000 + i,
            rng.gen_range(350..650),
            rng.gen_range(350..650),
            rng.gen_range(20..900),
            rng.gen_range(350..650),
            rng.gen_range(0.0..0.4f64),
        ));
    }
    batch_insert(&mut s, "satscores", &rows);

    // ---- card games ----
    let mut rows = Vec::new();
    for i in 0..12 {
        rows.push(format!(
            "('SET{i:02}', 'Expansion {i}', {}, {}, 'Block {}', '{}')",
            1998 + i * 2,
            rng.gen_range(100..350),
            i / 3,
            if i % 3 == 0 { "core" } else { "expansion" },
        ));
    }
    batch_insert(&mut s, "sets", &rows);
    let mut rows = Vec::new();
    for i in 0..200 {
        let rarity = RARITIES[rng.gen_range(0..RARITIES.len())];
        rows.push(format!(
            "({}, 'Card {}', 'SET{:02}', '{}', {}, {}, 'Artist {}', 'normal', '{}', {})",
            i,
            i,
            rng.gen_range(0..12),
            rarity,
            rng.gen_range(0..12),
            rng.gen_range(0..10),
            i % 25,
            if i % 4 == 0 { "black" } else { "white" },
            rng.gen_range(1..4),
        ));
    }
    batch_insert(&mut s, "cards", &rows);

    // ---- formula 1 ----
    let mut rows = Vec::new();
    for i in 0..40 {
        rows.push(format!(
            "({}, 'Driver {}', '{}', {}, 'DR{}', 'City {}')",
            i,
            i,
            NATIONALITIES[rng.gen_range(0..NATIONALITIES.len())],
            rng.gen_range(1960..2002),
            i,
            i % 15,
        ));
    }
    batch_insert(&mut s, "drivers", &rows);
    let mut rows = Vec::new();
    for i in 0..60 {
        rows.push(format!(
            "({}, 'Grand Prix {}', {}, {}, 'Circuit {}', '{}')",
            i,
            i,
            2018 + i % 6,
            1 + i % 10,
            i % 20,
            NATIONALITIES[i % NATIONALITIES.len()],
        ));
    }
    batch_insert(&mut s, "races", &rows);
    let mut rows = Vec::new();
    for i in 0..300 {
        rows.push(format!(
            "({}, {}, {}, {}, {:.1}, {}, {}, '{}')",
            i,
            rng.gen_range(0..60),
            rng.gen_range(0..40),
            rng.gen_range(1..21),
            [25.0, 18.0, 15.0, 12.0, 10.0, 8.0, 6.0, 4.0, 2.0, 1.0, 0.0][rng.gen_range(0..11usize)],
            rng.gen_range(1..21),
            rng.gen_range(40..70),
            if rng.gen_bool(0.9) { "Finished" } else { "DNF" },
        ));
    }
    batch_insert(&mut s, "results", &rows);

    // ---- retail ----
    let mut rows = Vec::new();
    for i in 0..8 {
        rows.push(format!(
            "({}, 'Store {}', '{}', 'Manager {}', {})",
            i,
            i,
            REGIONS[i % REGIONS.len()],
            i,
            2000 + i,
        ));
    }
    batch_insert(&mut s, "stores", &rows);
    let mut rows = Vec::new();
    for i in 0..250 {
        let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
        rows.push(format!(
            "({}, {}, '2026-{:02}-{:02}', '{}', {:.2}, 'Clerk {}', '{}')",
            i,
            rng.gen_range(0..8),
            1 + i % 6,
            1 + i % 28,
            cat.replace('\'', "''"),
            rng.gen_range(5.0..500.0f64),
            i % 12,
            if i % 5 == 0 { "online" } else { "in_store" },
        ));
    }
    batch_insert(&mut s, "brand_a_sales", &rows);
    let mut rows = Vec::new();
    for i in 0..80 {
        rows.push(format!(
            "({}, {}, '2026-{:02}-{:02}', {:.2}, '{}')",
            i,
            rng.gen_range(0..8),
            1 + i % 6,
            1 + i % 28,
            rng.gen_range(1.0..80.0f64),
            if i % 3 == 0 { "damaged" } else { "returned" },
        ));
    }
    batch_insert(&mut s, "brand_a_refunds", &rows);

    // ---- salaries ----
    let mut rows = Vec::new();
    for i in 0..20 {
        rows.push(format!(
            "({}, 'Employee {}', {:.2}, '{}')",
            i,
            i,
            rng.gen_range(30_000.0..180_000.0f64),
            if i % 2 == 0 { "ops" } else { "sales" },
        ));
    }
    batch_insert(&mut s, "employee_salaries", &rows);
}

fn batch_insert(session: &mut minidb::Session, table: &str, rows: &[String]) {
    for chunk in rows.chunks(100) {
        let sql = format!("INSERT INTO {table} VALUES {}", chunk.join(", "));
        session
            .execute_sql(&sql)
            .unwrap_or_else(|e| panic!("seed insert into {table} failed: {e}"));
    }
}

/// Generate the full benchmark: database template + 300 tasks.
pub fn generate(seed: u64) -> BirdExt {
    let template = build_database(seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_7a5c);
    let mut tasks = Vec::with_capacity(300);
    for i in 0..150 {
        tasks.push(read_task(i, &mut rng));
    }
    for i in 0..50 {
        tasks.push(insert_task(i, &mut rng));
    }
    for i in 0..50 {
        tasks.push(update_task(i, &mut rng));
    }
    for i in 0..50 {
        tasks.push(delete_task(i, &mut rng));
    }
    BirdExt { template, tasks }
}

fn step(
    action: &str,
    tables: &[&str],
    gold: String,
    corrupted: Option<String>,
    wrong: Option<String>,
) -> SqlStep {
    SqlStep {
        action: action.into(),
        tables: tables.iter().map(|t| (*t).to_owned()).collect(),
        gold,
        schema_corrupted: corrupted,
        predicate_wrong: None,
        wrong,
        lookup: None,
    }
}

fn read_task(i: usize, rng: &mut SmallRng) -> BirdTask {
    let template = i % 10;
    let id = format!("read-{i:03}");
    match template {
        0 => {
            // Text predicate with exemplar grounding (county).
            let county = COUNTIES[rng.gen_range(0..COUNTIES.len())];
            let key = county.trim_end_matches(" County");
            let mut st = step(
                "select",
                &["schools"],
                format!("SELECT COUNT(*) FROM schools WHERE charter = 1 AND county = '{county}'"),
                Some(format!(
                    "SELECT COUNT(*) FROM schools WHERE is_charter = 1 AND county = '{county}'"
                )),
                Some(format!(
                    "SELECT COUNT(*) FROM schools WHERE charter = 0 AND county = '{county}'"
                )),
            );
            st.predicate_wrong = Some(format!(
                "SELECT COUNT(*) FROM schools WHERE charter = 1 AND county = '{key}'"
            ));
            st.lookup = Some(ValueLookup {
                table: "schools".into(),
                column: "county".into(),
                key: key.to_owned(),
                actual: county.to_owned(),
            });
            BirdTask {
                spec: TaskSpec::read(
                    id,
                    format!("How many charter schools are located in {key}?"),
                    st,
                ),
                domain: "schools",
                eval_tables: vec![],
            }
        }
        1 => {
            let n = rng.gen_range(1000..3000);
            let st = step(
                "select",
                &["schools", "satscores"],
                format!(
                    "SELECT AVG(s.avg_math) FROM satscores AS s JOIN schools AS c ON s.cds = c.cds \
                     WHERE c.enrollment > {n}"
                ),
                Some(format!(
                    "SELECT AVG(s.avg_math) FROM satscores AS s JOIN schools AS c ON s.cds = c.cds \
                     WHERE c.enrolment > {n}"
                )),
                Some(format!(
                    "SELECT AVG(s.avg_read) FROM satscores AS s JOIN schools AS c ON s.cds = c.cds \
                     WHERE c.enrollment > {n}"
                )),
            );
            BirdTask {
                spec: TaskSpec::read(
                    id,
                    format!(
                        "What is the average SAT math score among schools with enrollment above {n}?"
                    ),
                    st,
                ),
                domain: "schools",
                eval_tables: vec![],
            }
        }
        2 => {
            let st = step(
                "select",
                &["schools"],
                "SELECT school FROM schools ORDER BY free_meal_rate DESC LIMIT 3".into(),
                Some("SELECT school_name FROM schools ORDER BY free_meal_rate DESC LIMIT 3".into()),
                Some("SELECT school FROM schools ORDER BY free_meal_rate LIMIT 3".into()),
            );
            BirdTask {
                spec: TaskSpec::read(
                    id,
                    "List the names of the three schools with the highest free meal rate.",
                    st,
                ),
                domain: "schools",
                eval_tables: vec![],
            }
        }
        3 => {
            // Rarity lookup ("mythic" → "mythic rare").
            let mut st = step(
                "select",
                &["cards"],
                "SELECT COUNT(*) FROM cards WHERE rarity = 'mythic rare'".into(),
                Some("SELECT COUNT(*) FROM cards WHERE rareness = 'mythic rare'".into()),
                Some("SELECT COUNT(*) FROM cards WHERE rarity = 'rare'".into()),
            );
            st.predicate_wrong = Some("SELECT COUNT(*) FROM cards WHERE rarity = 'mythic'".into());
            st.lookup = Some(ValueLookup {
                table: "cards".into(),
                column: "rarity".into(),
                key: "mythic".into(),
                actual: "mythic rare".into(),
            });
            BirdTask {
                spec: TaskSpec::read(id, "How many mythic cards are in the collection?", st),
                domain: "card_games",
                eval_tables: vec![],
            }
        }
        4 => {
            let year = 2000 + 2 * rng.gen_range(0..8);
            let st = step(
                "select",
                &["cards", "sets"],
                format!(
                    "SELECT COUNT(*) FROM cards AS c JOIN sets AS s ON c.set_code = s.code \
                     WHERE s.release_year > {year}"
                ),
                Some(format!(
                    "SELECT COUNT(*) FROM cards AS c JOIN sets AS s ON c.setcode = s.code \
                     WHERE s.release_year > {year}"
                )),
                Some(format!(
                    "SELECT COUNT(*) FROM cards AS c JOIN sets AS s ON c.set_code = s.code \
                     WHERE s.release_year < {year}"
                )),
            );
            BirdTask {
                spec: TaskSpec::read(
                    id,
                    format!("How many cards belong to sets released after {year}?"),
                    st,
                ),
                domain: "card_games",
                eval_tables: vec![],
            }
        }
        5 => {
            let st = step(
                "select",
                &["cards"],
                "SELECT rarity, COUNT(*) AS n FROM cards GROUP BY rarity ORDER BY n DESC LIMIT 1"
                    .into(),
                Some(
                    "SELECT rarity, COUNT(*) AS n FROM deck_cards GROUP BY rarity ORDER BY n DESC \
                     LIMIT 1"
                        .into(),
                ),
                Some(
                    "SELECT rarity, COUNT(*) AS n FROM cards GROUP BY rarity ORDER BY n LIMIT 1"
                        .into(),
                ),
            );
            BirdTask {
                spec: TaskSpec::read(
                    id,
                    "Which rarity has the most cards, and how many does it have?",
                    st,
                ),
                domain: "card_games",
                eval_tables: vec![],
            }
        }
        6 => {
            let season = 2018 + rng.gen_range(0..6);
            let st = step(
                "select",
                &["drivers", "races", "results"],
                format!(
                    "SELECT d.driver_name, SUM(r.points) AS total FROM results AS r \
                     JOIN races AS g ON r.race_id = g.race_id \
                     JOIN drivers AS d ON r.driver_id = d.driver_id \
                     WHERE g.season = {season} GROUP BY d.driver_name ORDER BY total DESC LIMIT 1"
                ),
                Some(format!(
                    "SELECT d.name, SUM(r.points) AS total FROM results AS r \
                     JOIN races AS g ON r.race_id = g.race_id \
                     JOIN drivers AS d ON r.driver_id = d.driver_id \
                     WHERE g.season = {season} GROUP BY d.name ORDER BY total DESC LIMIT 1"
                )),
                Some(format!(
                    "SELECT d.driver_name, SUM(r.points) AS total FROM results AS r \
                     JOIN races AS g ON r.race_id = g.race_id \
                     JOIN drivers AS d ON r.driver_id = d.driver_id \
                     WHERE g.season = {season} GROUP BY d.driver_name ORDER BY total LIMIT 1"
                )),
            );
            BirdTask {
                spec: TaskSpec::read(
                    id,
                    format!("Which driver scored the most points in the {season} season?"),
                    st,
                ),
                domain: "formula_1",
                eval_tables: vec![],
            }
        }
        7 => {
            let driver = rng.gen_range(0..40);
            let st = step(
                "select",
                &["results"],
                format!("SELECT COUNT(*) FROM results WHERE driver_id = {driver} AND position = 1"),
                Some(format!(
                    "SELECT COUNT(*) FROM results WHERE driverid = {driver} AND position = 1"
                )),
                Some(format!(
                    "SELECT COUNT(*) FROM results WHERE driver_id = {driver} AND position <= 3"
                )),
            );
            BirdTask {
                spec: TaskSpec::read(
                    id,
                    format!("How many race wins does driver {driver} have?"),
                    st,
                ),
                domain: "formula_1",
                eval_tables: vec![],
            }
        }
        8 => {
            // The paper's women's-wear example.
            let day = format!("2026-{:02}-01", 1 + rng.gen_range(0..6));
            let mut st = step(
                "select",
                &["brand_a_sales"],
                format!(
                    "SELECT SUM(amount) FROM brand_a_sales WHERE category = 'women''s wear' \
                     AND day >= '{day}'"
                ),
                Some(format!(
                    "SELECT SUM(amount) FROM brand_a_sales WHERE product_category = 'women''s wear' \
                     AND day >= '{day}'"
                )),
                Some(format!(
                    "SELECT SUM(amount) FROM brand_a_sales WHERE category = 'menswear' \
                     AND day >= '{day}'"
                )),
            );
            st.predicate_wrong = Some(format!(
                "SELECT SUM(amount) FROM brand_a_sales WHERE category = 'women' AND day >= '{day}'"
            ));
            st.lookup = Some(ValueLookup {
                table: "brand_a_sales".into(),
                column: "category".into(),
                key: "women".into(),
                actual: "women's wear".into(),
            });
            BirdTask {
                spec: TaskSpec::read(
                    id,
                    format!("What is the total sales amount for women's clothing since {day}?"),
                    st,
                ),
                domain: "retail",
                eval_tables: vec![],
            }
        }
        _ => {
            let n = rng.gen_range(2000..9000);
            let st = step(
                "select",
                &["stores", "brand_a_sales"],
                format!(
                    "SELECT s.store_name, SUM(x.amount) AS total FROM brand_a_sales AS x \
                     JOIN stores AS s ON x.store_id = s.store_id GROUP BY s.store_name \
                     HAVING SUM(x.amount) > {n} ORDER BY total DESC"
                ),
                Some(format!(
                    "SELECT s.name, SUM(x.amount) AS total FROM brand_a_sales AS x \
                     JOIN stores AS s ON x.store_id = s.store_id GROUP BY s.name \
                     HAVING SUM(x.amount) > {n} ORDER BY total DESC"
                )),
                Some(format!(
                    "SELECT s.store_name, SUM(x.amount) AS total FROM brand_a_sales AS x \
                     JOIN stores AS s ON x.store_id = s.store_id GROUP BY s.store_name \
                     HAVING SUM(x.amount) < {n} ORDER BY total DESC"
                )),
            );
            BirdTask {
                spec: TaskSpec::read(
                    id,
                    format!("Which stores have total brand-A sales above {n}, highest first?"),
                    st,
                ),
                domain: "retail",
                eval_tables: vec![],
            }
        }
    }
}

fn insert_task(i: usize, rng: &mut SmallRng) -> BirdTask {
    let id = format!("insert-{i:03}");
    // Fresh primary keys far above the seeded ranges; spaced so tasks never
    // collide even if several run against one database.
    let base = 100_000 + i as i64 * 10;
    match i % 4 {
        0 => {
            // The chain-store scenario: atomically record a sale and refund.
            let store = rng.gen_range(0..8);
            let amount = rng.gen_range(50.0..400.0f64);
            let steps = vec![
                step(
                    "insert",
                    &["brand_a_sales"],
                    format!(
                        "INSERT INTO brand_a_sales (sale_id, store_id, day, category, amount) VALUES \
                         ({base}, {store}, '2026-07-01', 'women''s wear', {amount:.2})"
                    ),
                    Some(format!(
                        "INSERT INTO brand_a_sales (sale_id, store, day, category, amount) VALUES \
                         ({base}, {store}, '2026-07-01', 'women''s wear', {amount:.2})"
                    )),
                    None,
                ),
                step(
                    "insert",
                    &["brand_a_refunds"],
                    format!(
                        "INSERT INTO brand_a_refunds (refund_id, store_id, day, amount) VALUES \
                         ({base}, {store}, '2026-07-01', {:.2})",
                        amount / 10.0
                    ),
                    None,
                    None,
                ),
            ];
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!(
                        "Record today's figures for store {store}: a women's wear sale of \
                         {amount:.2} and the matching refund of {:.2}. Both must be stored \
                         atomically.",
                        amount / 10.0
                    ),
                    steps,
                ),
                domain: "retail",
                eval_tables: vec!["brand_a_sales".into(), "brand_a_refunds".into()],
            }
        }
        1 => {
            let county = COUNTIES[rng.gen_range(0..COUNTIES.len())];
            let enrollment = rng.gen_range(200..2500);
            let st = step(
                "insert",
                &["schools"],
                format!(
                    "INSERT INTO schools (cds, school, county, district, charter, enrollment, \
                     free_meal_rate) VALUES ({base}, 'New Academy {i}', '{county}', \
                     'District 99', 1, {enrollment}, 0.5)"
                ),
                Some(format!(
                    "INSERT INTO schools (cds, name, county, district, charter, enrollment, \
                     free_meal_rate) VALUES ({base}, 'New Academy {i}', '{county}', 'District 99', \
                     1, {enrollment}, 0.5)"
                )),
                Some(format!(
                    "INSERT INTO schools (cds, school, county, district, charter, enrollment, \
                     free_meal_rate) VALUES ({base}, 'New Academy {i}', '{county}', \
                     'District 99', 0, {enrollment}, 0.5)"
                )),
            );
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!(
                        "Register the new charter school 'New Academy {i}' in {county} \
                         (district 99, {enrollment} students, 50% free meal rate)."
                    ),
                    vec![st],
                ),
                domain: "schools",
                eval_tables: vec!["schools".into()],
            }
        }
        2 => {
            // Two-step insert with an FK dependency: a set, then its cards.
            let steps = vec![
                step(
                    "insert",
                    &["sets"],
                    format!(
                        "INSERT INTO sets (code, set_name, release_year, total_cards) VALUES \
                         ('NEW{i:02}', 'Novelty {i}', 2026, 2)"
                    ),
                    None,
                    None,
                ),
                step(
                    "insert",
                    &["cards"],
                    format!(
                        "INSERT INTO cards (card_id, card_name, set_code, rarity, mana_cost, card_power) \
                         VALUES ({base}, 'Nova {i}a', 'NEW{i:02}', 'rare', 4, 5), \
                         ({}, 'Nova {i}b', 'NEW{i:02}', 'common', 1, 1)",
                        base + 1
                    ),
                    Some(format!(
                        "INSERT INTO cards (card_id, card_name, set_code, rarity, mana_cost, card_power) \
                         VALUES ({base}, 'Nova {i}a', 'NEW{i:02}', 'rare', 4, 5), \
                         ({}, 'Nova {i}b', 'MISSING', 'common', 1, 1)",
                        base + 1
                    )),
                    None,
                ),
            ];
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!(
                        "Add the new expansion 'Novelty {i}' released in 2026 together with its \
                         two cards Nova {i}a (rare) and Nova {i}b (common), as one atomic change."
                    ),
                    steps,
                ),
                domain: "card_games",
                eval_tables: vec!["sets".into(), "cards".into()],
            }
        }
        _ => {
            let race = rng.gen_range(0..60);
            let driver = rng.gen_range(0..40);
            let st = step(
                "insert",
                &["results"],
                format!(
                    "INSERT INTO results (result_id, race_id, driver_id, position, points) VALUES \
                     ({base}, {race}, {driver}, 2, 18.0)"
                ),
                Some(format!(
                    "INSERT INTO race_results (result_id, race_id, driver_id, position, points) VALUES \
                     ({base}, {race}, {driver}, 2, 18.0)"
                )),
                Some(format!(
                    "INSERT INTO results (result_id, race_id, driver_id, position, points) VALUES \
                     ({base}, {race}, {driver}, 3, 15.0)"
                )),
            );
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!(
                        "Record that driver {driver} finished second (18 points) in race {race}."
                    ),
                    vec![st],
                ),
                domain: "formula_1",
                eval_tables: vec!["results".into()],
            }
        }
    }
}

fn update_task(i: usize, rng: &mut SmallRng) -> BirdTask {
    let id = format!("update-{i:03}");
    match i % 4 {
        0 => {
            let day = format!("2026-{:02}-05", 1 + rng.gen_range(0..6));
            let mut st = step(
                "update",
                &["brand_a_sales"],
                format!(
                    "UPDATE brand_a_sales SET amount = amount * 1.1 \
                     WHERE category = 'women''s wear' AND day = '{day}'"
                ),
                Some(format!(
                    "UPDATE brand_a_sales SET sale_amount = sale_amount * 1.1 \
                     WHERE category = 'women''s wear' AND day = '{day}'"
                )),
                Some(format!(
                    "UPDATE brand_a_sales SET amount = amount * 1.2 \
                     WHERE category = 'women''s wear' AND day = '{day}'"
                )),
            );
            st.predicate_wrong = Some(format!(
                "UPDATE brand_a_sales SET amount = amount * 1.1 \
                 WHERE category = 'women' AND day = '{day}'"
            ));
            st.lookup = Some(ValueLookup {
                table: "brand_a_sales".into(),
                column: "category".into(),
                key: "women".into(),
                actual: "women's wear".into(),
            });
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!(
                        "Apply a 10% price correction to all women's clothing sales recorded on \
                         {day}."
                    ),
                    vec![st],
                ),
                domain: "retail",
                eval_tables: vec!["brand_a_sales".into()],
            }
        }
        1 => {
            let school = 1000 + rng.gen_range(0..120);
            let st = step(
                "update",
                &["schools"],
                format!("UPDATE schools SET charter = 1 WHERE cds = {school}"),
                Some(format!(
                    "UPDATE schools SET is_charter = 1 WHERE cds = {school}"
                )),
                Some(format!(
                    "UPDATE schools SET charter = 0 WHERE cds = {school}"
                )),
            );
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!("Mark school {school} as a charter school."),
                    vec![st],
                ),
                domain: "schools",
                eval_tables: vec!["schools".into()],
            }
        }
        2 => {
            let cost = rng.gen_range(8..11);
            let st = step(
                "update",
                &["cards"],
                format!("UPDATE cards SET rarity = 'mythic rare' WHERE mana_cost >= {cost}"),
                Some(format!(
                    "UPDATE cards SET rareness = 'mythic rare' WHERE mana_cost >= {cost}"
                )),
                Some(format!(
                    "UPDATE cards SET rarity = 'rare' WHERE mana_cost >= {cost}"
                )),
            );
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!("Reclassify every card with mana cost at least {cost} as mythic rare."),
                    vec![st],
                ),
                domain: "card_games",
                eval_tables: vec!["cards".into()],
            }
        }
        _ => {
            let result = rng.gen_range(0..300);
            let st = step(
                "update",
                &["results"],
                format!("UPDATE results SET points = points + 1 WHERE result_id = {result}"),
                Some(format!(
                    "UPDATE results SET point = point + 1 WHERE result_id = {result}"
                )),
                Some(format!(
                    "UPDATE results SET points = points - 1 WHERE result_id = {result}"
                )),
            );
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!(
                        "A stewards' review awarded one extra point for result {result}; apply it."
                    ),
                    vec![st],
                ),
                domain: "formula_1",
                eval_tables: vec!["results".into()],
            }
        }
    }
}

fn delete_task(i: usize, rng: &mut SmallRng) -> BirdTask {
    let id = format!("delete-{i:03}");
    match i % 4 {
        0 => {
            let day = format!("2026-{:02}-01", 1 + rng.gen_range(0..3));
            let st = step(
                "delete",
                &["brand_a_refunds"],
                format!("DELETE FROM brand_a_refunds WHERE day < '{day}'"),
                Some(format!("DELETE FROM brand_a_refund WHERE day < '{day}'")),
                Some(format!("DELETE FROM brand_a_refunds WHERE day <= '{day}'")),
            );
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!("Purge all brand-A refund records older than {day}."),
                    vec![st],
                ),
                domain: "retail",
                eval_tables: vec!["brand_a_refunds".into()],
            }
        }
        1 => {
            let n = rng.gen_range(30..120);
            let st = step(
                "delete",
                &["satscores"],
                format!("DELETE FROM satscores WHERE num_tested < {n}"),
                Some(format!("DELETE FROM satscores WHERE tested_count < {n}")),
                Some(format!(
                    "DELETE FROM satscores WHERE num_tested < {}",
                    n + 50
                )),
            );
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!(
                        "Remove SAT score rows based on fewer than {n} tested students; they are \
                         statistically unreliable."
                    ),
                    vec![st],
                ),
                domain: "schools",
                eval_tables: vec!["satscores".into()],
            }
        }
        2 => {
            let power = rng.gen_range(1..4);
            let set = rng.gen_range(0..12);
            let st = step(
                "delete",
                &["cards"],
                format!(
                    "DELETE FROM cards WHERE set_code = 'SET{set:02}' AND card_power < {power}"
                ),
                Some(format!(
                    "DELETE FROM cards WHERE setcode = 'SET{set:02}' AND card_power < {power}"
                )),
                Some(format!(
                    "DELETE FROM cards WHERE set_code = 'SET{set:02}' AND card_power <= {power}"
                )),
            );
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!(
                        "Drop the weak cards (power below {power}) of set SET{set:02} from the \
                         collection."
                    ),
                    vec![st],
                ),
                domain: "card_games",
                eval_tables: vec!["cards".into()],
            }
        }
        _ => {
            let season = 2018 + rng.gen_range(0..6);
            let st = step(
                "delete",
                &["results", "races"],
                format!(
                    "DELETE FROM results WHERE race_id IN \
                     (SELECT race_id FROM races WHERE season = {season} AND round > 8)"
                ),
                Some(format!(
                    "DELETE FROM results WHERE raceid IN \
                     (SELECT raceid FROM races WHERE season = {season} AND round > 8)"
                )),
                Some(format!(
                    "DELETE FROM results WHERE race_id IN \
                     (SELECT race_id FROM races WHERE season = {season} AND round > 5)"
                )),
            );
            BirdTask {
                spec: TaskSpec::write(
                    id,
                    format!(
                        "The late-season rounds (after round 8) of {season} were voided; delete \
                         their results."
                    ),
                    vec![st],
                ),
                domain: "formula_1",
                eval_tables: vec!["results".into()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::QueryResult;

    #[test]
    fn database_builds_with_all_tables() {
        let db = build_database(1);
        let names = db.table_names();
        for t in [
            "schools",
            "satscores",
            "sets",
            "cards",
            "drivers",
            "races",
            "results",
            "stores",
            "brand_a_sales",
            "brand_a_refunds",
            "employee_salaries",
        ] {
            assert!(names.contains(&t.to_string()), "missing {t}");
        }
        assert_eq!(db.table_rows("brand_a_sales").unwrap(), 250);
        assert_eq!(db.table_rows("schools").unwrap(), 120);
    }

    #[test]
    fn task_mix_matches_the_paper() {
        let bench = generate(7);
        assert_eq!(bench.tasks.len(), 300);
        let read = bench.tasks.iter().filter(|t| !t.is_write()).count();
        assert_eq!(read, 150);
        let inserts = bench
            .tasks
            .iter()
            .filter(|t| t.spec.id.starts_with("insert-"))
            .count();
        assert_eq!(inserts, 50);
    }

    #[test]
    fn every_gold_statement_executes() {
        let bench = generate(7);
        for task in &bench.tasks {
            let db = bench.template.fork();
            let mut s = db.session("admin").unwrap();
            for st in &task.spec.steps {
                s.execute_sql(&st.gold).unwrap_or_else(|e| {
                    panic!("gold of {} failed: {e}\n{}", task.spec.id, st.gold)
                });
            }
        }
    }

    #[test]
    fn every_wrong_variant_also_executes() {
        // "wrong" SQL must run fine (it is semantically wrong, not broken).
        let bench = generate(7);
        for task in &bench.tasks {
            let db = bench.template.fork();
            let mut s = db.session("admin").unwrap();
            for st in &task.spec.steps {
                if let Some(wrong) = &st.wrong {
                    s.execute_sql(wrong).unwrap_or_else(|e| {
                        panic!("wrong variant of {} failed: {e}\n{wrong}", task.spec.id)
                    });
                }
            }
        }
    }

    #[test]
    fn corrupted_variants_fail_with_schema_errors() {
        let bench = generate(7);
        let db = bench.template.fork();
        for task in &bench.tasks {
            let mut s = db.session("admin").unwrap();
            for st in &task.spec.steps {
                if let Some(bad) = &st.schema_corrupted {
                    assert!(
                        s.execute_sql(bad).is_err(),
                        "corrupted SQL of {} unexpectedly succeeded: {bad}",
                        task.spec.id
                    );
                }
            }
        }
    }

    #[test]
    fn predicate_wrong_variants_return_empty_or_zero() {
        let bench = generate(7);
        let db = bench.template.fork();
        for task in &bench.tasks {
            let mut s = db.session("admin").unwrap();
            for st in &task.spec.steps {
                if let Some(pw) = &st.predicate_wrong {
                    if st.action != "select" {
                        continue;
                    }
                    match s.execute_sql(pw).unwrap() {
                        QueryResult::Rows { rows, .. } => {
                            // COUNT/SUM over the miss is 0 or NULL.
                            let v = &rows[0][0];
                            assert!(
                                v.is_null() || v.as_f64() == Some(0.0),
                                "{}: predicate_wrong unexpectedly matched: {pw}",
                                task.spec.id
                            );
                        }
                        other => panic!("{other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(9);
        let b = generate(9);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.spec.id, y.spec.id);
            assert_eq!(x.spec.nl, y.spec.nl);
            assert_eq!(
                x.spec.steps.iter().map(|s| &s.gold).collect::<Vec<_>>(),
                y.spec.steps.iter().map(|s| &s.gold).collect::<Vec<_>>()
            );
        }
    }
}
