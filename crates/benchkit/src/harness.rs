//! The evaluation harness: run (toolkit × agent × role × task set) cells and
//! aggregate the paper's metrics.

use crate::bird::{BirdExt, BirdTask};
use crate::eval;
use crate::nl2ml;
use crate::roles::{install_roles, Role};
use bridgescope_core::{pg_mcp, pg_mcp_minus, BridgeScopeServer, SecurityPolicy};
use llmsim::{Aggregate, LlmProfile, ReactAgent, TaskTrace};
use minidb::Database;
use mltools::ml_registry;
use obs::Obs;
use toolproto::Registry;

/// Which toolkit the agent is equipped with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Toolkit {
    /// The full BridgeScope server.
    BridgeScope,
    /// The stock PG-MCP baseline (get_schema + execute_sql).
    PgMcp,
    /// The reduced PG-MCP⁻ baseline (execute_sql only).
    PgMcpMinus,
}

impl Toolkit {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Toolkit::BridgeScope => "BridgeScope",
            Toolkit::PgMcp => "PG-MCP",
            Toolkit::PgMcpMinus => "PG-MCP-",
        }
    }
}

/// Which BIRD-Ext tasks a cell covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskClass {
    /// Query-only tasks.
    Read,
    /// Data-manipulation tasks.
    Write,
    /// Everything.
    All,
}

impl TaskClass {
    fn includes(&self, task: &BirdTask) -> bool {
        match self {
            TaskClass::Read => !task.is_write(),
            TaskClass::Write => task.is_write(),
            TaskClass::All => true,
        }
    }
}

/// Deterministic per-task seed (FNV-1a over the task id, mixed with the
/// run seed).
pub fn task_seed(run_seed: u64, task_id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ run_seed;
    for b in task_id.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Build the agent-facing registry + prompt for a toolkit over a database.
pub fn build_toolkit(
    toolkit: Toolkit,
    db: &Database,
    user: &str,
    external: &Registry,
) -> (Registry, String) {
    build_toolkit_with_policy(toolkit, db, user, external, SecurityPolicy::default())
}

/// [`build_toolkit`] with an explicit BridgeScope security policy (baselines
/// have no policy surface, so it only affects BridgeScope).
pub fn build_toolkit_with_policy(
    toolkit: Toolkit,
    db: &Database,
    user: &str,
    external: &Registry,
    policy: SecurityPolicy,
) -> (Registry, String) {
    build_toolkit_observed(toolkit, db, user, external, policy, Obs::disabled())
}

/// [`build_toolkit_with_policy`] recording into `obs`. BridgeScope threads
/// the handle through every layer; the baselines at least get the
/// registry-level call observer, so per-tool counts and latencies stay
/// comparable across toolkits.
pub fn build_toolkit_observed(
    toolkit: Toolkit,
    db: &Database,
    user: &str,
    external: &Registry,
    policy: SecurityPolicy,
    obs: Obs,
) -> (Registry, String) {
    match toolkit {
        Toolkit::BridgeScope => {
            let server = BridgeScopeServer::build_observed(db.clone(), user, policy, external, obs)
                .expect("user exists");
            (server.registry, server.prompt.to_owned())
        }
        Toolkit::PgMcp => {
            let server = pg_mcp(db.clone(), user, external).expect("user exists");
            let mut registry = server.registry;
            if let Some(observer) = obs.registry_observer() {
                registry.set_observer(observer);
            }
            (registry, server.prompt.to_owned())
        }
        Toolkit::PgMcpMinus => {
            let server = pg_mcp_minus(db.clone(), user, external).expect("user exists");
            let mut registry = server.registry;
            if let Some(observer) = obs.registry_observer() {
                registry.set_observer(observer);
            }
            (registry, server.prompt.to_owned())
        }
    }
}

/// One BIRD-Ext cell configuration.
#[derive(Debug, Clone)]
pub struct BirdCell {
    /// Toolkit under test.
    pub toolkit: Toolkit,
    /// Agent behaviour profile.
    pub profile: LlmProfile,
    /// Acting role.
    pub role: Role,
    /// Task class filter.
    pub class: TaskClass,
    /// Cap on the number of tasks (for quick runs); `None` = all.
    pub limit: Option<usize>,
    /// Run seed.
    pub seed: u64,
}

/// Result of one cell: the aggregate plus each trace (for debugging).
pub struct CellOutcome {
    /// Aggregated metrics.
    pub aggregate: Aggregate,
    /// Individual traces, parallel to the tasks run.
    pub traces: Vec<TaskTrace>,
}

/// Run one BIRD-Ext cell.
pub fn run_bird_cell(bench: &BirdExt, cell: &BirdCell) -> CellOutcome {
    run_bird_cell_with_policy(bench, cell, SecurityPolicy::default())
}

/// [`run_bird_cell`] with an explicit BridgeScope security policy — used by
/// the ablation benches (e.g. sweeping the adaptive schema threshold *n*).
pub fn run_bird_cell_with_policy(
    bench: &BirdExt,
    cell: &BirdCell,
    policy: SecurityPolicy,
) -> CellOutcome {
    let task_tables: Vec<String> = bench
        .template
        .table_names()
        .into_iter()
        .filter(|t| t != "employee_salaries")
        .collect();
    let mut aggregate = Aggregate::default();
    let mut traces = Vec::new();
    let tasks: Vec<&BirdTask> = bench
        .tasks
        .iter()
        .filter(|t| cell.class.includes(t))
        .take(cell.limit.unwrap_or(usize::MAX))
        .collect();
    let external = Registry::new();
    for task in tasks {
        let db = bench.template.fork();
        install_roles(&db, &task_tables);
        let (registry, prompt) = build_toolkit_with_policy(
            cell.toolkit,
            &db,
            cell.role.user(),
            &external,
            policy.clone(),
        );
        let agent = ReactAgent::new(cell.profile.clone(), prompt);
        let trace = agent.run(&registry, &task.spec, task_seed(cell.seed, &task.spec.id));
        let feasible = cell.role.feasible(task.is_write());
        let correct = if !feasible {
            // An infeasible task is handled correctly iff the agent aborted
            // (rather than claiming success) and nothing changed.
            trace.outcome.is_aborted()
        } else if task.is_write() {
            let gold_db = bench.template.fork();
            let mut s = gold_db.session("admin").expect("admin");
            for st in &task.spec.steps {
                s.execute_sql(&st.gold).expect("gold verified by tests");
            }
            trace.outcome.is_completed() && eval::write_correct(&db, &gold_db, &task.eval_tables)
        } else {
            let gold_db = bench.template.fork();
            let mut s = gold_db.session("admin").expect("admin");
            let gold = s
                .execute_sql(&task.spec.steps[0].gold)
                .expect("gold verified by tests");
            trace.outcome.is_completed() && eval::read_correct(trace.answer.as_ref(), &gold)
        };
        aggregate.add(&trace, task.is_write() && feasible, correct);
        traces.push(trace);
    }
    CellOutcome { aggregate, traces }
}

/// One NL2ML run configuration.
#[derive(Debug, Clone)]
pub struct Nl2mlConfig {
    /// Toolkit under test.
    pub toolkit: Toolkit,
    /// Agent behaviour profile.
    pub profile: LlmProfile,
    /// Rows in the house table (20,000 in the paper; 20 for PG-MCP-S).
    pub rows: usize,
    /// Cap on tasks; `None` = all 30.
    pub limit: Option<usize>,
    /// Run seed.
    pub seed: u64,
}

/// Run the NL2ML benchmark under one configuration.
pub fn run_nl2ml(cfg: &Nl2mlConfig) -> CellOutcome {
    run_nl2ml_observed(cfg, &Obs::disabled())
}

/// [`run_nl2ml`] recording the whole run into `obs`: task/LLM-call spans
/// from the agent, tool/SQL/proxy spans from the toolkit, and the `llm.*` /
/// `tool.*` / `proxy.*` counters a summary or JSONL export reads from.
pub fn run_nl2ml_observed(cfg: &Nl2mlConfig, obs: &Obs) -> CellOutcome {
    let db = crate::housing::build_database(cfg.rows, cfg.seed);
    db.create_user("analyst", false).expect("fresh db");
    db.grant("analyst", sqlkit::Action::Select, "house")
        .expect("house exists");
    let external = ml_registry();
    let (registry, prompt) = build_toolkit_observed(
        cfg.toolkit,
        &db,
        "analyst",
        &external,
        SecurityPolicy::default(),
        obs.clone(),
    );
    let agent = ReactAgent::new(cfg.profile.clone(), prompt).with_obs(obs.clone());
    let mut aggregate = Aggregate::default();
    let mut traces = Vec::new();
    for task in nl2ml::tasks()
        .into_iter()
        .take(cfg.limit.unwrap_or(usize::MAX))
    {
        let trace = agent.run(&registry, &task, task_seed(cfg.seed, &task.id));
        // NL2ML correctness = the pipeline completed and reported a finite
        // training/prediction quality number.
        let correct = trace.outcome.is_completed()
            && trace
                .answer
                .as_ref()
                .and_then(|a| {
                    a.get("rmse")
                        .or_else(|| a.get("train_rmse"))
                        .and_then(toolproto::Json::as_f64)
                })
                .is_some_and(f64::is_finite);
        aggregate.add(&trace, false, correct);
        traces.push(trace);
    }
    CellOutcome { aggregate, traces }
}

/// The token cost of routing the full house table through an idealized
/// LLM twice (the paper's ≥1.5M-token lower bound for PG-MCP with an
/// unlimited context window).
pub fn idealized_pg_mcp_tokens(rows: usize, seed: u64) -> usize {
    let db = crate::housing::build_database(rows, seed);
    let mut s = db.session("admin").expect("admin");
    let result = s.execute_sql("SELECT * FROM house").expect("house exists");
    // The idealized agent routes the stock server's verbose object-rows.
    let payload = bridgescope_core::bridge::result_to_output_verbose(result)
        .value
        .to_compact();
    2 * llmsim::tokens::estimate(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bird;
    use llmsim::Outcome;

    fn strict(profile: LlmProfile) -> LlmProfile {
        LlmProfile {
            schema_hallucination_rate: 0.0,
            predicate_error_rate: 0.0,
            privilege_awareness: 1.0,
            spurious_abort_rate: 0.0,
            sql_accuracy: 1.0,
            ..profile
        }
    }

    #[test]
    fn bridgescope_admin_read_cell_runs_clean() {
        let bench = bird::generate(5);
        let cell = BirdCell {
            toolkit: Toolkit::BridgeScope,
            profile: strict(LlmProfile::gpt4o()),
            role: Role::Administrator,
            class: TaskClass::Read,
            limit: Some(10),
            seed: 1,
        };
        let out = run_bird_cell(&bench, &cell);
        assert_eq!(out.aggregate.runs, 10);
        assert_eq!(out.aggregate.completion_rate(), 1.0);
        assert_eq!(out.aggregate.accuracy(), 1.0, "strict profile + gold SQL");
        // Reads need 3 calls + occasional get_value.
        let avg = out.aggregate.avg_llm_calls();
        assert!((3.0..4.0).contains(&avg), "avg calls {avg}");
    }

    #[test]
    fn bridgescope_write_cell_uses_transactions() {
        let bench = bird::generate(5);
        let cell = BirdCell {
            toolkit: Toolkit::BridgeScope,
            profile: strict(LlmProfile::gpt4o()),
            role: Role::Administrator,
            class: TaskClass::Write,
            limit: Some(8),
            seed: 1,
        };
        let out = run_bird_cell(&bench, &cell);
        assert_eq!(out.aggregate.txn_initiation_rate(), 1.0);
        assert_eq!(out.aggregate.accuracy(), 1.0);
    }

    #[test]
    fn pg_mcp_write_cell_rarely_uses_transactions() {
        let bench = bird::generate(5);
        let cell = BirdCell {
            toolkit: Toolkit::PgMcp,
            profile: strict(LlmProfile::gpt4o()),
            role: Role::Administrator,
            class: TaskClass::Write,
            limit: Some(8),
            seed: 1,
        };
        let out = run_bird_cell(&bench, &cell);
        assert!(out.aggregate.txn_initiation_rate() < 0.5);
        // Still completes the work (autocommit).
        assert!(out.aggregate.completion_rate() > 0.8);
    }

    #[test]
    fn infeasible_cells_abort_early_with_bridgescope() {
        let bench = bird::generate(5);
        let bs = run_bird_cell(
            &bench,
            &BirdCell {
                toolkit: Toolkit::BridgeScope,
                profile: strict(LlmProfile::claude4()),
                role: Role::Normal,
                class: TaskClass::Write,
                limit: Some(10),
                seed: 1,
            },
        );
        assert_eq!(bs.aggregate.accuracy(), 1.0, "all aborted correctly");
        assert!(bs.aggregate.avg_llm_calls() <= 2.0, "prompt abort");
        let pg = run_bird_cell(
            &bench,
            &BirdCell {
                toolkit: Toolkit::PgMcp,
                profile: strict(LlmProfile::claude4()),
                role: Role::Normal,
                class: TaskClass::Write,
                limit: Some(10),
                seed: 1,
            },
        );
        assert!(
            pg.aggregate.avg_llm_calls() > bs.aggregate.avg_llm_calls(),
            "PG-MCP burns more calls on infeasible tasks: {} vs {}",
            pg.aggregate.avg_llm_calls(),
            bs.aggregate.avg_llm_calls()
        );
        assert!(pg.aggregate.avg_tokens() > bs.aggregate.avg_tokens());
    }

    #[test]
    fn nl2ml_bridgescope_completes_where_pg_mcp_overflows() {
        // Shrunken window stands in for the paper's full 20,000-row / 128k
        // configuration: the table payload exceeds the window once it must
        // transit the LLM, while BridgeScope's proxy never carries it.
        let tiny_window = LlmProfile {
            context_window: 12_000,
            ..strict(LlmProfile::gpt4o())
        };
        let bs = run_nl2ml(&Nl2mlConfig {
            toolkit: Toolkit::BridgeScope,
            profile: tiny_window.clone(),
            rows: 2_000,
            limit: Some(6),
            seed: 2,
        });
        assert_eq!(bs.aggregate.completion_rate(), 1.0);
        assert_eq!(bs.aggregate.avg_llm_calls(), 3.0, "schema + proxy + final");

        let pg = run_nl2ml(&Nl2mlConfig {
            toolkit: Toolkit::PgMcp,
            profile: tiny_window,
            rows: 2_000,
            limit: Some(6),
            seed: 2,
        });
        assert_eq!(pg.aggregate.completion_rate(), 0.0);
        assert!(pg
            .traces
            .iter()
            .all(|t| t.outcome == Outcome::ContextOverflow));
    }

    #[test]
    fn nl2ml_sampled_pg_mcp_completes_but_costs_more() {
        let s = run_nl2ml(&Nl2mlConfig {
            toolkit: Toolkit::PgMcp,
            profile: strict(LlmProfile::gpt4o()),
            rows: 20,
            limit: Some(6),
            seed: 2,
        });
        assert_eq!(s.aggregate.completion_rate(), 1.0);
        assert!(s.aggregate.avg_llm_calls() > 3.0);
        let bs = run_nl2ml(&Nl2mlConfig {
            toolkit: Toolkit::BridgeScope,
            profile: strict(LlmProfile::gpt4o()),
            rows: 20,
            limit: Some(6),
            seed: 2,
        });
        assert!(s.aggregate.avg_llm_calls() > bs.aggregate.avg_llm_calls());
    }

    #[test]
    fn observed_nl2ml_run_links_task_to_proxy_spans() {
        let obs = Obs::in_memory();
        let out = run_nl2ml_observed(
            &Nl2mlConfig {
                toolkit: Toolkit::BridgeScope,
                profile: strict(LlmProfile::gpt4o()),
                rows: 50,
                limit: Some(2),
                seed: 2,
            },
            &obs,
        );
        assert_eq!(out.aggregate.completion_rate(), 1.0);
        let snap = obs.snapshot();
        obs::validate_tree(&snap.spans).unwrap();
        assert_eq!(
            snap.metrics.counter("llm.calls"),
            out.aggregate.llm_calls as u64
        );
        // The proxy moved the table without it transiting the LLM.
        assert!(snap.metrics.counter("proxy.units") >= 2);
        assert!(snap.metrics.counter("proxy.rows_moved") > 0);
        // Full chain present: task → llm:call → tool:proxy → proxy:unit.
        let by_id = |id: u64| snap.spans.iter().find(|sp| sp.id == id).unwrap();
        let unit = snap
            .spans
            .iter()
            .find(|sp| sp.name == "proxy:unit")
            .expect("proxy unit span");
        let tool = by_id(unit.parent.expect("unit has parent"));
        assert_eq!(tool.name, "tool:proxy");
        let llm = by_id(tool.parent.expect("tool has parent"));
        assert_eq!(llm.name, "llm:call");
        let task = by_id(llm.parent.expect("llm call has parent"));
        assert_eq!(task.name, "task");
        assert!(task.parent.is_none());
    }

    #[test]
    fn idealized_bound_scales_with_rows() {
        let small = idealized_pg_mcp_tokens(100, 3);
        let big = idealized_pg_mcp_tokens(1_000, 3);
        assert!(big > small * 8);
    }

    #[test]
    fn task_seed_is_stable_and_id_sensitive() {
        assert_eq!(task_seed(1, "a"), task_seed(1, "a"));
        assert_ne!(task_seed(1, "a"), task_seed(1, "b"));
        assert_ne!(task_seed(1, "a"), task_seed(2, "a"));
    }
}
