//! Planner microbenchmark: measures what the cost-based planner buys on
//! the three workloads it was built for, and records the plan shapes it
//! chose so CI can assert the *decisions*, not just the timings.
//!
//! * **Selective probe** — an indexed equality over a wide table, timed
//!   through the planner (index probe after `ANALYZE`) against the
//!   monolithic sequential reference;
//! * **Three-way join** — a star-shaped equi-join written worst-first
//!   (fact table leftmost), where the planner must pick a non-syntactic
//!   join order, against the nested-loop reference;
//! * **ORDER BY + LIMIT top-k** and **streaming LIMIT** — the two pushdown
//!   rules, each timed against the *same* planner with `pushdown` disabled,
//!   so the delta isolates the pushdown itself rather than the executor.
//!
//! Every timed pair is also checked for answer equality — a benchmark that
//! rewards a wrong answer is worse than no benchmark.

use minidb::{Database, ExecOptions, QueryResult, Session};
use std::time::Instant;

/// Sizing knobs for one [`run`] call.
#[derive(Debug, Clone)]
pub struct PlannerBenchConfig {
    /// Rows in the `sales` fact table. `stores` gets `sales_rows / 64`
    /// rows (min 16) and `regions` a quarter of that, preserving the
    /// star shape at every scale.
    pub sales_rows: usize,
    /// Timed repetitions per query; the report keeps the minimum, which
    /// is the standard way to strip scheduler noise from a microbench.
    pub iters: usize,
}

impl Default for PlannerBenchConfig {
    fn default() -> Self {
        PlannerBenchConfig {
            sales_rows: 20_000,
            iters: 5,
        }
    }
}

/// Outcome of one planner microbenchmark run: the plan shapes the
/// optimizer picked plus best-of-N wall-clock times for each pair.
#[derive(Debug, Clone)]
pub struct PlannerBenchReport {
    /// Fact-table rows the run was sized with.
    pub sales_rows: usize,
    /// After `ANALYZE`, the selective probe ran as an `Index Scan`.
    pub probe_uses_index: bool,
    /// After `ANALYZE`, the constant-column probe fell back to a
    /// sequential scan (its index would fetch every row).
    pub constant_probe_uses_seq_scan: bool,
    /// The worst-first three-way join was reordered away from syntactic
    /// order (the plan carries the `reordered` marker).
    pub join_reordered: bool,
    /// The ORDER BY + LIMIT sort was bounded (`top-k` in the plan).
    pub topk_bounded: bool,
    /// The bare LIMIT pipeline streamed with early exit.
    pub limit_streams: bool,
    /// Selective probe through the planner, ns.
    pub probe_planned_ns: u64,
    /// Selective probe through the sequential reference, ns.
    pub probe_reference_ns: u64,
    /// Three-way join through the planner (reordered hash joins), ns.
    pub join_planned_ns: u64,
    /// Three-way join through the sequential reference (nested loops), ns.
    pub join_reference_ns: u64,
    /// ORDER BY + LIMIT with pushdown (bounded top-k sort), ns.
    pub topk_pushdown_ns: u64,
    /// ORDER BY + LIMIT with pushdown disabled (full sort), ns.
    pub topk_unpushed_ns: u64,
    /// Streaming LIMIT with pushdown (early-exit scan), ns.
    pub limit_pushdown_ns: u64,
    /// Same LIMIT with pushdown disabled (full materialization), ns.
    pub limit_unpushed_ns: u64,
}

impl PlannerBenchReport {
    /// Sequential-reference time over planned time for the probe.
    pub fn probe_speedup(&self) -> f64 {
        ratio(self.probe_reference_ns, self.probe_planned_ns)
    }

    /// Sequential-reference time over planned time for the join.
    pub fn join_speedup(&self) -> f64 {
        ratio(self.join_reference_ns, self.join_planned_ns)
    }

    /// Unpushed time over pushed time for the top-k sort.
    pub fn topk_speedup(&self) -> f64 {
        ratio(self.topk_unpushed_ns, self.topk_pushdown_ns)
    }

    /// Unpushed time over pushed time for the streaming LIMIT.
    pub fn limit_speedup(&self) -> f64 {
        ratio(self.limit_unpushed_ns, self.limit_pushdown_ns)
    }

    /// All plan-shape assertions at once — the CI gate's first check.
    pub fn plans_ok(&self) -> bool {
        self.probe_uses_index
            && self.constant_probe_uses_seq_scan
            && self.join_reordered
            && self.topk_bounded
            && self.limit_streams
    }

    /// Human-readable summary, one line per workload.
    pub fn render(&self) -> String {
        format!(
            "planner bench ({} fact rows):\n\
             \x20 probe: {} vs reference {} ({:.1}x) index={}\n\
             \x20 join: {} vs reference {} ({:.1}x) reordered={}\n\
             \x20 top-k: {} vs unpushed {} ({:.1}x) bounded={}\n\
             \x20 limit: {} vs unpushed {} ({:.1}x) streaming={}\n\
             \x20 constant-column probe falls back to seq scan: {}\n",
            self.sales_rows,
            fmt_ns(self.probe_planned_ns),
            fmt_ns(self.probe_reference_ns),
            self.probe_speedup(),
            self.probe_uses_index,
            fmt_ns(self.join_planned_ns),
            fmt_ns(self.join_reference_ns),
            self.join_speedup(),
            self.join_reordered,
            fmt_ns(self.topk_pushdown_ns),
            fmt_ns(self.topk_unpushed_ns),
            self.topk_speedup(),
            self.topk_bounded,
            fmt_ns(self.limit_pushdown_ns),
            fmt_ns(self.limit_unpushed_ns),
            self.limit_speedup(),
            self.limit_streams,
            self.constant_probe_uses_seq_scan,
        )
    }
}

fn ratio(baseline_ns: u64, candidate_ns: u64) -> f64 {
    baseline_ns as f64 / candidate_ns.max(1) as f64
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Build the star-shaped fixture: `regions` ← `stores` ← `sales`, with a
/// named index on the selective `sales.sid` column and one on the
/// constant `sales.flag` column (every row holds 7).
fn build(cfg: &PlannerBenchConfig) -> (Database, Session) {
    let db = Database::new();
    let mut s = db.session("admin").expect("admin exists");
    let stores = (cfg.sales_rows / 64).max(16);
    let regions = (stores / 4).max(4);
    for sql in [
        "CREATE TABLE regions (rid INTEGER PRIMARY KEY, rname TEXT NOT NULL)",
        "CREATE TABLE stores (sid INTEGER PRIMARY KEY, rid INTEGER, sname TEXT NOT NULL)",
        "CREATE TABLE sales (id INTEGER PRIMARY KEY, sid INTEGER, amount REAL, flag INTEGER)",
        "CREATE INDEX idx_sales_sid ON sales (sid)",
        "CREATE INDEX idx_sales_flag ON sales (flag)",
    ] {
        s.execute_sql(sql).expect("fixture DDL");
    }
    let mut rows: Vec<String> = (0..regions).map(|r| format!("({r}, 'r{r}')")).collect();
    s.execute_sql(&format!("INSERT INTO regions VALUES {}", rows.join(", ")))
        .expect("regions");
    rows = (0..stores)
        .map(|sid| format!("({sid}, {}, 's{sid}')", sid % regions))
        .collect();
    s.execute_sql(&format!("INSERT INTO stores VALUES {}", rows.join(", ")))
        .expect("stores");
    for chunk in (0..cfg.sales_rows).collect::<Vec<_>>().chunks(1024) {
        rows = chunk
            .iter()
            .map(|&id| format!("({id}, {}, {}.25, 7)", id % stores, id % 997))
            .collect();
        s.execute_sql(&format!("INSERT INTO sales VALUES {}", rows.join(", ")))
            .expect("sales");
    }
    (db, s)
}

/// Time `sql` under `opts`: best of `iters` runs, plus the last result
/// and rendered plan for shape/answer checks.
fn time_query(
    s: &Session,
    sql: &str,
    opts: &ExecOptions,
    iters: usize,
) -> (u64, QueryResult, String) {
    let mut best = u64::MAX;
    let mut last = None;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let (result, summary) = s
            .query_with_options(sql, opts)
            .unwrap_or_else(|e| panic!("bench query failed: {sql}: {e}"));
        best = best.min(t0.elapsed().as_nanos() as u64);
        last = Some((result, summary.tree.join("\n")));
    }
    let (result, plan) = last.expect("at least one iteration");
    (best, result, plan)
}

/// Run the planner microbenchmark. Panics if any timed pair disagrees on
/// its answer — speed with a wrong result is not a result.
pub fn run_planner_bench(cfg: &PlannerBenchConfig) -> PlannerBenchReport {
    let (_db, mut s) = build(cfg);
    s.execute_sql("ANALYZE").expect("admin may analyze");

    let planned = ExecOptions::default();
    let reference = ExecOptions::sequential();
    let unpushed = ExecOptions {
        pushdown: false,
        ..ExecOptions::default()
    };

    let probe_sql = "SELECT id, amount FROM sales WHERE sid = 3";
    let (probe_planned_ns, probe_rows, probe_plan) = time_query(&s, probe_sql, &planned, cfg.iters);
    let (probe_reference_ns, probe_ref_rows, _) = time_query(&s, probe_sql, &reference, cfg.iters);
    assert_eq!(probe_rows, probe_ref_rows, "probe answers diverged");

    let (_, _, constant_plan) = time_query(&s, "SELECT id FROM sales WHERE flag = 7", &planned, 1);

    // Worst-first syntactic order: the 512×-larger fact table leads.
    let join_sql = "SELECT r.rname, sa.amount FROM sales AS sa \
                    JOIN stores AS st ON sa.sid = st.sid \
                    JOIN regions AS r ON st.rid = r.rid";
    let (join_planned_ns, join_rows, join_plan) = time_query(&s, join_sql, &planned, cfg.iters);
    let (join_reference_ns, join_ref_rows, _) = time_query(&s, join_sql, &reference, cfg.iters);
    assert_eq!(join_rows, join_ref_rows, "join answers diverged");

    let topk_sql = "SELECT id, amount FROM sales ORDER BY amount, id LIMIT 10";
    let (topk_pushdown_ns, topk_rows, topk_plan) = time_query(&s, topk_sql, &planned, cfg.iters);
    let (topk_unpushed_ns, topk_un_rows, _) = time_query(&s, topk_sql, &unpushed, cfg.iters);
    assert_eq!(topk_rows, topk_un_rows, "top-k answers diverged");

    let limit_sql = "SELECT id FROM sales WHERE amount > 1.0 LIMIT 10";
    let (limit_pushdown_ns, limit_rows, limit_plan) =
        time_query(&s, limit_sql, &planned, cfg.iters);
    let (limit_unpushed_ns, limit_un_rows, _) = time_query(&s, limit_sql, &unpushed, cfg.iters);
    assert_eq!(
        limit_rows, limit_un_rows,
        "streaming LIMIT answers diverged"
    );

    PlannerBenchReport {
        sales_rows: cfg.sales_rows,
        probe_uses_index: probe_plan.contains("Index Scan on sales using idx_sales_sid"),
        constant_probe_uses_seq_scan: constant_plan.contains("Seq Scan on sales")
            && !constant_plan.contains("Index Scan"),
        join_reordered: join_plan.contains("reordered"),
        topk_bounded: topk_plan.contains("top-k"),
        limit_streams: limit_plan.contains("streaming early-exit"),
        probe_planned_ns,
        probe_reference_ns,
        join_planned_ns,
        join_reference_ns,
        topk_pushdown_ns,
        topk_unpushed_ns,
        limit_pushdown_ns,
        limit_unpushed_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_reports_every_plan_shape() {
        let cfg = PlannerBenchConfig {
            sales_rows: 2_048,
            iters: 2,
        };
        let report = run_planner_bench(&cfg);
        assert!(report.probe_uses_index, "{}", report.render());
        assert!(report.constant_probe_uses_seq_scan, "{}", report.render());
        assert!(report.join_reordered, "{}", report.render());
        assert!(report.topk_bounded, "{}", report.render());
        assert!(report.limit_streams, "{}", report.render());
        assert!(report.plans_ok());
        for ns in [
            report.probe_planned_ns,
            report.probe_reference_ns,
            report.join_planned_ns,
            report.join_reference_ns,
            report.topk_pushdown_ns,
            report.topk_unpushed_ns,
            report.limit_pushdown_ns,
            report.limit_unpushed_ns,
        ] {
            assert!(ns > 0 && ns < u64::MAX, "unmeasured timing");
        }
        let text = report.render();
        assert!(text.contains("probe:"), "{text}");
        assert!(text.contains("reordered=true"), "{text}");
    }
}
