//! Synthetic California-Housing-style dataset (the NL2ML substrate).
//!
//! The paper uses the Kaggle California Housing table: one `house` table of
//! 10 columns and 20,000 rows. We generate a statistically similar table —
//! coordinates inside a California-like bounding box, log-normal-ish incomes,
//! and a house value driven by income, latitude, and ocean proximity plus
//! noise — so the ML tools find real signal and the serialized table has the
//! same token magnitude (~750k tokens) that exhausts baseline agents'
//! context windows.

use minidb::Database;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Column order of the generated `house` table.
pub const HOUSE_COLUMNS: [&str; 10] = [
    "longitude",
    "latitude",
    "housing_median_age",
    "total_rooms",
    "total_bedrooms",
    "population",
    "households",
    "median_income",
    "median_house_value",
    "ocean_proximity",
];

/// Index of the regression target (`median_house_value`).
pub const TARGET_INDEX: usize = 8;

/// Categories of `ocean_proximity`.
pub const PROXIMITIES: [&str; 4] = ["NEAR BAY", "NEAR OCEAN", "INLAND", "ISLAND"];

/// Build the `house` database with `rows` rows (the paper uses 20,000; the
/// PG-MCP-S variant samples 20).
pub fn build_database(rows: usize, seed: u64) -> Database {
    let db = Database::new();
    let mut session = db.session("admin").expect("admin exists");
    session
        .execute_sql(
            "CREATE TABLE house (longitude REAL, latitude REAL, housing_median_age REAL, \
             total_rooms REAL, total_bedrooms REAL, population REAL, households REAL, \
             median_income REAL, median_house_value REAL, ocean_proximity TEXT)",
        )
        .expect("DDL is valid");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut batch: Vec<String> = Vec::with_capacity(500);
    for _ in 0..rows {
        let longitude = rng.gen_range(-124.3..-114.3f64);
        let latitude = rng.gen_range(32.5..42.0f64);
        let age = rng.gen_range(1.0..52.0f64).round();
        let households = rng.gen_range(50.0..1800.0f64).round();
        let rooms = households * rng.gen_range(3.0..7.0f64);
        let bedrooms = rooms * rng.gen_range(0.15..0.25f64);
        let population = households * rng.gen_range(1.8..4.0f64);
        // Income: squared-uniform for a right-skewed (log-normal-ish) shape.
        let u: f64 = rng.gen_range(0.0..1.0);
        let income = (0.5 + 14.0 * u * u).min(15.0);
        let proximity = if longitude < -122.0 && latitude > 36.0 {
            "NEAR BAY"
        } else if longitude < -119.0 {
            "NEAR OCEAN"
        } else if rng.gen_bool(0.02) {
            "ISLAND"
        } else {
            "INLAND"
        };
        // Value: income-driven with coastal premium and noise, capped like
        // the real dataset.
        let coastal_bonus = match proximity {
            "NEAR BAY" => 80_000.0,
            "NEAR OCEAN" => 60_000.0,
            "ISLAND" => 120_000.0,
            _ => 0.0,
        };
        let noise: f64 = rng.gen_range(-40_000.0..40_000.0);
        let value = (28_000.0 * income + coastal_bonus - 2_000.0 * (latitude - 32.5) + noise)
            .clamp(15_000.0, 500_001.0);
        batch.push(format!(
            "({longitude:.2}, {latitude:.2}, {age}, {rooms:.0}, {bedrooms:.0}, {population:.0}, \
             {households:.0}, {income:.4}, {value:.0}, '{proximity}')"
        ));
        if batch.len() == 500 {
            flush(&mut session, &mut batch);
        }
    }
    if !batch.is_empty() {
        flush(&mut session, &mut batch);
    }
    db
}

fn flush(session: &mut minidb::Session, batch: &mut Vec<String>) {
    let sql = format!("INSERT INTO house VALUES {}", batch.join(", "));
    session.execute_sql(&sql).expect("seed insert is valid");
    batch.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{QueryResult, Value};

    #[test]
    fn builds_with_requested_rows() {
        let db = build_database(1_000, 3);
        assert_eq!(db.table_rows("house").unwrap(), 1_000);
        let schema = db.table_schema("house").unwrap();
        assert_eq!(
            schema
                .columns
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            HOUSE_COLUMNS.to_vec()
        );
    }

    #[test]
    fn values_fall_in_realistic_ranges() {
        let db = build_database(500, 3);
        let mut s = db.session("admin").unwrap();
        let r = s
            .execute_sql(
                "SELECT MIN(median_house_value), MAX(median_house_value), MIN(median_income), \
                 MAX(latitude) FROM house",
            )
            .unwrap();
        match r {
            QueryResult::Rows { rows, .. } => {
                let min_v = rows[0][0].as_f64().unwrap();
                let max_v = rows[0][1].as_f64().unwrap();
                assert!(min_v >= 15_000.0 && max_v <= 500_001.0);
                assert!(rows[0][2].as_f64().unwrap() >= 0.5);
                assert!(rows[0][3].as_f64().unwrap() <= 42.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn income_predicts_value() {
        // The generated signal must be learnable (sanity for NL2ML).
        let db = build_database(2_000, 3);
        let mut s = db.session("admin").unwrap();
        let r = s
            .execute_sql("SELECT AVG(median_house_value) FROM house WHERE median_income > 8")
            .unwrap();
        let rich = match r {
            QueryResult::Rows { rows, .. } => rows[0][0].as_f64().unwrap(),
            _ => unreachable!(),
        };
        let r = s
            .execute_sql("SELECT AVG(median_house_value) FROM house WHERE median_income < 2")
            .unwrap();
        let poor = match r {
            QueryResult::Rows { rows, .. } => rows[0][0].as_f64().unwrap(),
            _ => unreachable!(),
        };
        assert!(rich > poor * 1.5, "rich {rich} vs poor {poor}");
    }

    #[test]
    fn categorical_column_has_expected_domain() {
        let db = build_database(2_000, 3);
        let values = db.column_values("house", "ocean_proximity").unwrap();
        for v in values {
            let s = match v {
                Value::Text(s) => s,
                other => panic!("{other:?}"),
            };
            assert!(PROXIMITIES.contains(&s.as_str()), "{s}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build_database(100, 11);
        let b = build_database(100, 11);
        let get = |db: &Database| {
            let mut s = db.session("admin").unwrap();
            match s
                .execute_sql("SELECT SUM(median_house_value) FROM house")
                .unwrap()
            {
                QueryResult::Rows { rows, .. } => rows[0][0].as_f64().unwrap(),
                _ => unreachable!(),
            }
        };
        assert_eq!(get(&a), get(&b));
    }
}
