//! Crash-recovery differential harness.
//!
//! Exercises the durable storage engine the way a kill -9 would: seed a
//! durable database and a volatile reference with identical BIRD-Ext
//! content, replay gold write-task SQL against both, and at injected kill
//! points *drop the durable engine without a checkpoint*, reopen it (WAL
//! replay), and assert its [`Database::state_fingerprint`] equals the
//! volatile reference at the same statement prefix. A final check crashes
//! mid-transaction (`BEGIN` + write, no `COMMIT`) and asserts recovery
//! leaves no trace of the uncommitted work.
//!
//! Statements that fail (gold tasks assume a pristine database; replayed
//! cumulatively some conflict) are part of the differential too: both
//! engines must agree on success vs. failure, and a failed statement must
//! leave both fingerprints untouched.

use crate::bird;
use minidb::{Database, DbResult, DurabilityConfig, FsyncPolicy, RecoveryReport};
use std::path::PathBuf;

/// Configuration for one crash-lab run.
#[derive(Debug, Clone)]
pub struct CrashLabConfig {
    /// Directory for the durable engine's WAL + snapshot. Created (and
    /// wiped) by [`run`].
    pub dir: PathBuf,
    /// Seed for the BIRD-Ext content and task generation.
    pub seed: u64,
    /// Cap on workload statements (0 = the full write-task gold set).
    pub max_statements: usize,
    /// Crash after every `kill_every`-th statement (minimum 1).
    pub kill_every: usize,
    /// Fsync policy for the durable engine under test.
    pub fsync: FsyncPolicy,
}

impl CrashLabConfig {
    /// Defaults: seed 7, 24 statements, crash after every statement,
    /// fsync-on-commit.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CrashLabConfig {
            dir: dir.into(),
            seed: 7,
            max_statements: 24,
            kill_every: 1,
            fsync: FsyncPolicy::Commit { group_window_ms: 0 },
        }
    }
}

/// Outcome of one injected crash + recovery.
#[derive(Debug, Clone)]
pub struct CrashPoint {
    /// 1-based index of the last workload statement executed before the
    /// crash.
    pub after_statement: usize,
    /// The statement text (truncated for reporting).
    pub statement: String,
    /// Transactions replayed from the WAL on reopen.
    pub replayed_txns: u64,
    /// Whether the recovered fingerprint matched the volatile reference.
    pub matched: bool,
}

/// Full report of a crash-lab run.
#[derive(Debug, Clone)]
pub struct CrashLabReport {
    /// Number of workload statements executed.
    pub statements: usize,
    /// Statements where durable and volatile disagreed on success/failure.
    pub outcome_mismatches: usize,
    /// One entry per injected crash.
    pub points: Vec<CrashPoint>,
    /// Whether the mid-transaction crash left no trace after recovery.
    pub mid_txn_clean: bool,
}

impl CrashLabReport {
    /// True when every kill point recovered to the committed state, the
    /// engines agreed on every statement outcome, and the mid-transaction
    /// crash left no trace.
    pub fn passed(&self) -> bool {
        self.outcome_mismatches == 0 && self.mid_txn_clean && self.points.iter().all(|p| p.matched)
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "crashlab: {} statements, {} kill points, {} outcome mismatches, mid-txn clean: {}\n",
            self.statements,
            self.points.len(),
            self.outcome_mismatches,
            self.mid_txn_clean,
        ));
        for p in &self.points {
            out.push_str(&format!(
                "  kill after #{:<3} replayed_txns={:<4} {} {}\n",
                p.after_statement,
                p.replayed_txns,
                if p.matched { "MATCH" } else { "DIVERGED" },
                p.statement,
            ));
        }
        out
    }
}

/// The gold SQL of every BIRD-Ext write task (insert, update, delete),
/// in task order. This is the crash workload.
pub fn write_workload(seed: u64, limit: usize) -> Vec<String> {
    let ext = bird::generate(seed);
    let mut stmts = Vec::new();
    for task in ext.tasks.iter().filter(|t| t.is_write()) {
        for step in &task.spec.steps {
            stmts.push(step.gold.clone());
        }
    }
    if limit > 0 {
        stmts.truncate(limit);
    }
    stmts
}

fn open_durable(config: &CrashLabConfig) -> DbResult<(Database, RecoveryReport)> {
    let durability = DurabilityConfig::new(config.dir.clone())
        .with_fsync(config.fsync)
        // No auto-snapshots: the whole point is recovering through the WAL.
        .with_snapshot_every(0);
    Database::open(&durability)
}

/// Run the crash-recovery differential.
pub fn run(config: &CrashLabConfig) -> DbResult<CrashLabReport> {
    if config.dir.exists() {
        let _ = std::fs::remove_dir_all(&config.dir);
    }
    let workload = write_workload(config.seed, config.max_statements);
    let kill_every = config.kill_every.max(1);

    // Identical seeds, two engines: the volatile reference is the oracle.
    let reference = Database::new();
    bird::build_database_on(&reference, config.seed);
    let (mut durable, _) = open_durable(config)?;
    bird::build_database_on(&durable, config.seed);

    let mut points = Vec::new();
    let mut outcome_mismatches = 0usize;
    for (i, stmt) in workload.iter().enumerate() {
        let d = durable.session("admin")?.execute_sql(stmt);
        let v = reference.session("admin")?.execute_sql(stmt);
        if d.is_ok() != v.is_ok() {
            outcome_mismatches += 1;
        }
        if (i + 1) % kill_every == 0 {
            // Crash: drop every handle to the durable engine without a
            // checkpoint, then recover from snapshot + WAL alone.
            drop(durable);
            let (reopened, report) = open_durable(config)?;
            points.push(CrashPoint {
                after_statement: i + 1,
                statement: truncate_stmt(stmt),
                replayed_txns: report.replayed_txns,
                matched: reopened.state_fingerprint() == reference.state_fingerprint(),
            });
            durable = reopened;
        }
    }
    let statements = workload.len();

    // Mid-transaction crash: BEGIN + write, then vanish before COMMIT.
    // `mem::forget` skips the session's rollback-on-drop, so recovery sees
    // an uncommitted WAL group exactly as a killed process would leave it.
    let before = reference.state_fingerprint();
    {
        let mut s = durable.session("admin")?;
        s.execute_sql("BEGIN")?;
        s.execute_sql("INSERT INTO stores VALUES (9901, 'Crash Store', 'west', 'Nobody', 2026)")?;
        std::mem::forget(s);
    }
    drop(durable);
    let (reopened, _) = open_durable(config)?;
    let mid_txn_clean = reopened.state_fingerprint() == before;

    Ok(CrashLabReport {
        statements,
        outcome_mismatches,
        points,
        mid_txn_clean,
    })
}

/// One stage of the interleaved-commit crash scenario.
#[derive(Debug, Clone)]
pub struct InterleavedStage {
    /// Which kill point this is (see [`interleaved_commits`]).
    pub name: &'static str,
    /// Transactions the WAL replayed on reopen.
    pub replayed_txns: u64,
    /// Whether recovery matched the reference at this commit prefix.
    pub matched: bool,
}

/// Report of [`interleaved_commits`].
#[derive(Debug, Clone)]
pub struct InterleavedReport {
    /// One entry per kill point.
    pub stages: Vec<InterleavedStage>,
}

impl InterleavedReport {
    /// True when every kill point recovered to exactly its commit prefix.
    pub fn passed(&self) -> bool {
        self.stages.iter().all(|s| s.matched)
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::from("crashlab interleaved commits:\n");
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<22} replayed_txns={:<4} {}\n",
                s.name,
                s.replayed_txns,
                if s.matched { "MATCH" } else { "DIVERGED" },
            ));
        }
        out
    }
}

/// Crash-recovery with *two concurrent committing transactions* (MVCC):
/// sessions A and B both open explicit transactions against the same
/// durable database and write disjoint rows; the harness kills the engine
/// at three points along the interleaving and asserts recovery equals the
/// committed-timestamp prefix *exactly* — uncommitted workspaces leave no
/// trace, and each commit becomes durable the instant its WAL group
/// append returns:
///
/// 1. `both-open`: A and B have written but neither committed → recovery
///    equals the base state.
/// 2. `a-committed`: A committed, B still open → recovery equals base + A
///    (B's writes absent even though they happened *before* A's commit in
///    wall-clock order — commit timestamps, not write order, decide).
/// 3. `both-committed`: A then B committed → recovery equals base + A + B.
pub fn interleaved_commits(config: &CrashLabConfig) -> DbResult<InterleavedReport> {
    if config.dir.exists() {
        let _ = std::fs::remove_dir_all(&config.dir);
    }
    let setup = "CREATE TABLE pairs (id INTEGER PRIMARY KEY, who TEXT NOT NULL)";
    let a_sql = "INSERT INTO pairs VALUES (1, 'a')";
    let b_sql = "INSERT INTO pairs VALUES (2, 'b')";

    // Reference fingerprints for each commit prefix, from a volatile twin.
    let fingerprint_after = |commits: &[&str]| -> DbResult<String> {
        let reference = Database::new();
        reference.session("admin")?.execute_sql(setup)?;
        for sql in commits {
            reference.session("admin")?.execute_sql(sql)?;
        }
        Ok(reference.state_fingerprint())
    };
    let base_fp = fingerprint_after(&[])?;
    let a_fp = fingerprint_after(&[a_sql])?;
    let ab_fp = fingerprint_after(&[a_sql, b_sql])?;

    let mut stages = Vec::new();
    // Each stage replays the interleaving from scratch up to its kill
    // point, so every recovery exercises the full WAL history.
    for (name, commits, expected) in [
        ("both-open", 0, &base_fp),
        ("a-committed", 1, &a_fp),
        ("both-committed", 2, &ab_fp),
    ] {
        let _ = std::fs::remove_dir_all(&config.dir);
        let (durable, _) = open_durable(config)?;
        durable.session("admin")?.execute_sql(setup)?;
        let mut a = durable.session("admin")?;
        let mut b = durable.session("admin")?;
        // Interleave: both transactions open and write before either
        // commits. B writes first; A commits first — commit timestamps,
        // not write order, decide what recovery restores.
        a.execute_sql("BEGIN")?;
        b.execute_sql("BEGIN")?;
        b.execute_sql(b_sql)?;
        a.execute_sql(a_sql)?;
        if commits >= 1 {
            a.execute_sql("COMMIT")?;
        }
        if commits >= 2 {
            b.execute_sql("COMMIT")?;
        }
        // Kill: forget the sessions (skipping rollback-on-drop, as a dead
        // process would) and drop the engine without a checkpoint.
        std::mem::forget(a);
        std::mem::forget(b);
        drop(durable);
        let (reopened, report) = open_durable(config)?;
        stages.push(InterleavedStage {
            name,
            replayed_txns: report.replayed_txns,
            matched: reopened.state_fingerprint() == *expected,
        });
    }
    let _ = std::fs::remove_dir_all(&config.dir);
    Ok(InterleavedReport { stages })
}

fn truncate_stmt(stmt: &str) -> String {
    const MAX: usize = 72;
    if stmt.len() <= MAX {
        stmt.to_owned()
    } else {
        let mut end = MAX;
        while !stmt.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &stmt[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "crashlab-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn differential_passes_at_every_kill_point() {
        let dir = tmpdir("diff");
        let mut config = CrashLabConfig::new(&dir);
        config.max_statements = 10;
        let report = run(&config).expect("crashlab runs");
        assert_eq!(report.statements, 10);
        assert_eq!(report.points.len(), 10);
        assert!(report.passed(), "report:\n{}", report.render());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strided_kill_points_and_render() {
        let dir = tmpdir("stride");
        let mut config = CrashLabConfig::new(&dir);
        config.max_statements = 9;
        config.kill_every = 3;
        config.fsync = FsyncPolicy::Off;
        let report = run(&config).expect("crashlab runs");
        assert_eq!(report.points.len(), 3);
        assert!(report.passed(), "report:\n{}", report.render());
        assert!(report.render().contains("kill after"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interleaved_commits_recover_exact_prefix() {
        let dir = tmpdir("interleave");
        let config = CrashLabConfig::new(&dir);
        let report = interleaved_commits(&config).expect("interleaved crashlab runs");
        assert_eq!(report.stages.len(), 3);
        assert!(report.passed(), "report:\n{}", report.render());
        assert!(report.render().contains("both-committed"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_is_nonempty_and_bounded() {
        let w = write_workload(7, 5);
        assert_eq!(w.len(), 5);
        let full = write_workload(7, 0);
        assert!(full.len() >= 150, "150 write tasks, one+ statement each");
    }
}
