//! # benchkit — benchmarks and evaluation harness
//!
//! Implements the paper's two novel benchmarks and the machinery that
//! regenerates every table and figure of §3:
//!
//! * [`bird`] — **BIRD-Ext**: four BIRD-like database domains plus 300 tasks
//!   (150 read, 50 insert / 50 update / 50 delete) with gold SQL and the
//!   plausible-mistake variants the agent simulator samples;
//! * [`housing`] — the California-Housing-style `house` table (10 columns ×
//!   20,000 rows in the paper's configuration);
//! * [`nl2ml`] — **NL2ML**: 30 model-training tasks at three proxy-depth
//!   levels;
//! * [`roles`] — the Administrator / Normal / Irrelevant users of §3.3;
//! * [`harness`] — runs (toolkit × agent × role × tasks) cells and
//!   aggregates #LLM calls, tokens, completion, accuracy, and
//!   transaction-initiation metrics;
//! * [`eval`] — result-set and database-state correctness checks;
//! * [`report`] — one orchestrator per published figure/table, with text
//!   renderings (Figure 5, Figure 6, Table 1, Table 2);
//! * [`loadgen`] — a load generator for the wire serving layer: N
//!   concurrent sessions × M calls with a throughput + latency-histogram
//!   report;
//! * [`crashlab`] — crash-recovery differential harness: replays BIRD-Ext
//!   write-task gold SQL against a durable engine, kills it at injected
//!   points, and asserts WAL recovery matches a volatile reference;
//! * [`planner`] — cost-based planner microbenchmark: selective index
//!   probe, three-way join reorder, and the two LIMIT pushdowns, each
//!   timed against its pre-planner baseline with plan shapes recorded.

#![warn(missing_docs)]

pub mod bird;
pub mod crashlab;
pub mod eval;
pub mod harness;
pub mod housing;
pub mod loadgen;
pub mod nl2ml;
pub mod planner;
pub mod report;
pub mod roles;

pub use bird::{generate as generate_bird_ext, BirdExt, BirdTask};
pub use crashlab::{
    interleaved_commits, run as run_crashlab, CrashLabConfig, CrashLabReport, CrashPoint,
    InterleavedReport, InterleavedStage,
};
pub use harness::{
    build_toolkit_observed, run_bird_cell, run_nl2ml, run_nl2ml_observed, BirdCell, CellOutcome,
    Nl2mlConfig, TaskClass, Toolkit,
};
pub use loadgen::{run_load, LoadConfig, LoadReport, UserLoadStats};
pub use planner::{run_planner_bench, PlannerBenchConfig, PlannerBenchReport};
pub use report::{fig5, privilege_experiment, table2, Fig5Report, PrivilegeReport, Table2Report};
pub use roles::Role;
