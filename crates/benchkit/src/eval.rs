//! Correctness evaluation: did the agent produce the gold answer / the gold
//! database state?

use minidb::{Database, QueryResult, Value};
use toolproto::Json;

/// Compare a read task's answer (the agent's final query result JSON) with
/// the gold result, as order-insensitive row multisets with float tolerance.
pub fn read_correct(answer: Option<&Json>, gold: &QueryResult) -> bool {
    let Some(answer) = answer else {
        return false;
    };
    let Some(rows) = answer.get("rows").and_then(Json::as_array) else {
        return false;
    };
    let QueryResult::Rows {
        rows: gold_rows, ..
    } = gold
    else {
        return false;
    };
    if rows.len() != gold_rows.len() {
        return false;
    }
    // Object rows (the verbose toolkit shape) are positionalized using the
    // result's column order.
    let columns: Vec<&str> = answer
        .get("columns")
        .and_then(Json::as_array)
        .map(|cs| cs.iter().filter_map(Json::as_str).collect())
        .unwrap_or_default();
    let mut got: Vec<Vec<String>> = rows
        .iter()
        .map(|r| normalize_json_row(r, &columns))
        .collect();
    let mut want: Vec<Vec<String>> = gold_rows.iter().map(|r| normalize_value_row(r)).collect();
    got.sort();
    want.sort();
    got == want
}

fn normalize_json_row(row: &Json, columns: &[&str]) -> Vec<String> {
    if let Some(obj) = row.as_object() {
        if !columns.is_empty() {
            return columns
                .iter()
                .map(|c| {
                    obj.get(*c)
                        .map_or_else(|| "NULL".into(), normalize_json_cell)
                })
                .collect();
        }
    }
    match row.as_array() {
        Some(cells) => cells.iter().map(normalize_json_cell).collect(),
        None => vec![normalize_json_cell(row)],
    }
}

fn normalize_json_cell(cell: &Json) -> String {
    match cell {
        Json::Number(n) => format_num(*n),
        Json::Null => "NULL".into(),
        Json::Bool(b) => b.to_string(),
        Json::Str(s) => s.clone(),
        other => other.to_compact(),
    }
}

fn normalize_value_row(row: &[Value]) -> Vec<String> {
    row.iter()
        .map(|v| match v {
            Value::Null => "NULL".into(),
            Value::Int(i) => format_num(*i as f64),
            Value::Float(f) => format_num(*f),
            Value::Text(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        })
        .collect()
}

/// Canonical numeric rendering with tolerance: round to 6 significant-ish
/// decimal places so float noise doesn't flip verdicts.
fn format_num(n: f64) -> String {
    if !n.is_finite() {
        return "NaN".into();
    }
    let rounded = (n * 1e6).round() / 1e6;
    if rounded.fract() == 0.0 && rounded.abs() < 9.0e15 {
        format!("{}", rounded as i64)
    } else {
        format!("{rounded}")
    }
}

/// Compare the contents of `tables` between the agent-run database and the
/// gold database, order-insensitively.
pub fn write_correct(agent_db: &Database, gold_db: &Database, tables: &[String]) -> bool {
    for table in tables {
        let a = table_contents(agent_db, table);
        let g = table_contents(gold_db, table);
        if a != g {
            return false;
        }
    }
    true
}

fn table_contents(db: &Database, table: &str) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = db.with_state(|state| {
        state
            .data
            .get(table)
            .map(|data| {
                data.iter()
                    .map(|(_, row)| normalize_value_row(row))
                    .collect()
            })
            .unwrap_or_default()
    });
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_db(extra: &[&str]) -> Database {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
            .unwrap();
        s.execute_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        for sql in extra {
            s.execute_sql(sql).unwrap();
        }
        db
    }

    #[test]
    fn read_comparison_order_insensitive() {
        let gold = QueryResult::Rows {
            columns: vec!["v".into()],
            rows: vec![vec![Value::Text("a".into())], vec![Value::Text("b".into())]],
        };
        let answer = Json::parse(r#"{"rows": [["b"], ["a"]]}"#).unwrap();
        assert!(read_correct(Some(&answer), &gold));
        let wrong = Json::parse(r#"{"rows": [["a"], ["c"]]}"#).unwrap();
        assert!(!read_correct(Some(&wrong), &gold));
        assert!(!read_correct(None, &gold));
    }

    #[test]
    fn numeric_tolerance() {
        let gold = QueryResult::Rows {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Float(0.30000000000000004)]],
        };
        let answer = Json::parse(r#"{"rows": [[0.3]]}"#).unwrap();
        assert!(read_correct(Some(&answer), &gold));
        // Int/float unification.
        let gold = QueryResult::Rows {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(5)]],
        };
        let answer = Json::parse(r#"{"rows": [[5.0]]}"#).unwrap();
        assert!(read_correct(Some(&answer), &gold));
    }

    #[test]
    fn row_count_mismatch_fails() {
        let gold = QueryResult::Rows {
            columns: vec!["v".into()],
            rows: vec![vec![Value::Int(1)]],
        };
        let answer = Json::parse(r#"{"rows": [[1], [1]]}"#).unwrap();
        assert!(!read_correct(Some(&answer), &gold));
    }

    #[test]
    fn write_comparison_detects_divergence() {
        let a = mini_db(&["INSERT INTO t VALUES (3, 'c')"]);
        let b = mini_db(&["INSERT INTO t VALUES (3, 'c')"]);
        let c = mini_db(&["INSERT INTO t VALUES (3, 'x')"]);
        let tables = vec!["t".to_string()];
        assert!(write_correct(&a, &b, &tables));
        assert!(!write_correct(&a, &c, &tables));
    }

    #[test]
    fn write_comparison_ignores_row_order() {
        let a = mini_db(&[]);
        let b = mini_db(&[]);
        // Delete and re-insert on one side: same contents, different rowids.
        let mut s = a.session("admin").unwrap();
        s.execute_sql("DELETE FROM t WHERE id = 1").unwrap();
        s.execute_sql("INSERT INTO t VALUES (1, 'a')").unwrap();
        assert!(write_correct(&a, &b, &["t".to_string()]));
    }
}
