//! The three production roles of the paper's §3.3.

use minidb::Database;
use sqlkit::ast::Action;

/// The simulated user roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Full data query and manipulation privileges on every task table.
    Administrator,
    /// Read-only (SELECT) privileges on every task table.
    Normal,
    /// Privileges limited to task-unrelated tables (`employee_salaries`).
    Irrelevant,
}

impl Role {
    /// All roles, in the paper's order.
    pub const ALL: [Role; 3] = [Role::Administrator, Role::Normal, Role::Irrelevant];

    /// The database user name of the role.
    pub fn user(&self) -> &'static str {
        match self {
            Role::Administrator => "alice_admin",
            Role::Normal => "norman",
            Role::Irrelevant => "ivy",
        }
    }

    /// One-letter tag used in the paper's figure labels.
    pub fn tag(&self) -> &'static str {
        match self {
            Role::Administrator => "A",
            Role::Normal => "N",
            Role::Irrelevant => "I",
        }
    }

    /// Whether this role can feasibly run tasks of the given class.
    pub fn feasible(&self, write: bool) -> bool {
        match self {
            Role::Administrator => true,
            Role::Normal => !write,
            Role::Irrelevant => false,
        }
    }
}

/// Create the three role users on a database and install their grants.
/// `task_tables` are the tables benchmark tasks operate on; the irrelevant
/// role is granted everything on the unrelated `employee_salaries` instead.
pub fn install_roles(db: &Database, task_tables: &[String]) {
    for role in Role::ALL {
        // Users may already exist on a forked template; ignore duplicates.
        let _ = db.create_user(role.user(), false);
    }
    for table in task_tables {
        db.grant_all(Role::Administrator.user(), table)
            .expect("admin grants");
        db.grant(Role::Normal.user(), Action::Select, table)
            .expect("normal grants");
    }
    if db.table_names().contains(&"employee_salaries".to_string()) {
        db.grant_all(Role::Irrelevant.user(), "employee_salaries")
            .expect("irrelevant grants");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bird;

    #[test]
    fn roles_have_expected_feasibility() {
        assert!(Role::Administrator.feasible(true));
        assert!(Role::Normal.feasible(false));
        assert!(!Role::Normal.feasible(true));
        assert!(!Role::Irrelevant.feasible(false));
    }

    #[test]
    fn grants_installed_per_role() {
        let db = bird::build_database(3);
        let tables: Vec<String> = db
            .table_names()
            .into_iter()
            .filter(|t| t != "employee_salaries")
            .collect();
        install_roles(&db, &tables);

        let admin = db.privileges_of("alice_admin").unwrap();
        assert!(admin.has(Action::Delete, "brand_a_sales"));
        assert!(!admin.has(Action::Select, "employee_salaries"));

        let normal = db.privileges_of("norman").unwrap();
        assert!(normal.has(Action::Select, "schools"));
        assert!(!normal.has(Action::Insert, "schools"));

        let ivy = db.privileges_of("ivy").unwrap();
        assert!(ivy.has(Action::Select, "employee_salaries"));
        assert!(!ivy.has(Action::Select, "schools"));
    }

    #[test]
    fn install_is_idempotent() {
        let db = bird::build_database(3);
        let tables = vec!["schools".to_string()];
        install_roles(&db, &tables);
        install_roles(&db, &tables);
        assert!(db
            .privileges_of("norman")
            .unwrap()
            .has(Action::Select, "schools"));
    }
}
