//! Wire load generator: N concurrent sessions × M calls against a
//! [`wire::WireServer`], with a throughput + latency-histogram report.
//!
//! The paper positions BridgeScope as a drop-in service in front of the
//! database; this module is the measuring stick for that claim. It drives
//! a loopback (or remote) server the way a fleet of agents would — every
//! session connects, authenticates as its own database user, then issues
//! tool calls back to back — and aggregates wall-clock throughput plus the
//! same bucketed latency histogram the obs layer uses everywhere else, so
//! serving-layer numbers are directly comparable to in-process ones.

use obs::metrics::{Histogram, HistogramSnapshot, LATENCY_BOUNDS_NS};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use toolproto::Json;
use wire::{Client, ErrorCode, WireError};

/// One load-generation run: `sessions` concurrent connections, each
/// authenticating as a user drawn round-robin from `users`, each issuing
/// `calls_per_session` invocations of `tool` with `arguments`.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent sessions (one thread + one TCP connection each).
    pub sessions: usize,
    /// Tool calls issued per session, back to back.
    pub calls_per_session: usize,
    /// Database users, assigned to sessions round-robin. Mixing privileged
    /// and unprivileged users in one run doubles as a leakage probe: each
    /// session's surface is built server-side for *its* user.
    pub users: Vec<String>,
    /// Tool to invoke.
    pub tool: String,
    /// Arguments for every call.
    pub arguments: Json,
    /// Optional call rotation: when non-empty, every session's `j`-th call
    /// invokes `rotation[j % len]` (a `(tool, arguments)` pair) instead of
    /// `tool`/`arguments`. The schedule depends only on the call index —
    /// never on thread scheduling or commit order — so a fixed seed yields
    /// the same per-session call sequence at every worker count, and
    /// stateful sequences (BEGIN → SELECT → COMMIT) stay aligned.
    pub rotation: Vec<(String, Json)>,
    /// Think time per call in nanoseconds, slept *before* each call and
    /// excluded from the latency histogram. Models the agent side of the
    /// loop (an LLM deciding the next tool call): with think time, a lone
    /// session leaves the server mostly idle, and throughput scales with
    /// concurrent sessions until the server saturates — which is exactly
    /// the serving capacity the scaling benchmark measures.
    pub think_ns: u64,
    /// Per-tenant call-mix overrides: sessions authenticated as a user
    /// listed here run *that* rotation instead of the global one. This is
    /// how a fairness run gives the runaway tenant an expensive hammering
    /// mix while well-behaved tenants keep their normal workload.
    pub user_rotations: Vec<(String, Vec<(String, Json)>)>,
}

impl LoadConfig {
    /// A single-user run hammering `select` with one SQL statement.
    pub fn select(
        sessions: usize,
        calls_per_session: usize,
        user: impl Into<String>,
        sql: impl Into<String>,
    ) -> LoadConfig {
        LoadConfig {
            sessions,
            calls_per_session,
            users: vec![user.into()],
            tool: "select".into(),
            arguments: Json::object([("sql", Json::str(sql.into()))]),
            rotation: Vec::new(),
            think_ns: 0,
            user_rotations: Vec::new(),
        }
    }

    /// A transactional read workload: every session loops BEGIN → SELECT →
    /// COMMIT over `sqls` (one statement per transaction), with `think_ns`
    /// of agent think time before each call. Under MVCC any number of these
    /// transactions run concurrently; under a single global transaction
    /// slot they would serialize (or fail) immediately.
    /// `calls_per_session` is rounded up to whole transactions.
    pub fn txn_read_rotation(
        sessions: usize,
        calls_per_session: usize,
        user: impl Into<String>,
        sqls: &[String],
        think_ns: u64,
    ) -> LoadConfig {
        let mut rotation: Vec<(String, Json)> = Vec::with_capacity(sqls.len() * 3);
        for sql in sqls {
            rotation.push(("begin".into(), Json::Null));
            rotation.push((
                "select".into(),
                Json::object([("sql", Json::str(sql.clone()))]),
            ));
            rotation.push(("commit".into(), Json::Null));
        }
        LoadConfig {
            sessions,
            calls_per_session: calls_per_session.div_ceil(3) * 3,
            users: vec![user.into()],
            tool: "select".into(),
            arguments: Json::object([("sql", Json::str("SELECT 1"))]),
            rotation,
            think_ns,
            user_rotations: Vec::new(),
        }
    }

    /// Builder: give `user`'s sessions their own call rotation.
    pub fn with_user_rotation(
        mut self,
        user: impl Into<String>,
        rotation: Vec<(String, Json)>,
    ) -> LoadConfig {
        self.user_rotations.push((user.into(), rotation));
        self
    }
}

/// Per-tenant slice of a load run, for the fairness report.
#[derive(Debug, Clone)]
pub struct UserLoadStats {
    /// Calls issued by this tenant's sessions.
    pub calls_attempted: u64,
    /// Calls that returned a successful output.
    pub calls_ok: u64,
    /// Calls shed with `server_busy`.
    pub rejected_busy: u64,
    /// Calls that reached a tool but failed (denials included).
    pub tool_errors: u64,
    /// Round-trip latency of this tenant's successful calls.
    pub latency: HistogramSnapshot,
    /// Exact per-call latencies (ns) of this tenant's successful calls,
    /// in no particular order. The histogram's buckets double between
    /// bounds, which quantizes quantile *ratios* to powers of two; the
    /// fairness differential (steady tenants' p95 with vs without a
    /// runaway) needs exact samples to resolve a 20% band.
    pub latency_samples_ns: Vec<u64>,
}

impl UserLoadStats {
    /// This tenant's p95 round-trip latency in nanoseconds — exact (from
    /// the raw samples) when any were recorded, bucketed otherwise.
    pub fn p95_ns(&self) -> u64 {
        if self.latency_samples_ns.is_empty() {
            return self.latency.quantile_ns(0.95);
        }
        let mut sorted = self.latency_samples_ns.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) * 95 / 100]
    }
}

/// Aggregated outcome of one [`run_load`] call.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Sessions that were launched.
    pub sessions: usize,
    /// Sessions that failed to connect or initialize (their calls are not
    /// attempted).
    pub sessions_failed: u64,
    /// Calls issued across all sessions.
    pub calls_attempted: u64,
    /// Calls that returned a successful [`toolproto::ToolOutput`].
    pub calls_ok: u64,
    /// Calls rejected with `server_busy` (backpressure shed them).
    pub rejected_busy: u64,
    /// Calls that reached the tool but failed (denial, validation, …).
    pub tool_errors: u64,
    /// Calls lost to transport/protocol failures.
    pub transport_errors: u64,
    /// Wall-clock duration of the whole run in nanoseconds.
    pub elapsed_ns: u64,
    /// Per-call round-trip latency distribution (successful calls only).
    pub latency: HistogramSnapshot,
    /// Per-tenant breakdown, keyed by user.
    pub per_user: BTreeMap<String, UserLoadStats>,
}

impl LoadReport {
    /// Successful calls per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.calls_ok as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Tail-latency summary `[p50, p95, p99]` in nanoseconds, from the
    /// run's latency histogram. These land in emitted bench JSON so the
    /// bench trajectory captures tail latency, not just throughput.
    pub fn percentiles_ns(&self) -> [u64; 3] {
        [
            self.latency.quantile_ns(0.50),
            self.latency.quantile_ns(0.95),
            self.latency.quantile_ns(0.99),
        ]
    }

    /// Max/min per-tenant throughput ratio — the headline fairness number.
    /// Tenants share one wall clock, so the ratio of successful call counts
    /// *is* the throughput ratio. 1.0 is perfectly fair; a tenant that got
    /// nothing through makes the ratio infinite; fewer than two tenants
    /// report 1.0 (fairness is trivially satisfied).
    pub fn fairness_ratio(&self) -> f64 {
        let oks: Vec<u64> = self.per_user.values().map(|u| u.calls_ok).collect();
        if oks.len() < 2 {
            return 1.0;
        }
        let max = *oks.iter().max().expect("nonempty");
        let min = *oks.iter().min().expect("nonempty");
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }

    /// A tenant's p95 round-trip latency in nanoseconds, if it ran.
    pub fn user_p95_ns(&self, user: &str) -> Option<u64> {
        self.per_user.get(user).map(UserLoadStats::p95_ns)
    }

    /// Human-readable report: headline numbers plus an ASCII latency
    /// histogram (one bar per non-empty bucket).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "wire load: {} sessions × {} calls = {} attempted\n",
            self.sessions,
            if self.sessions == 0 {
                0
            } else {
                self.calls_attempted as usize / self.sessions.max(1)
            },
            self.calls_attempted,
        ));
        out.push_str(&format!(
            "  ok {}, busy {}, tool-err {}, transport-err {}, failed-sessions {}\n",
            self.calls_ok,
            self.rejected_busy,
            self.tool_errors,
            self.transport_errors,
            self.sessions_failed,
        ));
        out.push_str(&format!(
            "  elapsed {}, throughput {:.1} calls/s\n",
            fmt_ns(self.elapsed_ns),
            self.throughput(),
        ));
        out.push_str(&format!(
            "  latency: mean {}  p50 {}  p90 {}  p99 {}\n",
            fmt_ns(self.latency.mean_ns()),
            fmt_ns(self.latency.quantile_ns(0.50)),
            fmt_ns(self.latency.quantile_ns(0.90)),
            fmt_ns(self.latency.quantile_ns(0.99)),
        ));
        if self.per_user.len() >= 2 {
            out.push_str(&format!(
                "  fairness: max/min tenant throughput ratio {:.2}\n",
                self.fairness_ratio()
            ));
            for (user, stats) in &self.per_user {
                out.push_str(&format!(
                    "    {user}: ok {}, busy {}, tool-err {}, p95 {}\n",
                    stats.calls_ok,
                    stats.rejected_busy,
                    stats.tool_errors,
                    fmt_ns(stats.p95_ns()),
                ));
            }
        }
        let peak = self.latency.buckets.iter().copied().max().unwrap_or(0);
        for (idx, &count) in self.latency.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let label = match LATENCY_BOUNDS_NS.get(idx) {
                Some(&bound) => format!("<= {}", fmt_ns(bound)),
                None => format!(
                    "> {}",
                    fmt_ns(LATENCY_BOUNDS_NS[LATENCY_BOUNDS_NS.len() - 1])
                ),
            };
            let bar = "#".repeat(((count * 40).div_ceil(peak.max(1))) as usize);
            out.push_str(&format!("  {label:>10} | {bar} {count}\n"));
        }
        out
    }
}

/// Render nanoseconds at a human scale.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Run one load configuration against a wire server at `addr`.
///
/// Every session runs on its own thread with its own connection; the
/// report aggregates all of them. Panics only on internal bookkeeping
/// bugs — all remote failures are counted, not propagated.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    assert!(!cfg.users.is_empty(), "LoadConfig.users must not be empty");
    /// Live per-tenant counters, shared by all of a user's sessions.
    #[derive(Default)]
    struct UserAgg {
        attempted: AtomicU64,
        ok: AtomicU64,
        busy: AtomicU64,
        tool_errors: AtomicU64,
        latency: Histogram,
        samples: std::sync::Mutex<Vec<u64>>,
    }
    let latency = Arc::new(Histogram::default());
    let per_user: BTreeMap<String, Arc<UserAgg>> = cfg
        .users
        .iter()
        .map(|u| (u.clone(), Arc::new(UserAgg::default())))
        .collect();
    let sessions_failed = AtomicU64::new(0);
    let calls_attempted = AtomicU64::new(0);
    let calls_ok = AtomicU64::new(0);
    let rejected_busy = AtomicU64::new(0);
    let tool_errors = AtomicU64::new(0);
    let transport_errors = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..cfg.sessions {
            let user = cfg.users[i % cfg.users.len()].clone();
            let agg = Arc::clone(per_user.get(&user).expect("per-user slot"));
            let latency = Arc::clone(&latency);
            let sessions_failed = &sessions_failed;
            let calls_attempted = &calls_attempted;
            let calls_ok = &calls_ok;
            let rejected_busy = &rejected_busy;
            let tool_errors = &tool_errors;
            let transport_errors = &transport_errors;
            let cfg = &*cfg;
            scope.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        sessions_failed.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                if client.initialize(&user).is_err() {
                    sessions_failed.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let user_rotation = cfg
                    .user_rotations
                    .iter()
                    .find(|(u, _)| *u == user)
                    .map(|(_, r)| r);
                for j in 0..cfg.calls_per_session {
                    calls_attempted.fetch_add(1, Ordering::Relaxed);
                    agg.attempted.fetch_add(1, Ordering::Relaxed);
                    let rotation = user_rotation.unwrap_or(&cfg.rotation);
                    let (tool, arguments) = if rotation.is_empty() {
                        (cfg.tool.as_str(), &cfg.arguments)
                    } else {
                        let (t, a) = &rotation[j % rotation.len()];
                        (t.as_str(), a)
                    };
                    if cfg.think_ns > 0 {
                        std::thread::sleep(std::time::Duration::from_nanos(cfg.think_ns));
                    }
                    let t0 = Instant::now();
                    match client.call(tool, arguments) {
                        Ok(Ok(_)) => {
                            let ns = t0.elapsed().as_nanos() as u64;
                            latency.observe_ns(ns);
                            agg.latency.observe_ns(ns);
                            agg.samples.lock().expect("sampler poisoned").push(ns);
                            calls_ok.fetch_add(1, Ordering::Relaxed);
                            agg.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Err(_)) => {
                            tool_errors.fetch_add(1, Ordering::Relaxed);
                            agg.tool_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(WireError::Rpc(rpc)) if rpc.code == ErrorCode::ServerBusy => {
                            rejected_busy.fetch_add(1, Ordering::Relaxed);
                            agg.busy.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            transport_errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                let _ = client.shutdown();
            });
        }
    });
    LoadReport {
        sessions: cfg.sessions,
        sessions_failed: sessions_failed.into_inner(),
        calls_attempted: calls_attempted.into_inner(),
        calls_ok: calls_ok.into_inner(),
        rejected_busy: rejected_busy.into_inner(),
        tool_errors: tool_errors.into_inner(),
        transport_errors: transport_errors.into_inner(),
        elapsed_ns: started.elapsed().as_nanos() as u64,
        latency: latency.snapshot(),
        per_user: per_user
            .into_iter()
            .map(|(user, agg)| {
                let stats = UserLoadStats {
                    calls_attempted: agg.attempted.load(Ordering::Relaxed),
                    calls_ok: agg.ok.load(Ordering::Relaxed),
                    rejected_busy: agg.busy.load(Ordering::Relaxed),
                    tool_errors: agg.tool_errors.load(Ordering::Relaxed),
                    latency: agg.latency.snapshot(),
                    latency_samples_ns: agg
                        .samples
                        .lock()
                        .expect("sampler poisoned")
                        .drain(..)
                        .collect(),
                };
                (user, stats)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::Database;
    use obs::Obs;
    use std::sync::Mutex;
    use toolproto::ToolError;
    use wire::{Tenancy, WireConfig, WireServer};

    fn demo_db() -> Database {
        let db = Database::new();
        let mut s = db.session("admin").unwrap();
        s.execute_sql("CREATE TABLE sales (id INTEGER PRIMARY KEY, amount REAL)")
            .unwrap();
        for i in 0..8 {
            s.execute_sql(&format!("INSERT INTO sales VALUES ({i}, {i}.5)"))
                .unwrap();
        }
        db.create_user("reader", false).unwrap();
        db.grant("reader", sqlkit::Action::Select, "sales").unwrap();
        db
    }

    #[test]
    fn thirty_two_sessions_sustained_with_histogram() {
        let server = WireServer::bind(
            "127.0.0.1:0",
            Tenancy::new(demo_db()),
            WireConfig::default(),
            Obs::in_memory(),
        )
        .unwrap();
        let cfg = LoadConfig::select(32, 4, "admin", "SELECT * FROM sales");
        let report = run_load(server.local_addr(), &cfg);
        server.shutdown();

        assert_eq!(report.sessions_failed, 0);
        assert_eq!(report.calls_attempted, 128);
        assert_eq!(report.calls_ok, 128, "report: {}", report.render());
        assert_eq!(report.rejected_busy, 0, "queue depth covers 32 sessions");
        assert_eq!(report.latency.count, 128);
        assert!(report.throughput() > 0.0);
        let text = report.render();
        assert!(text.contains("throughput"), "{text}");
        assert!(text.contains('#'), "histogram bars missing: {text}");
        assert!(text.contains("p99"), "{text}");
    }

    #[test]
    fn per_user_stats_feed_the_fairness_report() {
        let server = WireServer::bind(
            "127.0.0.1:0",
            Tenancy::new(demo_db()),
            WireConfig::default(),
            Obs::in_memory(),
        )
        .unwrap();
        let mut cfg = LoadConfig::select(8, 4, "admin", "SELECT * FROM sales");
        cfg.users = vec!["admin".into(), "reader".into()];
        // Tenant-specific mix: the reader runs its own cheaper rotation.
        let cfg = cfg.with_user_rotation(
            "reader",
            vec![(
                "select".into(),
                Json::object([("sql", Json::str("SELECT id FROM sales"))]),
            )],
        );
        let report = run_load(server.local_addr(), &cfg);
        server.shutdown();

        assert_eq!(report.calls_ok, 32, "report: {}", report.render());
        assert_eq!(report.per_user.len(), 2);
        for user in ["admin", "reader"] {
            let stats = &report.per_user[user];
            assert_eq!(stats.calls_attempted, 16);
            assert_eq!(stats.calls_ok, 16);
            assert_eq!(stats.latency.count, 16);
            assert_eq!(stats.latency_samples_ns.len(), 16);
            assert!(report.user_p95_ns(user).unwrap() > 0);
        }
        assert!((report.fairness_ratio() - 1.0).abs() < f64::EPSILON);
        let text = report.render();
        assert!(text.contains("fairness"), "{text}");
        assert!(text.contains("reader:"), "{text}");
    }

    #[test]
    fn mixed_user_load_has_zero_privilege_leakage() {
        // 32 concurrent sessions alternating admin/reader. Every reader
        // session must see a read-only surface — no `insert` in tools/list,
        // and calling it anyway is UnknownTool — while admin sessions mutate
        // freely. A single leaked surface fails the run.
        let server = WireServer::bind(
            "127.0.0.1:0",
            Tenancy::new(demo_db()),
            WireConfig::default(),
            Obs::in_memory(),
        )
        .unwrap();
        let addr = server.local_addr();
        let failures = Mutex::new(Vec::<String>::new());
        std::thread::scope(|scope| {
            for i in 0..32 {
                let failures = &failures;
                scope.spawn(move || {
                    let fail = |msg: String| failures.lock().unwrap().push(msg);
                    let user = if i % 2 == 0 { "admin" } else { "reader" };
                    let mut c = Client::connect(addr).unwrap();
                    c.initialize(user).unwrap();
                    let names: Vec<String> = c
                        .tools_list()
                        .unwrap()
                        .into_iter()
                        .map(|t| t.name)
                        .collect();
                    let insert_sql = format!("INSERT INTO sales VALUES ({}, 1.0)", 100 + i);
                    let args = Json::object([("sql", Json::str(insert_sql))]);
                    if user == "reader" {
                        if names.iter().any(|n| n == "insert") {
                            fail(format!("session {i}: reader lists insert"));
                        }
                        match c.call("insert", &args) {
                            Ok(Err(ToolError::UnknownTool(_))) => {}
                            other => fail(format!("session {i}: reader insert -> {other:?}")),
                        }
                    } else {
                        if !names.iter().any(|n| n == "insert") {
                            fail(format!("session {i}: admin missing insert"));
                        }
                        if let Err(e) = c.call("insert", &args).unwrap() {
                            fail(format!("session {i}: admin insert denied: {e}"));
                        }
                    }
                });
            }
        });
        server.shutdown();
        let failures = failures.into_inner().unwrap();
        assert!(failures.is_empty(), "leakage: {failures:?}");
    }
}
