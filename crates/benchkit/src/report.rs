//! Experiment orchestrators: one function per table/figure of the paper,
//! each returning raw numbers plus a text rendering that mirrors the
//! published layout.

use crate::bird::BirdExt;
use crate::harness::{
    idealized_pg_mcp_tokens, run_bird_cell, run_nl2ml, BirdCell, Nl2mlConfig, TaskClass, Toolkit,
};
use crate::roles::Role;
use llmsim::{Aggregate, LlmProfile};
use std::fmt::Write as _;

/// The two agents of the paper's evaluation.
pub fn paper_profiles() -> Vec<LlmProfile> {
    vec![LlmProfile::gpt4o(), LlmProfile::claude4()]
}

/// Best-achievable LLM-call bound for a completed read task: one call each
/// for context retrieval, SQL execution, and result finalization (§3.2).
pub const BEST_ACHIEVABLE_READ_CALLS: f64 = 3.0;

// ---------------------------------------------------------------------------
// Figure 5 — tooling granularity
// ---------------------------------------------------------------------------

/// One agent's numbers for Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Agent name.
    pub agent: String,
    /// (a) avg LLM calls on read tasks, BridgeScope.
    pub calls_bridgescope: f64,
    /// (a) avg LLM calls on read tasks, PG-MCP⁻.
    pub calls_pg_mcp_minus: f64,
    /// (b) accuracy on all tasks, BridgeScope.
    pub accuracy_bridgescope: f64,
    /// (b) accuracy on all tasks, PG-MCP.
    pub accuracy_pg_mcp: f64,
    /// (c) transaction-initiation ratio on write tasks, BridgeScope.
    pub txn_bridgescope: f64,
    /// (c) transaction-initiation ratio on write tasks, PG-MCP.
    pub txn_pg_mcp: f64,
}

/// Figure 5 report.
#[derive(Debug, Clone)]
pub struct Fig5Report {
    /// Rows per agent.
    pub rows: Vec<Fig5Row>,
}

/// Run the Figure 5 experiment (context retrieval, SQL execution accuracy,
/// transaction management) on `limit` tasks per class.
pub fn fig5(bench: &BirdExt, limit: Option<usize>, seed: u64) -> Fig5Report {
    let mut rows = Vec::new();
    for profile in paper_profiles() {
        let cell = |toolkit: Toolkit, class: TaskClass| -> Aggregate {
            run_bird_cell(
                bench,
                &BirdCell {
                    toolkit,
                    profile: profile.clone(),
                    role: Role::Administrator,
                    class,
                    limit,
                    seed,
                },
            )
            .aggregate
        };
        let bs_read = cell(Toolkit::BridgeScope, TaskClass::Read);
        let minus_read = cell(Toolkit::PgMcpMinus, TaskClass::Read);
        let bs_all = cell(Toolkit::BridgeScope, TaskClass::All);
        let pg_all = cell(Toolkit::PgMcp, TaskClass::All);
        let bs_write = cell(Toolkit::BridgeScope, TaskClass::Write);
        let pg_write = cell(Toolkit::PgMcp, TaskClass::Write);
        rows.push(Fig5Row {
            agent: profile.name.clone(),
            calls_bridgescope: bs_read.avg_llm_calls(),
            calls_pg_mcp_minus: minus_read.avg_llm_calls(),
            accuracy_bridgescope: bs_all.accuracy(),
            accuracy_pg_mcp: pg_all.accuracy(),
            txn_bridgescope: bs_write.txn_initiation_rate(),
            txn_pg_mcp: pg_write.txn_initiation_rate(),
        });
    }
    Fig5Report { rows }
}

impl Fig5Report {
    /// Render in the figure's three-panel layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Figure 5: Performance w.r.t. tooling granularity");
        let _ = writeln!(
            out,
            "(a) Avg #LLM calls, read tasks (best achievable = {BEST_ACHIEVABLE_READ_CALLS:.1})"
        );
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>10}",
            "agent", "BridgeScope", "PG-MCP-"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:>12.2} {:>10.2}",
                r.agent, r.calls_bridgescope, r.calls_pg_mcp_minus
            );
        }
        let _ = writeln!(out, "(b) Task accuracy, all tasks");
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>10}",
            "agent", "BridgeScope", "PG-MCP"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:>12.3} {:>10.3}",
                r.agent, r.accuracy_bridgescope, r.accuracy_pg_mcp
            );
        }
        let _ = writeln!(
            out,
            "(c) Transaction initiation ratio, write tasks (best = 1.0)"
        );
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>10}",
            "agent", "BridgeScope", "PG-MCP"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:>12.3} {:>10.3}",
                r.agent, r.txn_bridgescope, r.txn_pg_mcp
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Figure 6 + Table 1 — privilege-aware tooling
// ---------------------------------------------------------------------------

/// The five (role, class) cells of Figure 6 / Table 1, in the paper's order.
pub const PRIVILEGE_CELLS: [(Role, TaskClass, &str); 5] = [
    (Role::Administrator, TaskClass::Read, "(A, read)"),
    (Role::Administrator, TaskClass::Write, "(A, write)"),
    (Role::Normal, TaskClass::Write, "(N, write)"),
    (Role::Irrelevant, TaskClass::Read, "(I, read)"),
    (Role::Irrelevant, TaskClass::Write, "(I, write)"),
];

/// One (agent, toolkit) row across the five cells.
#[derive(Debug, Clone)]
pub struct PrivilegeRow {
    /// Agent name.
    pub agent: String,
    /// Toolkit label.
    pub toolkit: &'static str,
    /// Avg LLM calls per cell (Figure 6).
    pub calls: [f64; 5],
    /// Avg tokens per cell (Table 1).
    pub tokens: [f64; 5],
}

/// Figure 6 + Table 1 report.
#[derive(Debug, Clone)]
pub struct PrivilegeReport {
    /// One row per (agent, toolkit).
    pub rows: Vec<PrivilegeRow>,
    /// Best-achievable call bounds per cell (feasible: full flow; infeasible:
    /// minimum abort).
    pub best: [f64; 5],
}

/// Run the Figure 6 / Table 1 experiment.
pub fn privilege_experiment(bench: &BirdExt, limit: Option<usize>, seed: u64) -> PrivilegeReport {
    let mut rows = Vec::new();
    for profile in paper_profiles() {
        for toolkit in [Toolkit::BridgeScope, Toolkit::PgMcp] {
            let mut calls = [0.0; 5];
            let mut tokens = [0.0; 5];
            for (i, (role, class, _)) in PRIVILEGE_CELLS.iter().enumerate() {
                let agg = run_bird_cell(
                    bench,
                    &BirdCell {
                        toolkit,
                        profile: profile.clone(),
                        role: *role,
                        class: *class,
                        limit,
                        seed,
                    },
                )
                .aggregate;
                calls[i] = agg.avg_llm_calls();
                tokens[i] = agg.avg_tokens();
            }
            rows.push(PrivilegeRow {
                agent: profile.name.clone(),
                toolkit: toolkit.label(),
                calls,
                tokens,
            });
        }
    }
    PrivilegeReport {
        rows,
        // (A, read): 3 calls. (A, write): schema + begin + avg steps + commit
        // + final ≈ 5–6; we report 5 (single-step writes). Infeasible cells:
        // 1 call (tool-list abort) for (N, write), 2 (schema + abort) for
        // (I, *).
        best: [3.0, 5.0, 1.0, 2.0, 2.0],
    }
}

impl PrivilegeReport {
    /// Render Figure 6 (calls).
    pub fn render_fig6(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Figure 6: Average number of LLM calls for BIRD-Ext");
        let _ = write!(out, "{:<10} {:<12}", "agent", "toolkit");
        for (_, _, label) in PRIVILEGE_CELLS {
            let _ = write!(out, " {label:>11}");
        }
        let _ = writeln!(out);
        for r in &self.rows {
            let _ = write!(out, "{:<10} {:<12}", r.agent, r.toolkit);
            for c in r.calls {
                let _ = write!(out, " {c:>11.2}");
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<10} {:<12}", "-", "best");
        for b in self.best {
            let _ = write!(out, " {b:>11.2}");
        }
        let _ = writeln!(out);
        out
    }

    /// Render Table 1 (tokens).
    pub fn render_table1(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Table 1: Token usage for BIRD-Ext");
        let _ = write!(out, "{:<10} {:<12}", "agent", "toolkit");
        for (_, _, label) in PRIVILEGE_CELLS {
            let _ = write!(out, " {label:>11}");
        }
        let _ = writeln!(out);
        for r in &self.rows {
            let _ = write!(out, "{:<10} {:<12}", r.agent, r.toolkit);
            for t in r.tokens {
                let _ = write!(out, " {t:>11.0}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Token saving of BridgeScope vs PG-MCP in an infeasible cell (index
    /// into [`PRIVILEGE_CELLS`]), as a fraction, for a given agent.
    pub fn token_saving(&self, agent: &str, cell: usize) -> Option<f64> {
        let bs = self
            .rows
            .iter()
            .find(|r| r.agent == agent && r.toolkit == "BridgeScope")?;
        let pg = self
            .rows
            .iter()
            .find(|r| r.agent == agent && r.toolkit == "PG-MCP")?;
        if pg.tokens[cell] == 0.0 {
            return None;
        }
        Some(1.0 - bs.tokens[cell] / pg.tokens[cell])
    }
}

// ---------------------------------------------------------------------------
// Table 2 — proxy effectiveness (NL2ML)
// ---------------------------------------------------------------------------

/// One (agent, toolkit) row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Agent name.
    pub agent: String,
    /// Toolkit label (BridgeScope / PG-MCP / PG-MCP-S).
    pub toolkit: String,
    /// Task completion rate.
    pub completion: f64,
    /// Avg token usage (completed or not).
    pub tokens: f64,
    /// Avg LLM calls.
    pub calls: f64,
}

/// Table 2 report.
#[derive(Debug, Clone)]
pub struct Table2Report {
    /// Rows per (agent, toolkit).
    pub rows: Vec<Table2Row>,
    /// The idealized-PG-MCP token lower bound (≥2 full-table transfers).
    pub idealized_pg_mcp_bound: usize,
}

/// Run the Table 2 experiment with the paper's two agents. `rows` is the
/// house-table size for the full configurations (20,000 in the paper),
/// `sample_rows` the PG-MCP-S sample (20 in the paper).
pub fn table2(rows: usize, sample_rows: usize, limit: Option<usize>, seed: u64) -> Table2Report {
    table2_with_profiles(&paper_profiles(), rows, sample_rows, limit, seed)
}

/// [`table2`] with caller-supplied agent profiles (tests use shrunken
/// context windows so small tables overflow quickly).
pub fn table2_with_profiles(
    profiles: &[LlmProfile],
    rows: usize,
    sample_rows: usize,
    limit: Option<usize>,
    seed: u64,
) -> Table2Report {
    let mut out_rows = Vec::new();
    for profile in profiles.iter().cloned() {
        for (toolkit, label, n) in [
            (Toolkit::BridgeScope, "BridgeScope".to_string(), rows),
            (Toolkit::PgMcp, "PG-MCP".to_string(), rows),
            (Toolkit::PgMcp, "PG-MCP-S".to_string(), sample_rows),
        ] {
            let agg = run_nl2ml(&Nl2mlConfig {
                toolkit,
                profile: profile.clone(),
                rows: n,
                limit,
                seed,
            })
            .aggregate;
            out_rows.push(Table2Row {
                agent: profile.name.clone(),
                toolkit: label,
                completion: agg.completion_rate(),
                tokens: agg.avg_tokens(),
                calls: agg.avg_llm_calls(),
            });
        }
    }
    Table2Report {
        rows: out_rows,
        idealized_pg_mcp_bound: idealized_pg_mcp_tokens(rows, seed),
    }
}

impl Table2Report {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Table 2: Effectiveness of the proxy mechanism (NL2ML)");
        let _ = writeln!(
            out,
            "{:<10} {:<12} {:>11} {:>12} {:>10}",
            "agent", "toolkit", "completion", "tokens", "#calls"
        );
        for r in &self.rows {
            if r.completion == 0.0 {
                let _ = writeln!(
                    out,
                    "{:<10} {:<12} {:>11.2} {:>12} {:>10}",
                    r.agent, r.toolkit, r.completion, "-", "-"
                );
            } else {
                let _ = writeln!(
                    out,
                    "{:<10} {:<12} {:>11.2} {:>12.1} {:>10.2}",
                    r.agent, r.toolkit, r.completion, r.tokens, r.calls
                );
            }
        }
        let _ = writeln!(
            out,
            "Idealized PG-MCP (unlimited context) lower bound: >= {} tokens",
            self.idealized_pg_mcp_bound
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bird;

    #[test]
    fn fig5_shapes_hold_on_a_subset() {
        let bench = bird::generate(5);
        let report = fig5(&bench, Some(12), 3);
        for r in &report.rows {
            assert!(
                r.calls_pg_mcp_minus > r.calls_bridgescope * 1.2,
                "{}: PG-MCP- should need >20% more calls ({} vs {})",
                r.agent,
                r.calls_pg_mcp_minus,
                r.calls_bridgescope
            );
            assert!(
                (r.accuracy_bridgescope - r.accuracy_pg_mcp).abs() < 0.35,
                "{}: accuracies should be comparable ({} vs {})",
                r.agent,
                r.accuracy_bridgescope,
                r.accuracy_pg_mcp
            );
            assert!(
                r.txn_bridgescope > 0.85,
                "{}: {}",
                r.agent,
                r.txn_bridgescope
            );
            assert!(r.txn_pg_mcp < 0.35, "{}: {}", r.agent, r.txn_pg_mcp);
        }
        let text = report.render();
        assert!(text.contains("Figure 5"));
        assert!(text.contains("GPT-4o") && text.contains("Claude-4"));
    }

    #[test]
    fn privilege_report_shapes_hold_on_a_subset() {
        let bench = bird::generate(5);
        let report = privilege_experiment(&bench, Some(10), 3);
        // For every agent, infeasible cells cost less with BridgeScope.
        for agent in ["GPT-4o", "Claude-4"] {
            for cell in 2..5 {
                let saving = report.token_saving(agent, cell).unwrap();
                assert!(
                    saving > 0.2,
                    "{agent} cell {cell}: expected >20% token saving, got {saving}"
                );
            }
            // Feasible cells comparable (within 35%).
            let saving = report.token_saving(agent, 0).unwrap();
            assert!(saving.abs() < 0.35, "{agent} (A,read): {saving}");
        }
        let fig6 = report.render_fig6();
        assert!(fig6.contains("(N, write)"));
        let t1 = report.render_table1();
        assert!(t1.contains("Table 1"));
    }

    #[test]
    fn table2_shapes_hold_on_small_tables() {
        // Shrink the windows so a 2,000-row table (fast to build) overflows
        // exactly like the paper's 20,000-row table does at full scale.
        let profiles: Vec<LlmProfile> = super::paper_profiles()
            .into_iter()
            .map(|p| LlmProfile {
                context_window: 12_000,
                ..p
            })
            .collect();
        let report = table2_with_profiles(&profiles, 2_000, 20, Some(3), 3);
        for agent in ["GPT-4o", "Claude-4"] {
            let get = |tk: &str| {
                report
                    .rows
                    .iter()
                    .find(|r| r.agent == agent && r.toolkit == tk)
                    .unwrap()
            };
            let bs = get("BridgeScope");
            let pg = get("PG-MCP");
            let s = get("PG-MCP-S");
            assert_eq!(bs.completion, 1.0);
            assert_eq!(pg.completion, 0.0);
            assert_eq!(s.completion, 1.0);
            assert!(s.calls > bs.calls, "{agent}: {} vs {}", s.calls, bs.calls);
            assert!(
                s.tokens > bs.tokens,
                "{agent}: {} vs {}",
                s.tokens,
                bs.tokens
            );
            assert!(
                report.idealized_pg_mcp_bound as f64 > bs.tokens * 10.0,
                "bound {} vs {}",
                report.idealized_pg_mcp_bound,
                bs.tokens
            );
        }
        assert!(report.render().contains("Table 2"));
    }
}
