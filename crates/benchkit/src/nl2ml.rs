//! The NL2ML benchmark: 30 end-to-end model-training tasks over the housing
//! table, at three complexity levels (paper §3.1):
//!
//! * **Level 1** — basic data querying and model training (one proxy-unit
//!   layer: `select → train`);
//! * **Level 2** — additional data processing (two layers:
//!   `select → normalize → train`);
//! * **Level 3** — further house-price prediction (three layers:
//!   `select → normalize → train → predict`).

use llmsim::{DataSource, PipelineStage, TaskSpec};
use toolproto::Json;

/// Feature subsets the tasks draw from. Each entry: (description, columns);
/// the target `median_house_value` is appended automatically.
const FEATURE_SETS: [(&str, &[&str]); 5] = [
    ("income and age", &["median_income", "housing_median_age"]),
    ("location", &["longitude", "latitude", "median_income"]),
    (
        "household structure",
        &[
            "total_rooms",
            "total_bedrooms",
            "households",
            "median_income",
        ],
    ),
    ("demand", &["population", "households", "median_income"]),
    (
        "location and proximity",
        &["latitude", "median_income", "ocean_proximity"],
    ),
];

fn select_sql(features: &[&str]) -> String {
    format!(
        "SELECT {}, median_house_value FROM house",
        features.join(", ")
    )
}

fn trainer(i: usize) -> (&'static str, Vec<(String, Json)>) {
    if i.is_multiple_of(2) {
        ("train_linear_regression", vec![])
    } else {
        (
            "train_random_forest",
            vec![
                ("n_trees".to_string(), Json::num(8.0)),
                ("max_depth".to_string(), Json::num(6.0)),
            ],
        )
    }
}

fn norm_tool(i: usize) -> &'static str {
    if i.is_multiple_of(2) {
        "normalize_zscore"
    } else {
        "normalize_minmax"
    }
}

/// Generate the 30 NL2ML tasks (10 per level).
pub fn tasks() -> Vec<TaskSpec> {
    let mut out = Vec::with_capacity(30);
    // Level 1: select → train.
    for i in 0..10 {
        let (desc, features) = FEATURE_SETS[i % FEATURE_SETS.len()];
        let target = features.len(); // target appended last
        let (tool, mut static_args) = trainer(i);
        static_args.push(("target".into(), Json::num(target as f64)));
        let model_name = if tool.contains("linear") {
            "linear regression"
        } else {
            "random forest"
        };
        out.push(TaskSpec::pipeline(
            format!("nl2ml-l1-{i:02}"),
            format!(
                "Train a {model_name} model that predicts median house value from the {desc} \
                 columns of the house table, and report its training error."
            ),
            vec![PipelineStage {
                tool: tool.into(),
                data_args: vec![("data".into(), DataSource::Sql(select_sql(features)))],
                static_args,
            }],
        ));
    }
    // Level 2: select → normalize → train.
    for i in 0..10 {
        let (desc, features) = FEATURE_SETS[(i + 2) % FEATURE_SETS.len()];
        let target = features.len();
        let (tool, mut static_args) = trainer(i + 1);
        static_args.push(("target".into(), Json::num(target as f64)));
        let norm = norm_tool(i);
        out.push(TaskSpec::pipeline(
            format!("nl2ml-l2-{i:02}"),
            format!(
                "Extract the {desc} columns of the house table, apply {} normalization to the \
                 features (leaving the target untouched), then train a model predicting median \
                 house value and report its training error.",
                if norm.contains("zscore") {
                    "z-score"
                } else {
                    "min-max"
                }
            ),
            vec![
                PipelineStage {
                    tool: norm.into(),
                    data_args: vec![("data".into(), DataSource::Sql(select_sql(features)))],
                    static_args: vec![("exclude".into(), Json::num(target as f64))],
                },
                PipelineStage {
                    tool: tool.into(),
                    data_args: vec![("data".into(), DataSource::Stage(0))],
                    static_args,
                },
            ],
        ));
    }
    // Level 3: three layers of proxy-unit abstraction —
    // predict(train(normalize(select)), normalize(select)): train on the
    // normalized older housing stock, predict the normalized newer slice.
    for i in 0..10 {
        let (desc, features) = FEATURE_SETS[(i + 4) % FEATURE_SETS.len()];
        let target = features.len();
        let (tool, mut trainer_args) = trainer(i);
        trainer_args.push(("target".into(), Json::num(target as f64)));
        let norm = norm_tool(i + 1);
        let train_sql = format!(
            "{} WHERE housing_median_age > {}",
            select_sql(features),
            10 + i
        );
        let eval_sql = format!(
            "{} WHERE housing_median_age <= {}",
            select_sql(features),
            10 + i
        );
        out.push(TaskSpec::pipeline(
            format!("nl2ml-l3-{i:02}"),
            format!(
                "Using the {desc} columns of the house table: normalize the features, train a \
                 model predicting median house value on the older housing stock, then predict \
                 prices for the (likewise normalized) newer housing stock and report the \
                 prediction error."
            ),
            vec![
                PipelineStage {
                    tool: norm.into(),
                    data_args: vec![("data".into(), DataSource::Sql(train_sql))],
                    static_args: vec![("exclude".into(), Json::num(target as f64))],
                },
                PipelineStage {
                    tool: tool.into(),
                    data_args: vec![("data".into(), DataSource::Stage(0))],
                    static_args: trainer_args,
                },
                PipelineStage {
                    tool: norm.into(),
                    data_args: vec![("data".into(), DataSource::Sql(eval_sql))],
                    static_args: vec![("exclude".into(), Json::num(target as f64))],
                },
                PipelineStage {
                    tool: "predict".into(),
                    data_args: vec![
                        ("model".into(), DataSource::Stage(1)),
                        ("data".into(), DataSource::Stage(2)),
                    ],
                    static_args: vec![("target".into(), Json::num(target as f64))],
                },
            ],
        ));
    }
    out
}

/// The proxy-unit nesting level of a task (1–3), from its id.
pub fn level_of(task: &TaskSpec) -> usize {
    if task.id.contains("-l1-") {
        1
    } else if task.id.contains("-l2-") {
        2
    } else {
        3
    }
}

/// The proxy-unit nesting depth a task's pipeline folds into: the last
/// stage's chain of nested producers. Level 3's two stages fold into a
/// depth-3 unit (predict ← train ← select).
pub fn proxy_depth(task: &TaskSpec) -> usize {
    fn stage_depth(task: &TaskSpec, idx: usize) -> usize {
        1 + task.pipeline[idx]
            .data_args
            .iter()
            .map(|(_, src)| match src {
                DataSource::Sql(_) => 0,
                DataSource::Stage(i) => stage_depth(task, *i),
            })
            .max()
            .unwrap_or(0)
    }
    if task.pipeline.is_empty() {
        0
    } else {
        stage_depth(task, task.pipeline.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::TaskKind;

    #[test]
    fn thirty_tasks_ten_per_level() {
        let all = tasks();
        assert_eq!(all.len(), 30);
        for l in 1..=3 {
            assert_eq!(all.iter().filter(|t| level_of(t) == l).count(), 10);
        }
        assert!(all.iter().all(|t| t.kind == TaskKind::Pipeline));
    }

    #[test]
    fn proxy_depths_match_levels() {
        // The paper's levels are layers of proxy-unit abstraction; the
        // folded nesting depth must equal the level.
        for t in tasks() {
            assert_eq!(proxy_depth(&t), level_of(&t), "{}", t.id);
        }
    }

    #[test]
    fn level3_predict_consumes_model_and_fresh_data() {
        let all = tasks();
        let t = all.iter().find(|t| level_of(t) == 3).unwrap();
        let predict = t.pipeline.last().unwrap();
        assert_eq!(predict.tool, "predict");
        assert!(predict
            .data_args
            .iter()
            .any(|(n, s)| n == "model" && matches!(s, DataSource::Stage(1))));
        assert!(predict
            .data_args
            .iter()
            .any(|(n, s)| n == "data" && matches!(s, DataSource::Stage(2))));
    }

    #[test]
    fn ids_are_unique() {
        let all = tasks();
        let mut ids: Vec<&str> = all.iter().map(|t| t.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 30);
    }
}
